"""Static-shape recovery for allocatable arrays (Section VI).

Dynamically sized memrefs (``memref<?x?xf64>``) severely limited the
effectiveness of the standard MLIR optimisation passes.  This pass detects
allocatable arrays that are

* allocated exactly once with compile-time-constant bounds, and
* never reallocated afterwards,

and rewrites the dynamically sized memref types to their static counterparts
(``memref<128x128xf64>``), also rewriting the ``memref.alloc`` to drop its
dynamic size operands and encode the bounds in the result type.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..dialects import memref as memref_d
from ..ir import types as ir_types
from ..ir.core import Operation, Value
from ..ir.pass_manager import FunctionPass, register_pass


def _constant_value(value: Value) -> Optional[int]:
    op = getattr(value, "op", None)
    if op is not None and op.name == "arith.constant":
        return int(op.get_attr("value").value)
    return None


def _stores_to_outer(outer: Value, func: Operation) -> List[Operation]:
    """memref.store ops whose destination is the outer (boxed) memref."""
    return [op for op in func.walk()
            if op.name == "memref.store" and len(op.operands) >= 2
            and op.operands[1] is outer]


class StaticShapeRecovery:
    def __init__(self, func: Operation):
        self.func = func
        self.rewritten = 0

    def run(self) -> int:
        for op in list(self.func.walk()):
            if op.name != "memref.alloca":
                continue
            result_type = op.results[0].type
            if not (isinstance(result_type, ir_types.MemRefType)
                    and result_type.rank == 0
                    and isinstance(result_type.element_type, ir_types.MemRefType)):
                continue
            self._try_rewrite_boxed(op)
        return self.rewritten

    def _try_rewrite_boxed(self, outer_alloca: Operation) -> None:
        outer = outer_alloca.results[0]
        stores = _stores_to_outer(outer, self.func)
        if len(stores) != 1:
            return  # reallocated (or never allocated): leave dynamic
        store = stores[0]
        inner_value = store.operands[0]
        alloc = getattr(inner_value, "op", None)
        if alloc is None or alloc.name != "memref.alloc":
            return
        sizes = [
            _constant_value(v) for v in alloc.operands
        ]
        if any(s is None for s in sizes):
            return
        old_type = alloc.results[0].type
        static_shape = []
        size_iter = iter(sizes)
        for d in old_type.shape:
            static_shape.append(next(size_iter) if d == ir_types.DYNAMIC else d)
        new_inner_type = ir_types.MemRefType(static_shape, old_type.element_type)

        # rewrite the alloc: drop dynamic operands, use the static result type
        new_alloc = memref_d.AllocOp(new_inner_type)
        alloc.parent.insert_before(alloc, new_alloc)
        alloc.results[0].replace_all_uses_with(new_alloc.results[0])
        alloc.erase(check_uses=False)

        # retype the outer memref and every load of it
        new_outer_type = ir_types.MemRefType([], new_inner_type)
        outer.type = new_outer_type
        for user in outer.users():
            if user.name == "memref.load" and user.operands[0] is outer:
                user.results[0].type = new_inner_type
        self.rewritten += 1


@register_pass
class StaticShapeRecoveryPass(FunctionPass):
    """``recover-static-shapes``: the paper's dynamic->static memref pass."""

    NAME = "recover-static-shapes"

    def run_on_function(self, func: Operation) -> None:
        StaticShapeRecovery(func).run()


__all__ = ["StaticShapeRecoveryPass", "StaticShapeRecovery"]
