"""Rewrite of the intermediate branch dialect into real ``cf`` branches.

Section V-A: branches in Flang's IR may reference successor blocks that the
main transformation pass has not visited yet, so the transformation emits
``tmpbr`` operations that identify successors by block *index*; this separate
rewrite then replaces them with ``cf.br`` / ``cf.cond_br`` pointing at the
translated blocks.
"""

from __future__ import annotations

from ..dialects import cf, tmpbr
from ..ir.core import Operation
from ..ir.pass_manager import FunctionPass, register_pass


def fixup_branches(func: Operation) -> int:
    """Replace tmpbr ops inside ``func`` with cf branches.  Returns the number
    of rewritten branches."""
    rewritten = 0
    for region in func.regions:
        blocks = region.blocks
        for block in blocks:
            for op in list(block.ops):
                if isinstance(op, tmpbr.BrOp):
                    dest = blocks[op.block_index]
                    new = cf.BranchOp(dest, list(op.operands))
                    block.insert_before(op, new)
                    op.erase(check_uses=False)
                    rewritten += 1
                elif isinstance(op, tmpbr.CondBrOp):
                    true_dest = blocks[op.true_index]
                    false_dest = blocks[op.false_index]
                    new = cf.CondBranchOp(op.condition, true_dest, false_dest,
                                          list(op.true_operands),
                                          list(op.false_operands))
                    block.insert_before(op, new)
                    op.erase(check_uses=False)
                    rewritten += 1
    return rewritten


@register_pass
class BranchFixupPass(FunctionPass):
    NAME = "fixup-temporary-branches"

    def run_on_function(self, func: Operation) -> None:
        fixup_branches(func)


__all__ = ["fixup_branches", "BranchFixupPass"]
