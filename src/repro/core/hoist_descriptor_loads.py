"""Hoist loads of allocatable-array containers out of loops (Section V-B).

Allocatable arrays are memref-of-memref: every element access first loads the
inner memref from its outer container.  Inside loops this dereference is
repeated every iteration even though the array is not reallocated.  This pass
finds ``memref.load`` operations of rank-0 memref-of-memref containers inside
``scf.for`` / ``scf.while`` / ``scf.parallel`` / ``affine.for`` loops and, when
the container is not written inside the loop, replaces them with a single load
hoisted above the loop — proceeding upwards through loop nests as far as
possible.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir import types as ir_types
from ..ir.core import Operation, Value
from ..ir.pass_manager import FunctionPass, register_pass

LOOP_OPS = ("scf.for", "scf.while", "scf.parallel", "affine.for", "omp.wsloop",
            "acc.kernels", "omp.parallel")


def _is_container_load(op: Operation) -> bool:
    if op.name != "memref.load":
        return False
    src_type = op.operands[0].type
    return (isinstance(src_type, ir_types.MemRefType) and src_type.rank == 0
            and isinstance(src_type.element_type, ir_types.MemRefType))


def _container_written_in(loop: Operation, container: Value) -> bool:
    for op in loop.walk():
        if op.name == "memref.store" and len(op.operands) >= 2 \
                and op.operands[1] is container:
            return True
    return False


def _enclosing_loops(op: Operation) -> List[Operation]:
    """Loops containing ``op``, innermost first."""
    loops = []
    for ancestor in op.ancestors():
        if ancestor.name in LOOP_OPS:
            loops.append(ancestor)
    return loops


def hoist_descriptor_loads(func: Operation) -> int:
    """Hoist container loads out of loops; returns the number hoisted."""
    hoisted = 0
    changed = True
    while changed:
        changed = False
        for op in list(func.walk()):
            if not _is_container_load(op):
                continue
            loops = _enclosing_loops(op)
            if not loops:
                continue
            container = op.operands[0]
            # hoist above the outermost enclosing loop in which the container
            # is not reallocated
            target_loop: Optional[Operation] = None
            for loop in loops:
                if _container_written_in(loop, container):
                    break
                # the container value must be defined outside this loop
                defining = getattr(container, "op", None)
                if defining is not None and loop.is_ancestor_of(defining):
                    break
                target_loop = loop
            if target_loop is None:
                continue
            op.detach()
            target_loop.parent.insert_before(target_loop, op)
            hoisted += 1
            changed = True
    # merge duplicate hoisted loads that now sit next to each other
    hoisted += _deduplicate_adjacent_loads(func)
    return hoisted


def _deduplicate_adjacent_loads(func: Operation) -> int:
    removed = 0
    for block in [b for op in func.walk() for r in op.regions for b in r.blocks] + \
                 [b for r in func.regions for b in r.blocks]:
        seen = {}
        for op in list(block.ops):
            if not _is_container_load(op):
                continue
            key = id(op.operands[0])
            if key in seen:
                op.replace_all_uses_with([seen[key].results[0]])
                op.erase(check_uses=False)
                removed += 1
            else:
                seen[key] = op
    return removed


@register_pass
class HoistDescriptorLoadsPass(FunctionPass):
    """``hoist-allocatable-loads``: the paper's outer-memref hoisting pass."""

    NAME = "hoist-allocatable-loads"

    def run_on_function(self, func: Operation) -> None:
        hoist_descriptor_loads(func)


__all__ = ["hoist_descriptor_loads", "HoistDescriptorLoadsPass"]
