"""``affine-super-vectorize``: vectorise innermost affine loops.

Figure 3 of the paper: affine loops are super-vectorised with a virtual
vector size of 4 (AVX2, 256-bit doubles on the AMD Rome CPUs of ARCHER2),
then lowered through scf/cf and ``convert-vector-to-llvm{enable-x86vector}``.

The implementation vectorises an innermost ``affine.for`` when:

* its step is 1,
* every memory access inside it is an ``affine.load`` / ``affine.store``
  whose *fastest varying* (last) subscript is the loop induction variable
  (unit stride) or the access is loop-invariant (broadcast),
* the remaining body operations are elementwise ``arith`` / ``math`` ops.

Loops that accumulate into a rank-0 memref (reductions, e.g. dot product and
sum) are vectorised with a vector accumulator followed by a horizontal
``vector.reduction``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..dialects import affine as affine_d
from ..dialects import arith, memref as memref_d, vector as vector_d
from ..ir import types as ir_types
from ..ir.attributes import AffineExpr
from ..ir.core import Block, Operation, Value
from ..ir.pass_manager import FunctionPass, register_pass

_ELEMENTWISE = {
    "arith.addf", "arith.subf", "arith.mulf", "arith.divf", "arith.negf",
    "arith.maximumf", "arith.minimumf", "arith.addi", "arith.subi",
    "arith.muli", "arith.constant", "math.fma", "math.sqrt", "math.absf",
}


def _is_innermost(loop: Operation) -> bool:
    return not any(op is not loop and op.name == "affine.for" for op in loop.walk())


class LoopVectorizer:
    def __init__(self, width: int):
        self.width = width

    # -- analysis ----------------------------------------------------------------
    def can_vectorize(self, loop: affine_d.AffineForOp) -> bool:
        if loop.step_value != 1 or loop.iter_args:
            return False
        body = loop.body
        iv = loop.induction_variable
        has_vectorizable_access = False
        stored_scalars = {id(op.operands[1]) for op in body.ops
                          if op.name in ("memref.store", "affine.store")
                          and op.operands[1].type.rank == 0}
        for op in body.ops:
            if op.name == "affine.yield":
                continue
            if op.name == "affine.load" and op.operands[0].type.rank == 0:
                continue  # scalar read (loop-invariant) or reduction accumulator
            if op.name == "affine.store" and op.operands[1].type.rank == 0:
                continue
            if op.name in ("affine.load", "affine.store"):
                if self._access_kind(op, iv) is None:
                    return False
                if self._access_kind(op, iv) == "contiguous":
                    has_vectorizable_access = True
                continue
            if op.name == "memref.load" and op.operands[0].type.rank == 0:
                continue  # reduction accumulator
            if op.name == "memref.store" and op.operands[1].type.rank == 0:
                continue
            if op.name in _ELEMENTWISE:
                continue
            return False
        return has_vectorizable_access

    def _access_kind(self, op: Operation, iv: Value) -> Optional[str]:
        """'contiguous' when the last subscript is exactly the IV (+ const),
        'invariant' when no subscript involves the IV, None otherwise."""
        amap = op.get_attr("map")
        if op.name == "affine.load":
            index_operands = list(op.operands[1:])
        else:
            index_operands = list(op.operands[2:])
        if not index_operands:
            return "invariant"
        uses_iv = [iv is v for v in index_operands]
        if not any(uses_iv):
            return "invariant"
        # the IV must drive only the last map result, with coefficient 1
        last_expr = amap.results[-1]
        iv_dim = index_operands.index(iv)
        if not self._expr_is_dim_plus_const(last_expr, iv_dim):
            return None
        for expr in amap.results[:-1]:
            if self._expr_mentions_dim(expr, iv_dim):
                return None
        return "contiguous"

    def _expr_is_dim_plus_const(self, expr: AffineExpr, dim: int) -> bool:
        if expr.kind == "dim":
            return expr.value == dim
        if expr.kind == "add":
            sides = [expr.lhs, expr.rhs]
            dims = [s for s in sides if s.kind == "dim" and s.value == dim]
            consts = [s for s in sides if s.kind == "const" or
                      (s.kind in ("add", "mul") and not self._expr_mentions_dim(s, dim))]
            return len(dims) == 1 and len(dims) + len(consts) == 2
        return False

    def _expr_mentions_dim(self, expr: AffineExpr, dim: int) -> bool:
        if expr.kind == "dim":
            return expr.value == dim
        if expr.kind in ("sym", "const"):
            return False
        return self._expr_mentions_dim(expr.lhs, dim) or \
            self._expr_mentions_dim(expr.rhs, dim)

    # -- reduction accumulator handling --------------------------------------------
    def _accumulator_read(self, op, accumulator_memref, result, accumulators,
                          new_loop, new_body, vec_map) -> None:
        key = id(accumulator_memref)
        if key not in accumulators:
            elem = result.type
            zero = arith.ConstantOp(
                0.0 if isinstance(elem, ir_types.FloatType) else 0, elem)
            new_loop.parent.insert_before(new_loop, zero)
            vtype = ir_types.VectorType([self.width], elem)
            acc_init = vector_d.BroadcastOp(vtype, zero.result)
            new_loop.parent.insert_before(new_loop, acc_init)
            acc_cell = memref_d.AllocaOp(ir_types.MemRefType([], vtype))
            new_loop.parent.insert_before(new_loop, acc_cell)
            init_store = memref_d.StoreOp(acc_init.results[0], acc_cell.results[0], [])
            new_loop.parent.insert_before(new_loop, init_store)
            accumulators[key] = {"cell": acc_cell.results[0],
                                 "orig": accumulator_memref, "elem": elem,
                                 "kind": "add", "init_const": zero}
        acc = accumulators[key]
        acc_load = memref_d.LoadOp(acc["cell"], [])
        new_body.add_op(acc_load)
        vec_map[result] = acc_load.results[0]

    @staticmethod
    def _combiner_kind(stored_value) -> Optional[str]:
        combiner = getattr(getattr(stored_value, "op", None), "name", "")
        if combiner in ("arith.maximumf", "arith.maxsi"):
            return "max"
        if combiner in ("arith.minimumf", "arith.minsi"):
            return "min"
        if combiner in ("arith.mulf", "arith.muli"):
            return "mul"
        if combiner in ("arith.addf", "arith.addi"):
            return "add"
        return None

    def _accumulator_write(self, op, accumulator_memref, stored_value, accumulators,
                           new_body, vec_map, reduction_stores) -> None:
        key = id(accumulator_memref)
        acc = accumulators.get(key)
        value = vec_map.get(stored_value, stored_value)
        if acc is None:
            new_body.add_op(memref_d.StoreOp(value, accumulator_memref, []))
            return
        kind = self._combiner_kind(stored_value)
        if kind is not None:
            acc["kind"] = kind
        new_body.add_op(memref_d.StoreOp(value, acc["cell"], []))
        reduction_stores.append(op)

    def _constant_trip(self, loop: affine_d.AffineForOp):
        lb_map, ub_map = loop.lower_bound_map, loop.upper_bound_map
        if len(lb_map.results) == 1 and lb_map.results[0].kind == "const" and \
                len(ub_map.results) == 1 and ub_map.results[0].kind == "const":
            lb, ub = lb_map.results[0].value, ub_map.results[0].value
            return lb, ub, max(0, ub - lb)
        return None

    # -- rewrite ------------------------------------------------------------------
    def vectorize(self, loop: affine_d.AffineForOp) -> bool:
        if not self.can_vectorize(loop):
            return False
        bounds = self._constant_trip(loop)
        if bounds is None:
            return False           # dynamic trip count: leave the loop scalar
        lb_const, ub_const, trip = bounds
        if trip < self.width:
            return False
        main_ub = lb_const + (trip // self.width) * self.width
        body = loop.body
        iv = loop.induction_variable
        width = self.width
        vec_map: Dict[Value, Value] = {}
        scalar_map: Dict[Value, Value] = {}
        reduction_stores: List[Operation] = []
        stored_scalars = {id(op.operands[1]) for op in body.ops
                          if op.name in ("memref.store", "affine.store")
                          and op.operands[1].type.rank == 0}

        new_body = Block(arg_types=[ir_types.index])
        from ..ir.attributes import AffineMapAttr
        new_loop = affine_d.AffineForOp(
            [], AffineMapAttr.constant_map(lb_const),
            [], AffineMapAttr.constant_map(main_ub),
            step=width, body=new_body)
        loop.parent.insert_before(loop, new_loop)
        new_iv = new_body.args[0]

        def vectorized(value: Value, elem_type) -> Value:
            """The vector form of a scalar value (broadcast when invariant)."""
            if value in vec_map:
                return vec_map[value]
            vtype = ir_types.VectorType([width], elem_type)
            bcast = vector_d.BroadcastOp(vtype, value)
            new_body.add_op(bcast)
            vec_map[value] = bcast.results[0]
            return bcast.results[0]

        accumulators: Dict[int, Dict] = {}

        for op in body.ops:
            if op.name == "affine.yield":
                continue
            if op.name == "affine.load" and op.operands[0].type.rank == 0:
                if id(op.operands[0]) in stored_scalars:
                    self._accumulator_read(op, op.operands[0], op.results[0],
                                           accumulators, new_loop, new_body, vec_map)
                else:
                    scalar_load = memref_d.LoadOp(op.operands[0], [])
                    new_body.add_op(scalar_load)
                    scalar_map[op.results[0]] = scalar_load.results[0]
                    vec_map[op.results[0]] = vectorized(scalar_load.results[0],
                                                        op.results[0].type)
                continue
            if op.name == "affine.store" and op.operands[1].type.rank == 0:
                self._accumulator_write(op, op.operands[1], op.operands[0],
                                        accumulators, new_body, vec_map,
                                        reduction_stores)
                continue
            if op.name == "affine.load":
                kind = self._access_kind(op, iv)
                elem = op.results[0].type
                operands = [new_iv if o is iv else scalar_map.get(o, o)
                            for o in op.operands[1:]]
                if kind == "contiguous":
                    vload = vector_d.VectorLoadOp(
                        ir_types.VectorType([width], elem), op.operands[0], operands)
                    # keep the affine map by re-expressing through affine.apply:
                    # subscripts are materialised by lower-affine later; here the
                    # map is stored on the op for the cost model / lowering.
                    vload.set_attr("map", op.get_attr("map"))
                    new_body.add_op(vload)
                    vec_map[op.results[0]] = vload.results[0]
                else:
                    aload = affine_d.AffineLoadOp(op.operands[0], operands,
                                                  op.get_attr("map"))
                    new_body.add_op(aload)
                    vec_map[op.results[0]] = vectorized(aload.results[0], elem)
                continue
            if op.name == "affine.store":
                value = op.operands[0]
                elem = value.type
                operands = [new_iv if o is iv else scalar_map.get(o, o)
                            for o in op.operands[2:]]
                vec_value = vec_map.get(value)
                if vec_value is None:
                    vec_value = vectorized(value, elem)
                vstore = vector_d.VectorStoreOp(vec_value, op.operands[1], operands)
                vstore.set_attr("map", op.get_attr("map"))
                new_body.add_op(vstore)
                continue
            if op.name == "memref.load" and op.operands[0].type.rank == 0 and \
                    id(op.operands[0]) not in stored_scalars:
                scalar_load = memref_d.LoadOp(op.operands[0], [])
                new_body.add_op(scalar_load)
                scalar_map[op.results[0]] = scalar_load.results[0]
                vec_map[op.results[0]] = vectorized(scalar_load.results[0],
                                                    op.results[0].type)
                continue
            if op.name == "memref.load" and op.operands[0].type.rank == 0:
                # reduction accumulator read: replace with a vector accumulator
                key = id(op.operands[0])
                if key not in accumulators:
                    elem = op.results[0].type
                    zero = arith.ConstantOp(0.0 if isinstance(elem, ir_types.FloatType) else 0,
                                            elem)
                    new_loop.parent.insert_before(new_loop, zero)
                    vtype = ir_types.VectorType([width], elem)
                    acc_init = vector_d.BroadcastOp(vtype, zero.result)
                    new_loop.parent.insert_before(new_loop, acc_init)
                    acc_cell = memref_d.AllocaOp(ir_types.MemRefType([], vtype))
                    new_loop.parent.insert_before(new_loop, acc_cell)
                    init_store = memref_d.StoreOp(acc_init.results[0], acc_cell.results[0], [])
                    new_loop.parent.insert_before(new_loop, init_store)
                    accumulators[key] = {"cell": acc_cell.results[0],
                                         "orig": op.operands[0], "elem": elem,
                                         "kind": "add", "init_const": zero}
                acc = accumulators[key]
                acc_load = memref_d.LoadOp(acc["cell"], [])
                new_body.add_op(acc_load)
                vec_map[op.results[0]] = acc_load.results[0]
                continue
            if op.name == "memref.store" and op.operands[1].type.rank == 0:
                key = id(op.operands[1])
                acc = accumulators.get(key)
                value = vec_map.get(op.operands[0], op.operands[0])
                if acc is None:
                    new_body.add_op(memref_d.StoreOp(value, op.operands[1], []))
                    continue
                kind = self._combiner_kind(op.operands[0])
                if kind is not None:
                    acc["kind"] = kind
                new_body.add_op(memref_d.StoreOp(value, acc["cell"], []))
                reduction_stores.append(op)
                continue
            # elementwise op: clone with vectorised operands
            elem = op.results[0].type if op.results else ir_types.f64
            if op.name == "arith.constant":
                const = Operation.__new__(type(op))
                Operation.__init__(const, result_types=[op.results[0].type],
                                   attributes=dict(op.attributes), name=op.name)
                new_body.add_op(const)
                vec_map[op.results[0]] = vectorized(const.results[0], op.results[0].type)
                continue
            new_operands = []
            for operand in op.operands:
                if operand in vec_map:
                    new_operands.append(vec_map[operand])
                elif isinstance(operand.type, ir_types.VectorType):
                    new_operands.append(operand)
                else:
                    new_operands.append(vectorized(operand, operand.type))
            vec_type = ir_types.VectorType([width], elem) if op.results else None
            cloned = Operation.__new__(type(op))
            Operation.__init__(cloned, operands=new_operands,
                               result_types=[vec_type] if vec_type else [],
                               attributes=dict(op.attributes), name=op.name)
            new_body.add_op(cloned)
            if op.results:
                vec_map[op.results[0]] = cloned.results[0]

        new_body.add_op(affine_d.AffineYieldOp())
        new_loop.set_attr("vectorized", arith.ConstantOp(1, ir_types.i32).attributes["value"])

        # finalise reductions: horizontal reduce the accumulator into the
        # original rank-0 memref after the loop
        for acc in accumulators.values():
            kind = acc.get("kind", "add")
            is_float = isinstance(acc["elem"], ir_types.FloatType)
            # retarget the accumulator's splat to the reduction's neutral
            # element (the kind is only known once the combiner was seen):
            # a zero splat poisons max over negatives, min over positives
            # and any product.  Integer sentinels follow the element width
            # (i64 data may legitimately exceed i32 range).
            width = getattr(acc["elem"], "width", 32)
            neutral = {"add": 0, "mul": 1,
                       "max": -1.0e308 if is_float else -(2 ** (width - 1)),
                       "min": 1.0e308 if is_float
                       else 2 ** (width - 1) - 1}[kind]
            init_const = acc.get("init_const")
            if init_const is not None:
                from ..ir.attributes import FloatAttr, IntegerAttr
                init_const.attributes["value"] = \
                    FloatAttr(float(neutral), acc["elem"]) if is_float \
                    else IntegerAttr(int(neutral), acc["elem"])
            load_vec = memref_d.LoadOp(acc["cell"], [])
            new_loop.parent.insert_after(new_loop, load_vec)
            red_kind = {"add": "add", "mul": "mul",
                        "max": "maxf" if is_float else "maxsi",
                        "min": "minf" if is_float else "minsi"}[kind]
            red = vector_d.ReductionOp(red_kind, load_vec.results[0])
            new_loop.parent.insert_after(load_vec, red)
            orig_load = memref_d.LoadOp(acc["orig"], [])
            new_loop.parent.insert_after(red, orig_load)
            combine_table = {
                ("add", True): arith.AddFOp, ("add", False): arith.AddIOp,
                ("mul", True): arith.MulFOp, ("mul", False): arith.MulIOp,
                ("max", True): arith.MaximumFOp, ("max", False): arith.MaxSIOp,
                ("min", True): arith.MinimumFOp, ("min", False): arith.MinSIOp,
            }
            add = combine_table[(kind, is_float)](orig_load.results[0], red.results[0])
            new_loop.parent.insert_after(orig_load, add)
            store = memref_d.StoreOp(add.result, acc["orig"], [])
            new_loop.parent.insert_after(add, store)

        if main_ub >= ub_const:
            loop.erase(check_uses=False)
        else:
            # the original loop becomes the scalar remainder over [main_ub, ub)
            from ..ir.attributes import AffineMapAttr as _AM
            loop.attributes["lower_bound_map"] = _AM.constant_map(main_ub)
        return True


@register_pass
class AffineSuperVectorizePass(FunctionPass):
    """``affine-super-vectorize``: vectorise innermost affine loops.

    Option ``virtual_vector_size`` matches the mlir-opt spelling
    ``affine-super-vectorize{virtual-vector-size=4}``.
    """

    NAME = "affine-super-vectorize"

    def run_on_function(self, func: Operation) -> None:
        width = int(self.options.get("virtual_vector_size", 4))
        vectorizer = LoopVectorizer(width)
        for op in list(func.walk()):
            if op.name == "affine.for" and op.parent is not None and _is_innermost(op):
                vectorizer.vectorize(op)


__all__ = ["AffineSuperVectorizePass", "LoopVectorizer"]
