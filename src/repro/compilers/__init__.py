"""Compiler adapters used by the experiment harness.

Two adapters actually build and run IR produced by this repository:

* :class:`FlangV20Adapter` — the baseline Flang flow (HLFIR -> FIR, bespoke
  code generation, runtime-library intrinsics), executed at the FIR level;
* :class:`OurApproachAdapter` — the paper's standard-MLIR flow, executed at
  the optimised standard-dialect level (after the Section V/VI passes).

The remaining columns of the paper's tables (Flang v17, Cray CE 15, GNU
Gfortran 11.2, nvfortran 22.11) are closed-source or out of scope to rebuild;
they are modeled by applying documented capability profiles
(:mod:`repro.machine.models`) to the same structural execution statistics —
see DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core import StandardMLIRCompiler
from ..flang import FlangCompiler
from ..machine import (ARCHER2, CIRRUS_V100, CRAY_PROFILE, FLANG_V17_PROFILE,
                       FLANG_V20_PROFILE, GNU_PROFILE, NVFORTRAN_PROFILE,
                       OURS_PROFILE, CompilerProfile, ExecutionStats,
                       Interpreter, PerformanceModel, profile_stats)
from ..machine.perf import RuntimeBreakdown
from ..workloads import Workload


@dataclass
class Measurement:
    """One modeled benchmark measurement."""

    compiler: str
    workload: str
    runtime_s: float
    breakdown: RuntimeBreakdown
    stats: ExecutionStats
    output: Tuple[str, ...] = ()
    compiled: bool = True
    failure: Optional[str] = None

    @property
    def did_not_compile(self) -> bool:
        return not self.compiled


class _StatsCache:
    """Caches (compile + interpret) per workload and flow, so that several
    compiler columns can share one structural execution."""

    def __init__(self):
        self._cache: Dict[Tuple, Tuple[ExecutionStats, Tuple[str, ...]]] = {}

    def get(self, key):
        return self._cache.get(key)

    def put(self, key, value):
        self._cache[key] = value


_CACHE = _StatsCache()


class CompilerAdapter:
    """Base class: compile a workload, execute it, model its runtime."""

    name = "base"
    column = "base"
    profile: CompilerProfile = OURS_PROFILE

    def __init__(self, perf_model: Optional[PerformanceModel] = None):
        self.perf = perf_model or PerformanceModel()

    # -- to be provided by subclasses ----------------------------------------------
    def execute(self, workload: Workload, **options) -> Tuple[ExecutionStats, Tuple[str, ...]]:
        raise NotImplementedError

    # -- shared measurement logic -----------------------------------------------------
    def measure(self, workload: Workload, *, threads: int = 1, gpu: bool = False,
                size_overrides: Optional[Dict[str, int]] = None) -> Measurement:
        try:
            stats, output = self.execute(workload, threads=threads, gpu=gpu)
        except Exception as exc:  # compilation/execution failure -> DNC entry
            return Measurement(self.column, workload.name, float("nan"),
                               RuntimeBreakdown(), ExecutionStats(),
                               compiled=False, failure=str(exc))
        scaling = workload.scaling(size_overrides)
        if gpu:
            breakdown = self.perf.gpu_runtime(stats, scaling, self.profile)
        else:
            breakdown = self.perf.cpu_runtime(stats, scaling, self.profile,
                                              threads=threads)
        return Measurement(self.column, workload.name, breakdown.total_s,
                           breakdown, stats, output)

    def instruction_mix(self, workload: Workload):
        stats, _ = self.execute(workload)
        return profile_stats(stats, workload.work_ratio())


class FlangV20Adapter(CompilerAdapter):
    """Baseline Flang 20.0.0 (LLVM 18.1.8): the flow of Figure 1."""

    name = "Flang v20"
    column = "flang-v20"
    profile = FLANG_V20_PROFILE

    def execute(self, workload: Workload, threads: int = 1, gpu: bool = False,
                **_):
        key = ("flang", workload.name, workload.uses_openmp, threads > 1, gpu)
        cached = _CACHE.get(key)
        if cached is not None:
            return cached
        if gpu or workload.uses_openacc:
            # Section VI-C: Flang v18 ICEs on OpenACC lowering
            from ..flang.codegen import FlangCodegenError
            raise FlangCodegenError(
                "missing LLVMTranslationDialectInterface for the acc dialect")
        compiler = FlangCompiler()
        result = compiler.compile(workload.source(scaled=True), stop_at="fir")
        interpreter = Interpreter(result.fir_module)
        interpreter.run_main()
        value = (interpreter.stats, tuple(interpreter.printed))
        _CACHE.put(key, value)
        return value


class FlangV17Adapter(FlangV20Adapter):
    """Flang 17.0.0 (pre-HLFIR): same structural execution, v17 profile."""

    name = "Flang v17"
    column = "flang-v17"
    profile = FLANG_V17_PROFILE


class CrayAdapter(FlangV20Adapter):
    """Cray CE 15.0.0 — modeled with the Cray capability profile."""

    name = "Cray"
    column = "cray"
    profile = CRAY_PROFILE


class GnuAdapter(FlangV20Adapter):
    """GNU Gfortran 11.2.0 — modeled with the Gfortran capability profile."""

    name = "GNU"
    column = "gnu"
    profile = GNU_PROFILE


class OurApproachAdapter(CompilerAdapter):
    """The paper's flow: HLFIR/FIR -> standard MLIR -> optimised IR."""

    name = "Our approach"
    column = "our-approach"
    profile = OURS_PROFILE

    def __init__(self, perf_model: Optional[PerformanceModel] = None,
                 vector_width: int = 4, tile: bool = False, unroll: int = 0):
        super().__init__(perf_model)
        self.vector_width = vector_width
        self.tile = tile
        self.unroll = unroll

    def execute(self, workload: Workload, threads: int = 1, gpu: bool = False,
                **_):
        key = ("ours", workload.name, workload.uses_openmp, threads > 1, gpu,
               self.vector_width, self.tile, self.unroll)
        cached = _CACHE.get(key)
        if cached is not None:
            return cached
        compiler = StandardMLIRCompiler(
            vector_width=self.vector_width,
            parallelise=threads > 1 and not workload.uses_openmp,
            gpu=gpu or workload.uses_openacc,
            tile=self.tile, unroll=self.unroll)
        result = compiler.compile(workload.source(scaled=True))
        interpreter = Interpreter(result.optimised_module)
        interpreter.run_main()
        value = (interpreter.stats, tuple(interpreter.printed))
        _CACHE.put(key, value)
        return value


class NvfortranAdapter(OurApproachAdapter):
    """NVIDIA nvfortran 22.11 (Table V GPU reference) — modeled by applying
    the nvfortran profile to the same OpenACC kernel structure."""

    name = "nvfortran"
    column = "nvfortran"
    profile = NVFORTRAN_PROFILE


#: Column order used by the harness for the CPU tables.
CPU_ADAPTERS = {
    "our-approach": OurApproachAdapter,
    "flang-v20": FlangV20Adapter,
    "flang-v17": FlangV17Adapter,
    "cray": CrayAdapter,
    "gnu": GnuAdapter,
}

__all__ = [
    "Measurement", "CompilerAdapter", "FlangV20Adapter", "FlangV17Adapter",
    "CrayAdapter", "GnuAdapter", "OurApproachAdapter", "NvfortranAdapter",
    "CPU_ADAPTERS",
]
