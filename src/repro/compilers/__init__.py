"""Compiler adapters used by the experiment harness.

Two adapters actually build and run IR produced by this repository:

* :class:`FlangV20Adapter` — the baseline Flang flow (HLFIR -> FIR, bespoke
  code generation, runtime-library intrinsics), executed at the FIR level;
* :class:`OurApproachAdapter` — the paper's standard-MLIR flow, executed at
  the optimised standard-dialect level (after the Section V/VI passes).

The remaining columns of the paper's tables (Flang v17, Cray CE 15, GNU
Gfortran 11.2, nvfortran 22.11) are closed-source or out of scope to rebuild;
they are modeled by applying documented capability profiles
(:mod:`repro.machine.models`) to the same structural execution statistics —
see DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..machine import (ARCHER2, CIRRUS_V100, CRAY_PROFILE, FLANG_V17_PROFILE,
                       FLANG_V20_PROFILE, GNU_PROFILE, NVFORTRAN_PROFILE,
                       OURS_PROFILE, CompilerProfile, ExecutionStats,
                       PerformanceModel, profile_stats)
from ..machine.perf import RuntimeBreakdown
from ..service import CompileJob, get_default_service
from ..workloads import Workload


@dataclass
class Measurement:
    """One modeled benchmark measurement."""

    compiler: str
    workload: str
    runtime_s: float
    breakdown: RuntimeBreakdown
    stats: ExecutionStats
    output: Tuple[str, ...] = ()
    compiled: bool = True
    failure: Optional[str] = None

    @property
    def did_not_compile(self) -> bool:
        return not self.compiled


def _run_through_service(job: CompileJob) -> Tuple[ExecutionStats, Tuple[str, ...]]:
    """Execute a job via the process-wide compilation service.

    The service's content-addressed cache replaces the old per-adapter
    ``_StatsCache``: identical (workload, flow, options) executions are
    shared across adapter instances, across tables and — with a persistent
    cache directory — across process invocations.
    """
    artifact = get_default_service().execute(job)
    artifact.raise_for_failure()
    return artifact.stats, artifact.printed


class CompilerAdapter:
    """Base class: compile a workload, execute it, model its runtime.

    Compilation is dispatched entirely by flow *name* through the flow
    registry (:mod:`repro.flows`): an adapter is just a (flow, options,
    capability profile) triple, so measuring a newly registered flow needs
    no subclass — ``CompilerAdapter(flow="my-flow", **options)`` works.
    """

    name = "base"
    column = "base"
    profile: CompilerProfile = OURS_PROFILE
    flow = "ours"

    def __init__(self, perf_model: Optional[PerformanceModel] = None, *,
                 flow: Optional[str] = None, engine: str = "compiled",
                 **options):
        self.perf = perf_model or PerformanceModel()
        if flow is not None:
            self.flow = flow
        self.engine = engine
        self.options = options

    # -- flow dispatch ---------------------------------------------------------------
    def execute(self, workload: Workload, threads: int = 1, gpu: bool = False,
                engine: Optional[str] = None,
                **_) -> Tuple[ExecutionStats, Tuple[str, ...]]:
        return _run_through_service(
            CompileJob(self.flow, workload.name, options=self.options,
                       threads=threads, gpu=gpu,
                       engine=engine or self.engine, workload=workload))

    # -- shared measurement logic -----------------------------------------------------
    def measure(self, workload: Workload, *, threads: int = 1, gpu: bool = False,
                engine: Optional[str] = None,
                size_overrides: Optional[Dict[str, int]] = None) -> Measurement:
        try:
            stats, output = self.execute(workload, threads=threads, gpu=gpu,
                                         engine=engine)
        except Exception as exc:  # compilation/execution failure -> DNC entry
            return Measurement(self.column, workload.name, float("nan"),
                               RuntimeBreakdown(), ExecutionStats(),
                               compiled=False, failure=str(exc))
        scaling = workload.scaling(size_overrides)
        if gpu:
            breakdown = self.perf.gpu_runtime(stats, scaling, self.profile)
        else:
            breakdown = self.perf.cpu_runtime(stats, scaling, self.profile,
                                              threads=threads)
        return Measurement(self.column, workload.name, breakdown.total_s,
                           breakdown, stats, output)

    def instruction_mix(self, workload: Workload,
                        engine: Optional[str] = None):
        stats, _ = self.execute(workload, engine=engine)
        return profile_stats(stats, workload.work_ratio())


class FlangV20Adapter(CompilerAdapter):
    """Baseline Flang 20.0.0 (LLVM 18.1.8): the flow of Figure 1."""

    name = "Flang v20"
    column = "flang-v20"
    profile = FLANG_V20_PROFILE
    flow = "flang"


class FlangV17Adapter(FlangV20Adapter):
    """Flang 17.0.0 (pre-HLFIR): same structural execution, v17 profile."""

    name = "Flang v17"
    column = "flang-v17"
    profile = FLANG_V17_PROFILE


class CrayAdapter(FlangV20Adapter):
    """Cray CE 15.0.0 — modeled with the Cray capability profile."""

    name = "Cray"
    column = "cray"
    profile = CRAY_PROFILE


class GnuAdapter(FlangV20Adapter):
    """GNU Gfortran 11.2.0 — modeled with the Gfortran capability profile."""

    name = "GNU"
    column = "gnu"
    profile = GNU_PROFILE


class OurApproachAdapter(CompilerAdapter):
    """The paper's flow: HLFIR/FIR -> standard MLIR -> optimised IR.

    Keyword arguments (``vector_width=8``, ``tile=True``, ...) become flow
    options validated against the ``ours`` flow's options schema.
    """

    name = "Our approach"
    column = "our-approach"
    profile = OURS_PROFILE
    flow = "ours"


class NvfortranAdapter(OurApproachAdapter):
    """NVIDIA nvfortran 22.11 (Table V GPU reference) — modeled by applying
    the nvfortran profile to the same OpenACC kernel structure."""

    name = "nvfortran"
    column = "nvfortran"
    profile = NVFORTRAN_PROFILE


#: Column order used by the harness for the CPU tables.
CPU_ADAPTERS = {
    "our-approach": OurApproachAdapter,
    "flang-v20": FlangV20Adapter,
    "flang-v17": FlangV17Adapter,
    "cray": CrayAdapter,
    "gnu": GnuAdapter,
}

__all__ = [
    "Measurement", "CompilerAdapter", "FlangV20Adapter", "FlangV17Adapter",
    "CrayAdapter", "GnuAdapter", "OurApproachAdapter", "NvfortranAdapter",
    "CPU_ADAPTERS",
]
