"""The ``affine`` dialect: affine loops, loads and stores.

The paper's vectorisation path promotes ``scf.for`` loops to ``affine.for``
so that the rich set of affine loop passes (super-vectorisation, tiling,
unrolling) can be applied; these passes live in :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import AffineExpr, AffineMapAttr, IntegerAttr
from ..ir.core import Block, Operation, Region, Value, register_op
from ..ir.traits import (IS_TERMINATOR, LOOP_LIKE, PURE, READ_ONLY,
                         STRUCTURED_CONTROL_FLOW, WRITES_MEMORY)
from ..ir.types import MemRefType, Type, index


@register_op
class AffineYieldOp(Operation):
    OP_NAME = "affine.yield"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, values: Sequence[Value] = ()):
        super().__init__(operands=list(values))


@register_op
class AffineForOp(Operation):
    """``affine.for`` with constant or SSA bounds and a constant step.

    Bounds are affine maps over the bound operands; this reproduction keeps
    the common cases used by the lowering: constant bounds, identity maps
    over a single SSA operand, and constant steps.
    """

    OP_NAME = "affine.for"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW, LOOP_LIKE})

    def __init__(self, lower_operands: Sequence[Value], lower_map: AffineMapAttr,
                 upper_operands: Sequence[Value], upper_map: AffineMapAttr,
                 step: int = 1, iter_args: Sequence[Value] = (),
                 body: Optional[Block] = None):
        attrs = {
            "lower_bound_map": lower_map,
            "upper_bound_map": upper_map,
            "step": IntegerAttr(step),
            "num_lower_operands": IntegerAttr(len(lower_operands)),
        }
        if body is None:
            body = Block(arg_types=[index] + [v.type for v in iter_args])
        super().__init__(operands=[*lower_operands, *upper_operands, *iter_args],
                         result_types=[v.type for v in iter_args],
                         regions=[Region([body])], attributes=attrs)

    # -- convenience constructors -----------------------------------------------
    @staticmethod
    def constant_bounds(lower: int, upper: int, step: int = 1,
                        body: Optional[Block] = None) -> "AffineForOp":
        return AffineForOp([], AffineMapAttr.constant_map(lower),
                           [], AffineMapAttr.constant_map(upper), step, body=body)

    @staticmethod
    def ssa_bounds(lower: Value, upper: Value, step: int = 1,
                   body: Optional[Block] = None) -> "AffineForOp":
        ident = AffineMapAttr(1, 0, [AffineExpr.dim(0)])
        return AffineForOp([lower], ident, [upper], ident, step, body=body)

    # -- accessors -----------------------------------------------------------------
    @property
    def step_value(self) -> int:
        return self.attributes["step"].value

    @property
    def lower_bound_map(self) -> AffineMapAttr:
        return self.attributes["lower_bound_map"]

    @property
    def upper_bound_map(self) -> AffineMapAttr:
        return self.attributes["upper_bound_map"]

    @property
    def num_lower_operands(self) -> int:
        return self.attributes["num_lower_operands"].value

    @property
    def lower_operands(self):
        return self.operands[:self.num_lower_operands]

    @property
    def upper_operands(self):
        n_iter = len(self.results)
        end = len(self.operands) - n_iter
        return self.operands[self.num_lower_operands:end]

    @property
    def iter_args(self):
        n_iter = len(self.results)
        return self.operands[len(self.operands) - n_iter:] if n_iter else ()

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def induction_variable(self) -> Value:
        return self.body.args[0]

    def constant_trip_count(self) -> Optional[int]:
        """Trip count when both bounds are constant maps."""
        lb, ub = self.lower_bound_map, self.upper_bound_map
        if (len(lb.results) == 1 and lb.results[0].kind == "const"
                and len(ub.results) == 1 and ub.results[0].kind == "const"):
            lo, hi = lb.results[0].value, ub.results[0].value
            step = self.step_value
            if hi <= lo:
                return 0
            return (hi - lo + step - 1) // step
        return None


class _AffineMemOp(Operation):
    """Base for affine.load / affine.store: subscripts are an affine map of
    the surrounding loop induction variables."""

    def _init_map(self, memref: Value, indices: Sequence[Value],
                  map_attr: Optional[AffineMapAttr]) -> AffineMapAttr:
        rank = memref.type.rank
        if map_attr is None:
            map_attr = AffineMapAttr.identity(rank)
        if len(map_attr.results) != rank:
            raise ValueError("affine map result count must equal memref rank")
        return map_attr


@register_op
class AffineLoadOp(_AffineMemOp):
    OP_NAME = "affine.load"
    TRAITS = frozenset({READ_ONLY})

    def __init__(self, memref: Value, indices: Sequence[Value],
                 map_attr: Optional[AffineMapAttr] = None):
        map_attr = self._init_map(memref, indices, map_attr)
        super().__init__(operands=[memref, *indices],
                         result_types=[memref.type.element_type],
                         attributes={"map": map_attr})

    @property
    def memref(self) -> Value:
        return self.operands[0]

    @property
    def indices(self):
        return self.operands[1:]

    @property
    def map(self) -> AffineMapAttr:
        return self.attributes["map"]


@register_op
class AffineStoreOp(_AffineMemOp):
    OP_NAME = "affine.store"
    TRAITS = frozenset({WRITES_MEMORY})

    def __init__(self, value: Value, memref: Value, indices: Sequence[Value],
                 map_attr: Optional[AffineMapAttr] = None):
        map_attr = self._init_map(memref, indices, map_attr)
        super().__init__(operands=[value, memref, *indices],
                         attributes={"map": map_attr})

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def memref(self) -> Value:
        return self.operands[1]

    @property
    def indices(self):
        return self.operands[2:]

    @property
    def map(self) -> AffineMapAttr:
        return self.attributes["map"]


@register_op
class AffineApplyOp(Operation):
    """Apply an affine map to index operands, producing a single index."""

    OP_NAME = "affine.apply"
    TRAITS = frozenset({PURE})

    def __init__(self, map_attr: AffineMapAttr, operands: Sequence[Value]):
        if len(map_attr.results) != 1:
            raise ValueError("affine.apply requires a single-result map")
        super().__init__(operands=list(operands), result_types=[index],
                         attributes={"map": map_attr})

    @property
    def map(self) -> AffineMapAttr:
        return self.attributes["map"]


@register_op
class AffineParallelOp(Operation):
    """``affine.parallel`` over a constant rectangular iteration space."""

    OP_NAME = "affine.parallel"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW, LOOP_LIKE})

    def __init__(self, lower: Sequence[int], upper: Sequence[int],
                 steps: Sequence[int], body: Optional[Block] = None):
        from ..ir.attributes import DenseIntElementsAttr
        rank = len(lower)
        if body is None:
            body = Block(arg_types=[index] * rank)
        super().__init__(
            regions=[Region([body])],
            attributes={
                "lower": DenseIntElementsAttr(lower),
                "upper": DenseIntElementsAttr(upper),
                "steps": DenseIntElementsAttr(steps),
            })

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]


__all__ = [
    "AffineForOp", "AffineYieldOp", "AffineLoadOp", "AffineStoreOp",
    "AffineApplyOp", "AffineParallelOp",
]
