"""The ``linalg`` dialect: named linear-algebra operations on memrefs.

Section V-C and VI-A of the paper lower Fortran intrinsics (sum, matmul,
dot_product, transpose, maxval, minval, product) to linalg operations, which
are then lowered to loops (``convert-linalg-to-loops``) or to affine loops
for tiling/vectorisation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import DenseIntElementsAttr, StringAttr
from ..ir.core import Block, Operation, Region, Value, register_op
from ..ir.traits import IS_TERMINATOR, WRITES_MEMORY
from ..ir.types import MemRefType


@register_op
class LinalgYieldOp(Operation):
    OP_NAME = "linalg.yield"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, values: Sequence[Value] = ()):
        super().__init__(operands=list(values))


class _NamedLinalgOp(Operation):
    """Common base of named linalg ops operating on memref ins/outs."""

    TRAITS = frozenset({WRITES_MEMORY})
    NUM_INPUTS = 1

    def __init__(self, inputs: Sequence[Value], outputs: Sequence[Value],
                 attributes=None, regions=0):
        super().__init__(operands=[*inputs, *outputs], attributes=attributes or {},
                         regions=regions)

    @property
    def inputs(self):
        return self.operands[:self.NUM_INPUTS]

    @property
    def outputs(self):
        return self.operands[self.NUM_INPUTS:]


@register_op
class MatmulOp(_NamedLinalgOp):
    """C += A @ B on rank-2 memrefs."""

    OP_NAME = "linalg.matmul"
    NUM_INPUTS = 2

    def __init__(self, a: Value, b: Value, c: Value):
        super().__init__([a, b], [c])


@register_op
class DotOp(_NamedLinalgOp):
    """out(0-d memref) += sum(a * b) on rank-1 memrefs."""

    OP_NAME = "linalg.dot"
    NUM_INPUTS = 2

    def __init__(self, a: Value, b: Value, out: Value):
        super().__init__([a, b], [out])


@register_op
class TransposeOp(_NamedLinalgOp):
    """out = permute(input, permutation)."""

    OP_NAME = "linalg.transpose"
    NUM_INPUTS = 1

    def __init__(self, input: Value, out: Value, permutation: Sequence[int]):
        super().__init__([input], [out],
                         attributes={"permutation": DenseIntElementsAttr(permutation)})

    @property
    def permutation(self):
        return tuple(self.attributes["permutation"].values)


@register_op
class FillOp(_NamedLinalgOp):
    """Fill a memref with a scalar value."""

    OP_NAME = "linalg.fill"
    NUM_INPUTS = 1

    def __init__(self, value: Value, out: Value):
        super().__init__([value], [out])


@register_op
class CopyOp(_NamedLinalgOp):
    OP_NAME = "linalg.copy"
    NUM_INPUTS = 1

    def __init__(self, input: Value, out: Value):
        super().__init__([input], [out])


@register_op
class ReduceOp(_NamedLinalgOp):
    """``linalg.reduce``: reduce the input over the given dimensions into the
    output memref using the combiner region (Listing 8 of the paper)."""

    OP_NAME = "linalg.reduce"
    NUM_INPUTS = 1

    def __init__(self, input: Value, out: Value, dimensions: Sequence[int],
                 body: Optional[Block] = None):
        element_type = input.type.element_type
        if body is None:
            body = Block(arg_types=[element_type, element_type])
        super().__init__([input], [out],
                         attributes={"dimensions": DenseIntElementsAttr(dimensions)},
                         regions=[Region([body])])

    @property
    def dimensions(self):
        return tuple(self.attributes["dimensions"].values)

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]


@register_op
class GenericOp(_NamedLinalgOp):
    """A simplified ``linalg.generic``: elementwise map over ins/outs.

    Only the identity-indexing elementwise form is needed by the lowering of
    Fortran elemental array expressions.
    """

    OP_NAME = "linalg.generic"
    NUM_INPUTS = 1

    def __init__(self, inputs: Sequence[Value], outputs: Sequence[Value],
                 body: Optional[Block] = None, iterator_types: Sequence[str] = ()):
        element_types = [v.type.element_type for v in inputs] + \
                        [v.type.element_type for v in outputs]
        if body is None:
            body = Block(arg_types=element_types)
        attrs = {
            "num_inputs": DenseIntElementsAttr([len(inputs)]),
            "iterator_types": StringAttr(",".join(iterator_types)),
        }
        Operation.__init__(self, operands=[*inputs, *outputs], attributes=attrs,
                           regions=[Region([body])])

    @property
    def num_inputs(self) -> int:
        return self.attributes["num_inputs"].values[0]

    @property
    def inputs(self):
        return self.operands[:self.num_inputs]

    @property
    def outputs(self):
        return self.operands[self.num_inputs:]

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]


__all__ = [
    "LinalgYieldOp", "MatmulOp", "DotOp", "TransposeOp", "FillOp", "CopyOp",
    "ReduceOp", "GenericOp",
]
