"""The ``func`` dialect: functions, calls and returns."""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import DictAttr, StringAttr, SymbolRefAttr, TypeAttr
from ..ir.core import Block, Operation, Region, Value, register_op
from ..ir.traits import (AUTOMATIC_ALLOCATION_SCOPE, CALL_LIKE, IS_TERMINATOR,
                         SYMBOL)
from ..ir.types import FunctionType, Type


@register_op
class FuncOp(Operation):
    """A function definition (or declaration, when the body region is empty)."""

    OP_NAME = "func.func"
    TRAITS = frozenset({SYMBOL, AUTOMATIC_ALLOCATION_SCOPE})

    def __init__(self, name: str, function_type: FunctionType,
                 *, visibility: str = "public",
                 arg_attrs: Optional[Sequence[dict]] = None,
                 create_entry_block: bool = True):
        attrs = {
            "sym_name": StringAttr(name),
            "function_type": TypeAttr(function_type),
            "sym_visibility": StringAttr(visibility),
        }
        if arg_attrs:
            attrs["arg_attrs"] = DictAttr(
                {str(i): DictAttr(a) for i, a in enumerate(arg_attrs)})
        region = Region()
        if create_entry_block:
            region.add_block(Block(arg_types=function_type.inputs))
        super().__init__(regions=[region], attributes=attrs)

    # -- accessors ----------------------------------------------------------
    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"].value

    @property
    def function_type(self) -> FunctionType:
        return self.attributes["function_type"].type

    @property
    def body(self) -> Region:
        return self.regions[0]

    @property
    def entry_block(self) -> Optional[Block]:
        return self.body.entry_block

    @property
    def is_declaration(self) -> bool:
        return self.body.entry_block is None

    @property
    def arguments(self):
        block = self.entry_block
        return list(block.args) if block is not None else []

    def verify_(self) -> None:
        block = self.entry_block
        if block is not None:
            expected = self.function_type.inputs
            got = tuple(a.type for a in block.args)
            if got != tuple(expected):
                raise ValueError(
                    f"func.func {self.sym_name}: entry block argument types "
                    f"{[t.mlir() for t in got]} do not match the function type")


@register_op
class ReturnOp(Operation):
    OP_NAME = "func.return"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, values: Sequence[Value] = ()):
        super().__init__(operands=list(values))


@register_op
class CallOp(Operation):
    OP_NAME = "func.call"
    TRAITS = frozenset({CALL_LIKE})

    def __init__(self, callee: str, operands: Sequence[Value],
                 result_types: Sequence[Type]):
        super().__init__(operands=list(operands), result_types=list(result_types),
                         attributes={"callee": SymbolRefAttr(callee)})

    @property
    def callee(self) -> str:
        return self.attributes["callee"].root


__all__ = ["FuncOp", "ReturnOp", "CallOp"]
