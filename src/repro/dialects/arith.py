"""The ``arith`` dialect: integer/float arithmetic, comparisons and casts."""

from __future__ import annotations

from typing import Optional, Union

from ..ir.attributes import Attribute, FloatAttr, IntegerAttr, StringAttr
from ..ir.core import Operation, Value, register_op
from ..ir.traits import COMMUTATIVE, CONSTANT_LIKE, PURE
from ..ir.types import (FloatType, IndexType, IntegerType, Type, VectorType,
                        i1, index)


def _element_type(t: Type) -> Type:
    return t.element_type if isinstance(t, VectorType) else t


@register_op
class ConstantOp(Operation):
    OP_NAME = "arith.constant"
    TRAITS = frozenset({PURE, CONSTANT_LIKE})

    def __init__(self, value: Union[int, float, Attribute], type: Optional[Type] = None):
        if isinstance(value, Attribute):
            attr = value
            result_type = type or getattr(value, "type", None)
        elif isinstance(value, bool):
            result_type = type or i1
            attr = IntegerAttr(int(value), result_type)
        elif isinstance(value, int):
            result_type = type or index
            attr = IntegerAttr(value, result_type)
        else:
            if type is None:
                raise ValueError("float constants require an explicit type")
            result_type = type
            attr = FloatAttr(float(value), result_type)
        if result_type is None:
            raise ValueError("cannot infer constant type")
        super().__init__(result_types=[result_type], attributes={"value": attr})

    @property
    def value(self):
        return self.attributes["value"].value


class _BinaryOp(Operation):
    """Common base for elementwise binary arithmetic ops."""

    TRAITS = frozenset({PURE})

    def __init__(self, lhs: Value, rhs: Value, result_type: Optional[Type] = None):
        super().__init__(operands=[lhs, rhs],
                         result_types=[result_type or lhs.type])

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


# -- integer arithmetic ------------------------------------------------------

@register_op
class AddIOp(_BinaryOp):
    OP_NAME = "arith.addi"
    TRAITS = frozenset({PURE, COMMUTATIVE})


@register_op
class SubIOp(_BinaryOp):
    OP_NAME = "arith.subi"


@register_op
class MulIOp(_BinaryOp):
    OP_NAME = "arith.muli"
    TRAITS = frozenset({PURE, COMMUTATIVE})


@register_op
class DivSIOp(_BinaryOp):
    OP_NAME = "arith.divsi"


@register_op
class FloorDivSIOp(_BinaryOp):
    OP_NAME = "arith.floordivsi"


@register_op
class CeilDivSIOp(_BinaryOp):
    OP_NAME = "arith.ceildivsi"


@register_op
class RemSIOp(_BinaryOp):
    OP_NAME = "arith.remsi"


@register_op
class AndIOp(_BinaryOp):
    OP_NAME = "arith.andi"
    TRAITS = frozenset({PURE, COMMUTATIVE})


@register_op
class OrIOp(_BinaryOp):
    OP_NAME = "arith.ori"
    TRAITS = frozenset({PURE, COMMUTATIVE})


@register_op
class XOrIOp(_BinaryOp):
    OP_NAME = "arith.xori"
    TRAITS = frozenset({PURE, COMMUTATIVE})


@register_op
class ShLIOp(_BinaryOp):
    OP_NAME = "arith.shli"


@register_op
class ShRSIOp(_BinaryOp):
    OP_NAME = "arith.shrsi"


@register_op
class MaxSIOp(_BinaryOp):
    OP_NAME = "arith.maxsi"
    TRAITS = frozenset({PURE, COMMUTATIVE})


@register_op
class MinSIOp(_BinaryOp):
    OP_NAME = "arith.minsi"
    TRAITS = frozenset({PURE, COMMUTATIVE})


# -- floating point arithmetic -------------------------------------------------

@register_op
class AddFOp(_BinaryOp):
    OP_NAME = "arith.addf"
    TRAITS = frozenset({PURE, COMMUTATIVE})


@register_op
class SubFOp(_BinaryOp):
    OP_NAME = "arith.subf"


@register_op
class MulFOp(_BinaryOp):
    OP_NAME = "arith.mulf"
    TRAITS = frozenset({PURE, COMMUTATIVE})


@register_op
class DivFOp(_BinaryOp):
    OP_NAME = "arith.divf"


@register_op
class RemFOp(_BinaryOp):
    OP_NAME = "arith.remf"


@register_op
class MaximumFOp(_BinaryOp):
    OP_NAME = "arith.maximumf"
    TRAITS = frozenset({PURE, COMMUTATIVE})


@register_op
class MinimumFOp(_BinaryOp):
    OP_NAME = "arith.minimumf"
    TRAITS = frozenset({PURE, COMMUTATIVE})


@register_op
class NegFOp(Operation):
    OP_NAME = "arith.negf"
    TRAITS = frozenset({PURE})

    def __init__(self, value: Value):
        super().__init__(operands=[value], result_types=[value.type])


# -- comparisons ----------------------------------------------------------------

#: Integer comparison predicates (MLIR spelling).
CMPI_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")
#: Float comparison predicates (LLVM fcmp semantics: ``o*`` false on NaN
#: operands, ``u*`` true on NaN operands, ``ord``/``uno`` test for NaN).
CMPF_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge", "ord", "uno",
                   "ueq", "une", "ult", "ule", "ugt", "uge")


@register_op
class CmpIOp(Operation):
    OP_NAME = "arith.cmpi"
    TRAITS = frozenset({PURE})

    def __init__(self, predicate: str, lhs: Value, rhs: Value):
        if predicate not in CMPI_PREDICATES:
            raise ValueError(f"invalid cmpi predicate '{predicate}'")
        result = VectorType(lhs.type.shape, i1) if isinstance(lhs.type, VectorType) else i1
        super().__init__(operands=[lhs, rhs], result_types=[result],
                         attributes={"predicate": StringAttr(predicate)})

    @property
    def predicate(self) -> str:
        return self.attributes["predicate"].value


@register_op
class CmpFOp(Operation):
    OP_NAME = "arith.cmpf"
    TRAITS = frozenset({PURE})

    def __init__(self, predicate: str, lhs: Value, rhs: Value):
        if predicate not in CMPF_PREDICATES:
            raise ValueError(f"invalid cmpf predicate '{predicate}'")
        result = VectorType(lhs.type.shape, i1) if isinstance(lhs.type, VectorType) else i1
        super().__init__(operands=[lhs, rhs], result_types=[result],
                         attributes={"predicate": StringAttr(predicate)})

    @property
    def predicate(self) -> str:
        return self.attributes["predicate"].value


@register_op
class SelectOp(Operation):
    OP_NAME = "arith.select"
    TRAITS = frozenset({PURE})

    def __init__(self, condition: Value, true_value: Value, false_value: Value):
        super().__init__(operands=[condition, true_value, false_value],
                         result_types=[true_value.type])


# -- conversions -------------------------------------------------------------------

class _CastOp(Operation):
    TRAITS = frozenset({PURE})

    def __init__(self, value: Value, result_type: Type):
        super().__init__(operands=[value], result_types=[result_type])


@register_op
class IndexCastOp(_CastOp):
    OP_NAME = "arith.index_cast"


@register_op
class SIToFPOp(_CastOp):
    OP_NAME = "arith.sitofp"


@register_op
class FPToSIOp(_CastOp):
    OP_NAME = "arith.fptosi"


@register_op
class ExtFOp(_CastOp):
    OP_NAME = "arith.extf"


@register_op
class TruncFOp(_CastOp):
    OP_NAME = "arith.truncf"


@register_op
class ExtSIOp(_CastOp):
    OP_NAME = "arith.extsi"


@register_op
class ExtUIOp(_CastOp):
    OP_NAME = "arith.extui"


@register_op
class TruncIOp(_CastOp):
    OP_NAME = "arith.trunci"


@register_op
class BitcastOp(_CastOp):
    OP_NAME = "arith.bitcast"


def is_int_like(t: Type) -> bool:
    return isinstance(_element_type(t), (IntegerType, IndexType))


def is_float_like(t: Type) -> bool:
    return isinstance(_element_type(t), FloatType)


def make_arith_binop(kind: str, lhs: Value, rhs: Value) -> Operation:
    """Create the right arith op for a Fortran binary operator.

    ``kind`` is one of ``+ - * / mod min max and or``; the integer or float
    form is selected from the operand type (vectors use their element type).
    """
    float_ops = {"+": AddFOp, "-": SubFOp, "*": MulFOp, "/": DivFOp,
                 "mod": RemFOp, "min": MinimumFOp, "max": MaximumFOp}
    int_ops = {"+": AddIOp, "-": SubIOp, "*": MulIOp, "/": DivSIOp,
               "mod": RemSIOp, "min": MinSIOp, "max": MaxSIOp,
               "and": AndIOp, "or": OrIOp, "xor": XOrIOp}
    table = float_ops if is_float_like(lhs.type) else int_ops
    if kind not in table:
        raise ValueError(f"no arith op for operator '{kind}' on {lhs.type.mlir()}")
    return table[kind](lhs, rhs)


__all__ = [
    "ConstantOp", "AddIOp", "SubIOp", "MulIOp", "DivSIOp", "FloorDivSIOp",
    "CeilDivSIOp", "RemSIOp", "AndIOp", "OrIOp", "XOrIOp", "ShLIOp", "ShRSIOp",
    "MaxSIOp", "MinSIOp", "AddFOp", "SubFOp", "MulFOp", "DivFOp", "RemFOp",
    "MaximumFOp", "MinimumFOp", "NegFOp", "CmpIOp", "CmpFOp", "SelectOp",
    "IndexCastOp", "SIToFPOp", "FPToSIOp", "ExtFOp", "TruncFOp", "ExtSIOp",
    "ExtUIOp", "TruncIOp", "BitcastOp", "CMPI_PREDICATES", "CMPF_PREDICATES",
    "make_arith_binop", "is_int_like", "is_float_like",
]
