"""IR dialects: standard MLIR dialects plus Flang's FIR/HLFIR dialects.

Importing this package registers every operation class with the global
operation registry, so generic IR utilities (cloning, interpretation,
printing) can resolve operations by name.
"""

from . import (acc, affine, arith, builtin, cf, fir, func, gpu, hlfir, linalg,
               llvm, math, memref, omp, scf, tmpbr, vector)

#: Names of the standard MLIR dialects (everything that is *not* Flang-specific).
STANDARD_DIALECTS = frozenset({
    "builtin", "arith", "func", "scf", "cf", "memref", "affine", "linalg",
    "vector", "math", "llvm", "omp", "acc", "gpu",
})

#: Names of the Flang-specific dialects the paper's transformation removes.
FLANG_DIALECTS = frozenset({"fir", "hlfir"})


def dialects_used(module) -> set:
    """The set of dialect names appearing in a module."""
    return {op.dialect for op in module.walk()}


def uses_only_standard_dialects(module) -> bool:
    """True when no Flang-specific (or temporary) operations remain."""
    used = dialects_used(module)
    return not (used & FLANG_DIALECTS) and "tmpbr" not in used


__all__ = [
    "acc", "affine", "arith", "builtin", "cf", "fir", "func", "gpu", "hlfir",
    "linalg", "llvm", "math", "memref", "omp", "scf", "tmpbr", "vector",
    "STANDARD_DIALECTS", "FLANG_DIALECTS", "dialects_used",
    "uses_only_standard_dialects",
]
