"""The ``scf`` dialect: structured control flow (for, while, if, parallel)."""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import StringAttr
from ..ir.core import Block, Operation, Region, Value, register_op
from ..ir.traits import (IS_TERMINATOR, LOOP_LIKE, STRUCTURED_CONTROL_FLOW)
from ..ir.types import Type, index


@register_op
class YieldOp(Operation):
    """Terminates scf regions, forwarding iteration/result values."""

    OP_NAME = "scf.yield"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, values: Sequence[Value] = ()):
        super().__init__(operands=list(values))


@register_op
class ConditionOp(Operation):
    """Terminator of the 'before' region of scf.while."""

    OP_NAME = "scf.condition"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, condition: Value, args: Sequence[Value] = ()):
        super().__init__(operands=[condition, *args])

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def forwarded(self):
        return self.operands[1:]


@register_op
class ForOp(Operation):
    """``scf.for %iv = %lb to %ub step %step iter_args(...)``.

    The body block receives the induction variable followed by the loop-carried
    values; iteration is always upward and ``step`` must be positive (this is
    the restriction Section V-A of the paper works around for Fortran
    down-counting do loops).
    """

    OP_NAME = "scf.for"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW, LOOP_LIKE})

    def __init__(self, lower: Value, upper: Value, step: Value,
                 iter_args: Sequence[Value] = (),
                 body: Optional[Block] = None):
        result_types = [v.type for v in iter_args]
        if body is None:
            body = Block(arg_types=[index] + [v.type for v in iter_args])
        super().__init__(operands=[lower, upper, step, *iter_args],
                         result_types=result_types,
                         regions=[Region([body])])

    @property
    def lower_bound(self) -> Value:
        return self.operands[0]

    @property
    def upper_bound(self) -> Value:
        return self.operands[1]

    @property
    def step(self) -> Value:
        return self.operands[2]

    @property
    def iter_args(self):
        return self.operands[3:]

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def induction_variable(self) -> Value:
        return self.body.args[0]

    @property
    def region_iter_args(self):
        return self.body.args[1:]


@register_op
class IfOp(Operation):
    """``scf.if`` with a then region and an (optionally empty) else region."""

    OP_NAME = "scf.if"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW})

    def __init__(self, condition: Value, result_types: Sequence[Type] = (),
                 then_block: Optional[Block] = None,
                 else_block: Optional[Block] = None,
                 with_else: bool = True):
        then_region = Region([then_block or Block()])
        regions = [then_region]
        if with_else or else_block is not None:
            regions.append(Region([else_block or Block()]))
        else:
            regions.append(Region())
        super().__init__(operands=[condition], result_types=list(result_types),
                         regions=regions)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def then_block(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def else_block(self) -> Optional[Block]:
        region = self.regions[1]
        return region.blocks[0] if region.blocks else None

    def has_else(self) -> bool:
        return bool(self.regions[1].blocks)


@register_op
class WhileOp(Operation):
    """``scf.while``: a 'before' region computing the condition and an 'after'
    region holding the loop body."""

    OP_NAME = "scf.while"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW, LOOP_LIKE})

    def __init__(self, init_values: Sequence[Value], result_types: Sequence[Type],
                 before: Optional[Block] = None, after: Optional[Block] = None):
        before = before or Block(arg_types=[v.type for v in init_values])
        after = after or Block(arg_types=list(result_types))
        super().__init__(operands=list(init_values), result_types=list(result_types),
                         regions=[Region([before]), Region([after])])

    @property
    def before_block(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def after_block(self) -> Block:
        return self.regions[1].blocks[0]


@register_op
class ParallelOp(Operation):
    """``scf.parallel``: a multi-dimensional parallel loop nest.

    Operand layout: lower bounds, upper bounds, steps and then initial values
    of reductions.  The body block receives one induction variable per
    dimension.
    """

    OP_NAME = "scf.parallel"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW, LOOP_LIKE})

    def __init__(self, lower: Sequence[Value], upper: Sequence[Value],
                 steps: Sequence[Value], init_values: Sequence[Value] = (),
                 body: Optional[Block] = None):
        from ..ir.attributes import IntegerAttr
        rank = len(lower)
        if len(upper) != rank or len(steps) != rank:
            raise ValueError("scf.parallel bound/step rank mismatch")
        result_types = [v.type for v in init_values]
        if body is None:
            body = Block(arg_types=[index] * rank)
        super().__init__(
            operands=[*lower, *upper, *steps, *init_values],
            result_types=result_types,
            regions=[Region([body])],
            attributes={"rank": IntegerAttr(rank)})

    @property
    def rank(self) -> int:
        return self.attributes["rank"].value

    @property
    def lower_bounds(self):
        return self.operands[0:self.rank]

    @property
    def upper_bounds(self):
        return self.operands[self.rank:2 * self.rank]

    @property
    def steps(self):
        return self.operands[2 * self.rank:3 * self.rank]

    @property
    def init_values(self):
        return self.operands[3 * self.rank:]

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def induction_variables(self):
        return self.body.args[:self.rank]


@register_op
class ReduceOp(Operation):
    """``scf.reduce`` inside an scf.parallel: combines a value into a reduction."""

    OP_NAME = "scf.reduce"

    def __init__(self, operand: Value, body: Optional[Block] = None):
        if body is None:
            body = Block(arg_types=[operand.type, operand.type])
        super().__init__(operands=[operand], regions=[Region([body])])

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]


@register_op
class ReduceReturnOp(Operation):
    OP_NAME = "scf.reduce.return"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, value: Value):
        super().__init__(operands=[value])


@register_op
class ExecuteRegionOp(Operation):
    """``scf.execute_region``: an inline region with arbitrary control flow."""

    OP_NAME = "scf.execute_region"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW})

    def __init__(self, result_types: Sequence[Type] = (),
                 region: Optional[Region] = None):
        super().__init__(result_types=list(result_types),
                         regions=[region or Region([Block()])])


def ensure_terminator(block: Block) -> None:
    """Append an empty ``scf.yield`` when the block lacks a terminator."""
    if block.terminator is None:
        block.add_op(YieldOp([]))


__all__ = [
    "YieldOp", "ConditionOp", "ForOp", "IfOp", "WhileOp", "ParallelOp",
    "ReduceOp", "ReduceReturnOp", "ExecuteRegionOp", "ensure_terminator",
]
