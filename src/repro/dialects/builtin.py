"""Builtin dialect: module container and unrealized conversion casts."""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import StringAttr
from ..ir.core import Block, Operation, Region, Value, register_op
from ..ir.traits import SYMBOL_TABLE
from ..ir.types import Type


@register_op
class ModuleOp(Operation):
    """Top-level container for a translation unit (``builtin.module``)."""

    OP_NAME = "builtin.module"
    TRAITS = frozenset({SYMBOL_TABLE})

    def __init__(self, ops: Sequence[Operation] = (), name: Optional[str] = None):
        block = Block()
        for op in ops:
            block.add_op(op)
        attrs = {}
        if name:
            attrs["sym_name"] = StringAttr(name)
        super().__init__(regions=[Region([block])], attributes=attrs)

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    def add(self, op: Operation) -> Operation:
        return self.body.add_op(op)

    def lookup_symbol(self, name: str) -> Optional[Operation]:
        """Find an operation in this module defining symbol ``name``."""
        for op in self.body.ops:
            sym = op.get_attr("sym_name")
            if sym is not None and getattr(sym, "value", None) == name:
                return op
        return None

    def functions(self):
        return [op for op in self.body.ops if op.name == "func.func"]


@register_op
class UnrealizedConversionCastOp(Operation):
    """Marker cast between types during progressive lowering."""

    OP_NAME = "builtin.unrealized_conversion_cast"

    def __init__(self, operands: Sequence[Value], result_types: Sequence[Type]):
        super().__init__(operands=operands, result_types=result_types)


__all__ = ["ModuleOp", "UnrealizedConversionCastOp"]
