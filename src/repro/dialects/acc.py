"""The ``acc`` dialect: OpenACC kernels and data-movement clauses.

The paper notes that MLIR has *no* lowering out of the acc dialect; Section
VI-C develops one (acc.kernels -> scf.parallel, acc.create ->
gpu.host_register, acc.delete / acc.copyout -> gpu.host_unregister) which is
implemented in :mod:`repro.core.acc_to_gpu`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import StringAttr
from ..ir.core import Block, Operation, Region, Value, register_op
from ..ir.traits import IS_TERMINATOR, STRUCTURED_CONTROL_FLOW


@register_op
class TerminatorOp(Operation):
    OP_NAME = "acc.terminator"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self):
        super().__init__()


@register_op
class KernelsOp(Operation):
    """``acc.kernels`` — offloadable region of loops."""

    OP_NAME = "acc.kernels"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW})

    def __init__(self, data_operands: Sequence[Value] = (),
                 body: Optional[Block] = None):
        super().__init__(operands=list(data_operands),
                         regions=[Region([body or Block()])])

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]


@register_op
class LoopOp(Operation):
    """``acc.loop`` — marks a loop nest inside a kernels/parallel region."""

    OP_NAME = "acc.loop"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW})

    def __init__(self, body: Optional[Block] = None):
        super().__init__(regions=[Region([body or Block()])])

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]


@register_op
class DataOp(Operation):
    """``acc.data`` — structured data region."""

    OP_NAME = "acc.data"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW})

    def __init__(self, data_operands: Sequence[Value] = (),
                 body: Optional[Block] = None):
        super().__init__(operands=list(data_operands),
                         regions=[Region([body or Block()])])

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]


class _DataClauseOp(Operation):
    """Base of data-movement clause operations (create/copyin/copyout/delete).

    The operand is the host memref; the result (when present) is the device
    view of the same data.
    """

    def __init__(self, host: Value, with_result: bool = True,
                 name: Optional[str] = None):
        result_types = [host.type] if with_result else []
        attrs = {"var_name": StringAttr(name)} if name else {}
        super().__init__(operands=[host], result_types=result_types,
                         attributes=attrs)

    @property
    def host(self) -> Value:
        return self.operands[0]


@register_op
class CreateOp(_DataClauseOp):
    OP_NAME = "acc.create"


@register_op
class CopyinOp(_DataClauseOp):
    OP_NAME = "acc.copyin"


@register_op
class CopyoutOp(_DataClauseOp):
    OP_NAME = "acc.copyout"

    def __init__(self, host: Value, name: Optional[str] = None):
        super().__init__(host, with_result=False, name=name)


@register_op
class DeleteOp(_DataClauseOp):
    OP_NAME = "acc.delete"

    def __init__(self, host: Value, name: Optional[str] = None):
        super().__init__(host, with_result=False, name=name)


__all__ = ["TerminatorOp", "KernelsOp", "LoopOp", "DataOp", "CreateOp",
           "CopyinOp", "CopyoutOp", "DeleteOp"]
