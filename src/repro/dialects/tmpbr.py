"""The intermediate branch dialect of Section V-A.

When converting Flang's unstructured control flow (``cf.br`` /
``cf.cond_br``) the successor blocks of a branch may not have been created
yet by the main transformation pass.  The paper therefore introduces an
intermediate dialect whose branch operations refer to successor blocks *by
relative index*; a separate rewrite afterwards replaces them with real
``cf.br`` / ``cf.cond_br`` operations pointing at the translated blocks
(:mod:`repro.core.branch_fixup`).
"""

from __future__ import annotations

from typing import Sequence

from ..ir.attributes import IntegerAttr
from ..ir.core import Operation, Value, register_op
from ..ir.traits import IS_TERMINATOR


@register_op
class BrOp(Operation):
    """Unconditional branch to the block with the given index in the target
    region (block order of the *source* Flang IR)."""

    OP_NAME = "tmpbr.br"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, block_index: int, operands: Sequence[Value] = ()):
        super().__init__(operands=list(operands),
                         attributes={"block_index": IntegerAttr(block_index)})

    @property
    def block_index(self) -> int:
        return self.attributes["block_index"].value


@register_op
class CondBrOp(Operation):
    """Conditional branch to blocks identified by their indices."""

    OP_NAME = "tmpbr.cond_br"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, condition: Value, true_index: int, false_index: int,
                 true_operands: Sequence[Value] = (),
                 false_operands: Sequence[Value] = ()):
        super().__init__(
            operands=[condition, *true_operands, *false_operands],
            attributes={
                "true_index": IntegerAttr(true_index),
                "false_index": IntegerAttr(false_index),
                "num_true_operands": IntegerAttr(len(true_operands)),
            })

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_index(self) -> int:
        return self.attributes["true_index"].value

    @property
    def false_index(self) -> int:
        return self.attributes["false_index"].value

    @property
    def true_operands(self):
        n = self.attributes["num_true_operands"].value
        return self.operands[1:1 + n]

    @property
    def false_operands(self):
        n = self.attributes["num_true_operands"].value
        return self.operands[1 + n:]


__all__ = ["BrOp", "CondBrOp"]
