"""The FIR (Fortran IR) dialect of Flang.

Types model Fortran storage concepts (references, heap allocations, boxes /
descriptors, sequences) and operations model Fortran-level memory and control
flow.  This is the dialect the paper's transformation consumes (together with
HLFIR) and that Flang's own code generation lowers directly to LLVM-IR.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..ir.attributes import (Attribute, IntegerAttr, StringAttr, SymbolRefAttr,
                             TypeAttr)
from ..ir.core import Block, Operation, Region, Value, register_op
from ..ir.traits import (ALLOCATES, CALL_LIKE, FREES, IS_TERMINATOR,
                         LOOP_LIKE, PURE, READ_ONLY, STRUCTURED_CONTROL_FLOW,
                         SYMBOL, WRITES_MEMORY)
from ..ir.types import DYNAMIC, IntegerType, Type, i1, index

# ---------------------------------------------------------------------------
# FIR types
# ---------------------------------------------------------------------------


class ReferenceType(Type):
    """``!fir.ref<T>`` — a reference to memory holding a value of type T."""

    __slots__ = ("element_type",)

    def __init__(self, element_type: Type):
        self.element_type = element_type

    def _key(self):
        return (self.element_type,)

    def mlir(self) -> str:
        return f"!fir.ref<{self.element_type.mlir()}>"


class HeapType(Type):
    """``!fir.heap<T>`` — heap-allocated memory (allocatables)."""

    __slots__ = ("element_type",)

    def __init__(self, element_type: Type):
        self.element_type = element_type

    def _key(self):
        return (self.element_type,)

    def mlir(self) -> str:
        return f"!fir.heap<{self.element_type.mlir()}>"


class PointerType(Type):
    """``!fir.ptr<T>`` — Fortran POINTER storage."""

    __slots__ = ("element_type",)

    def __init__(self, element_type: Type):
        self.element_type = element_type

    def _key(self):
        return (self.element_type,)

    def mlir(self) -> str:
        return f"!fir.ptr<{self.element_type.mlir()}>"


class BoxType(Type):
    """``!fir.box<T>`` — a descriptor carrying address, bounds and strides."""

    __slots__ = ("element_type",)

    def __init__(self, element_type: Type):
        self.element_type = element_type

    def _key(self):
        return (self.element_type,)

    def mlir(self) -> str:
        return f"!fir.box<{self.element_type.mlir()}>"


class SequenceType(Type):
    """``!fir.array<e1 x e2 x T>`` — a Fortran array; extents may be dynamic."""

    __slots__ = ("shape", "element_type")

    def __init__(self, shape: Sequence[int], element_type: Type):
        self.shape = tuple(int(d) for d in shape)
        self.element_type = element_type

    def _key(self):
        return (self.shape, self.element_type)

    @property
    def rank(self) -> int:
        return len(self.shape)

    def has_static_shape(self) -> bool:
        return all(d != DYNAMIC for d in self.shape)

    def mlir(self) -> str:
        dims = "x".join("?" if d == DYNAMIC else str(d) for d in self.shape)
        return f"!fir.array<{dims}x{self.element_type.mlir()}>"


class CharType(Type):
    """``!fir.char<kind, len>`` — character storage."""

    __slots__ = ("kind", "length")

    def __init__(self, kind: int = 1, length: int = DYNAMIC):
        self.kind = kind
        self.length = length

    def _key(self):
        return (self.kind, self.length)

    def mlir(self) -> str:
        ln = "?" if self.length == DYNAMIC else str(self.length)
        return f"!fir.char<{self.kind},{ln}>"


class LogicalType(Type):
    """``!fir.logical<kind>`` — Fortran LOGICAL."""

    __slots__ = ("kind",)

    def __init__(self, kind: int = 4):
        self.kind = kind

    def _key(self):
        return (self.kind,)

    def mlir(self) -> str:
        return f"!fir.logical<{self.kind}>"


class ShapeType(Type):
    """``!fir.shape<rank>`` — the result of a fir.shape operation."""

    __slots__ = ("rank",)

    def __init__(self, rank: int):
        self.rank = rank

    def _key(self):
        return (self.rank,)

    def mlir(self) -> str:
        return f"!fir.shape<{self.rank}>"


class ShapeShiftType(Type):
    __slots__ = ("rank",)

    def __init__(self, rank: int):
        self.rank = rank

    def _key(self):
        return (self.rank,)

    def mlir(self) -> str:
        return f"!fir.shapeshift<{self.rank}>"


class RecordType(Type):
    """``!fir.type<name{member: type, ...}>`` — a derived type."""

    __slots__ = ("name", "members")

    def __init__(self, name: str, members: Sequence[Tuple[str, Type]]):
        self.name = name
        self.members = tuple(members)

    def _key(self):
        return (self.name, self.members)

    def member_type(self, member: str) -> Type:
        for m, t in self.members:
            if m == member:
                return t
        raise KeyError(f"derived type {self.name} has no member '{member}'")

    def member_index(self, member: str) -> int:
        for i, (m, _) in enumerate(self.members):
            if m == member:
                return i
        raise KeyError(f"derived type {self.name} has no member '{member}'")

    def mlir(self) -> str:
        inner = ",".join(f"{m}:{t.mlir()}" for m, t in self.members)
        return f"!fir.type<{self.name}{{{inner}}}>"


def dereferenced_type(t: Type) -> Type:
    """The value type behind a ref/heap/ptr/box wrapper (one level)."""
    if isinstance(t, (ReferenceType, HeapType, PointerType, BoxType)):
        return t.element_type
    return t


def element_type_of(t: Type) -> Type:
    """Recursively unwrap references and sequences down to the scalar type."""
    t = dereferenced_type(t)
    if isinstance(t, SequenceType):
        return t.element_type
    return t


# ---------------------------------------------------------------------------
# FIR memory operations
# ---------------------------------------------------------------------------


@register_op
class AllocaOp(Operation):
    """``fir.alloca`` — stack allocation of one value of ``in_type``."""

    OP_NAME = "fir.alloca"
    TRAITS = frozenset({ALLOCATES})

    def __init__(self, in_type: Type, bindc_name: str = "",
                 shape_operands: Sequence[Value] = ()):
        attrs = {"in_type": TypeAttr(in_type)}
        if bindc_name:
            attrs["bindc_name"] = StringAttr(bindc_name)
        super().__init__(operands=list(shape_operands),
                         result_types=[ReferenceType(in_type)], attributes=attrs)

    @property
    def in_type(self) -> Type:
        return self.attributes["in_type"].type


@register_op
class AllocMemOp(Operation):
    """``fir.allocmem`` — heap allocation (used for ALLOCATE)."""

    OP_NAME = "fir.allocmem"
    TRAITS = frozenset({ALLOCATES})

    def __init__(self, in_type: Type, shape_operands: Sequence[Value] = (),
                 bindc_name: str = ""):
        attrs = {"in_type": TypeAttr(in_type)}
        if bindc_name:
            attrs["uniq_name"] = StringAttr(bindc_name)
        super().__init__(operands=list(shape_operands),
                         result_types=[HeapType(in_type)], attributes=attrs)

    @property
    def in_type(self) -> Type:
        return self.attributes["in_type"].type


@register_op
class FreeMemOp(Operation):
    OP_NAME = "fir.freemem"
    TRAITS = frozenset({FREES})

    def __init__(self, heapref: Value):
        super().__init__(operands=[heapref])


@register_op
class LoadOp(Operation):
    OP_NAME = "fir.load"
    TRAITS = frozenset({READ_ONLY})

    def __init__(self, memref: Value, result_type: Optional[Type] = None):
        if result_type is None:
            result_type = dereferenced_type(memref.type)
        super().__init__(operands=[memref], result_types=[result_type])

    @property
    def memref(self) -> Value:
        return self.operands[0]


@register_op
class StoreOp(Operation):
    OP_NAME = "fir.store"
    TRAITS = frozenset({WRITES_MEMORY})

    def __init__(self, value: Value, memref: Value):
        super().__init__(operands=[value, memref])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def memref(self) -> Value:
        return self.operands[1]


@register_op
class ShapeOp(Operation):
    """``fir.shape`` — packages array extents for embox/declare."""

    OP_NAME = "fir.shape"
    TRAITS = frozenset({PURE})

    def __init__(self, extents: Sequence[Value]):
        super().__init__(operands=list(extents),
                         result_types=[ShapeType(len(extents))])

    @property
    def extents(self):
        return self.operands


@register_op
class ShapeShiftOp(Operation):
    """``fir.shape_shift`` — packages (lower bound, extent) pairs."""

    OP_NAME = "fir.shape_shift"
    TRAITS = frozenset({PURE})

    def __init__(self, pairs: Sequence[Value]):
        super().__init__(operands=list(pairs),
                         result_types=[ShapeShiftType(len(pairs) // 2)])


@register_op
class EmboxOp(Operation):
    """``fir.embox`` — create a descriptor (box) from a memory reference."""

    OP_NAME = "fir.embox"
    TRAITS = frozenset({PURE})

    def __init__(self, memref: Value, shape: Optional[Value] = None,
                 result_type: Optional[Type] = None):
        operands = [memref] + ([shape] if shape is not None else [])
        if result_type is None:
            result_type = BoxType(dereferenced_type(memref.type))
        super().__init__(operands=operands, result_types=[result_type])


@register_op
class BoxAddrOp(Operation):
    """``fir.box_addr`` — extract the base address from a box."""

    OP_NAME = "fir.box_addr"
    TRAITS = frozenset({PURE})

    def __init__(self, box: Value, result_type: Optional[Type] = None):
        if result_type is None:
            result_type = ReferenceType(dereferenced_type(box.type))
        super().__init__(operands=[box], result_types=[result_type])


@register_op
class BoxDimsOp(Operation):
    """``fir.box_dims`` — (lower bound, extent, stride) of one box dimension."""

    OP_NAME = "fir.box_dims"
    TRAITS = frozenset({PURE})

    def __init__(self, box: Value, dim: Value):
        super().__init__(operands=[box, dim], result_types=[index, index, index])


@register_op
class ConvertOp(Operation):
    """``fir.convert`` — FIR's universal value/reference conversion."""

    OP_NAME = "fir.convert"
    TRAITS = frozenset({PURE})

    def __init__(self, value: Value, result_type: Type):
        super().__init__(operands=[value], result_types=[result_type])


@register_op
class CoordinateOfOp(Operation):
    """``fir.coordinate_of`` — address of an element/member of an aggregate."""

    OP_NAME = "fir.coordinate_of"
    TRAITS = frozenset({PURE})

    def __init__(self, ref: Value, coordinates: Sequence[Value],
                 result_type: Type, field: Optional[str] = None):
        attrs = {"field": StringAttr(field)} if field else {}
        super().__init__(operands=[ref, *coordinates], result_types=[result_type],
                         attributes=attrs)

    @property
    def ref(self) -> Value:
        return self.operands[0]

    @property
    def coordinates(self):
        return self.operands[1:]


@register_op
class ArrayCoorOp(Operation):
    """``fir.array_coor`` — address of an array element (1-based indices)."""

    OP_NAME = "fir.array_coor"
    TRAITS = frozenset({PURE})

    def __init__(self, memref: Value, shape: Optional[Value],
                 indices: Sequence[Value], result_type: Type):
        operands = [memref] + ([shape] if shape is not None else []) + list(indices)
        attrs = {"has_shape": IntegerAttr(1 if shape is not None else 0)}
        super().__init__(operands=operands, result_types=[result_type],
                         attributes=attrs)

    @property
    def memref(self) -> Value:
        return self.operands[0]

    @property
    def indices(self):
        start = 1 + self.attributes["has_shape"].value
        return self.operands[start:]

    @property
    def shape(self) -> Optional[Value]:
        return self.operands[1] if self.attributes["has_shape"].value else None


@register_op
class FieldIndexOp(Operation):
    """``fir.field_index`` — symbolic index of a derived-type member."""

    OP_NAME = "fir.field_index"
    TRAITS = frozenset({PURE})

    def __init__(self, field_name: str, record_type: RecordType):
        super().__init__(result_types=[index],
                         attributes={"field_id": StringAttr(field_name),
                                     "on_type": TypeAttr(record_type)})

    @property
    def field_name(self) -> str:
        return self.attributes["field_id"].value


# ---------------------------------------------------------------------------
# FIR control flow
# ---------------------------------------------------------------------------


@register_op
class ResultOp(Operation):
    """``fir.result`` — terminator of fir.if / fir.do_loop / fir.iterate_while
    regions (required even when the region yields nothing)."""

    OP_NAME = "fir.result"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, values: Sequence[Value] = ()):
        super().__init__(operands=list(values))


@register_op
class IfOp(Operation):
    """``fir.if`` — Fortran conditional with then/else regions."""

    OP_NAME = "fir.if"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW})

    def __init__(self, condition: Value, result_types: Sequence[Type] = (),
                 then_block: Optional[Block] = None,
                 else_block: Optional[Block] = None):
        super().__init__(operands=[condition], result_types=list(result_types),
                         regions=[Region([then_block or Block()]),
                                  Region([else_block or Block()])])

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def then_block(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def else_block(self) -> Block:
        return self.regions[1].blocks[0]


@register_op
class DoLoopOp(Operation):
    """``fir.do_loop`` — a Fortran counted do loop.

    Unlike ``scf.for`` the step may be negative (down-counting loops); the
    body block receives the induction value followed by iteration arguments.
    The final value of the induction variable is returned as the first result
    so Flang can store it back to the loop variable after the loop.
    """

    OP_NAME = "fir.do_loop"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW, LOOP_LIKE})

    def __init__(self, lower: Value, upper: Value, step: Value,
                 iter_args: Sequence[Value] = (), body: Optional[Block] = None,
                 unordered: bool = False):
        result_types = [index] + [v.type for v in iter_args]
        if body is None:
            body = Block(arg_types=[index] + [v.type for v in iter_args])
        attrs = {}
        if unordered:
            attrs["unordered"] = IntegerAttr(1)
        super().__init__(operands=[lower, upper, step, *iter_args],
                         result_types=result_types,
                         regions=[Region([body])], attributes=attrs)

    @property
    def lower_bound(self) -> Value:
        return self.operands[0]

    @property
    def upper_bound(self) -> Value:
        return self.operands[1]

    @property
    def step(self) -> Value:
        return self.operands[2]

    @property
    def iter_args(self):
        return self.operands[3:]

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def induction_variable(self) -> Value:
        return self.body.args[0]


@register_op
class IterateWhileOp(Operation):
    """``fir.iterate_while`` — counted loop that additionally checks a logical
    flag every iteration (supports EXIT / early termination).

    Results: (final induction value, final ok flag, iter args...).  The body
    receives (induction, ok flag, iter args...) and must fir.result the new
    ok flag followed by the iteration arguments.
    """

    OP_NAME = "fir.iterate_while"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW, LOOP_LIKE})

    def __init__(self, lower: Value, upper: Value, step: Value, initial_ok: Value,
                 iter_args: Sequence[Value] = (), body: Optional[Block] = None):
        result_types = [index, i1] + [v.type for v in iter_args]
        if body is None:
            body = Block(arg_types=[index, i1] + [v.type for v in iter_args])
        super().__init__(operands=[lower, upper, step, initial_ok, *iter_args],
                         result_types=result_types, regions=[Region([body])])

    @property
    def lower_bound(self) -> Value:
        return self.operands[0]

    @property
    def upper_bound(self) -> Value:
        return self.operands[1]

    @property
    def step(self) -> Value:
        return self.operands[2]

    @property
    def initial_ok(self) -> Value:
        return self.operands[3]

    @property
    def iter_args(self):
        return self.operands[4:]

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]


@register_op
class CallOp(Operation):
    OP_NAME = "fir.call"
    TRAITS = frozenset({CALL_LIKE})

    def __init__(self, callee: str, operands: Sequence[Value],
                 result_types: Sequence[Type] = ()):
        super().__init__(operands=list(operands), result_types=list(result_types),
                         attributes={"callee": SymbolRefAttr(callee)})

    @property
    def callee(self) -> str:
        return self.attributes["callee"].root


@register_op
class UnreachableOp(Operation):
    OP_NAME = "fir.unreachable"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self):
        super().__init__()


# ---------------------------------------------------------------------------
# FIR globals & misc
# ---------------------------------------------------------------------------


@register_op
class GlobalOp(Operation):
    """``fir.global`` — a global variable definition."""

    OP_NAME = "fir.global"
    TRAITS = frozenset({SYMBOL})

    def __init__(self, sym_name: str, global_type: Type,
                 initial_value: Optional[Attribute] = None,
                 constant: bool = False, body: Optional[Block] = None):
        attrs = {"sym_name": StringAttr(sym_name), "type": TypeAttr(global_type)}
        if initial_value is not None:
            attrs["initial_value"] = initial_value
        if constant:
            attrs["constant"] = IntegerAttr(1)
        regions = [Region([body])] if body is not None else [Region()]
        super().__init__(attributes=attrs, regions=regions)

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"].value

    @property
    def type(self) -> Type:
        return self.attributes["type"].type


@register_op
class AddressOfOp(Operation):
    OP_NAME = "fir.address_of"
    TRAITS = frozenset({PURE})

    def __init__(self, sym_name: str, result_type: Type):
        super().__init__(result_types=[result_type],
                         attributes={"symbol": SymbolRefAttr(sym_name)})

    @property
    def symbol(self) -> str:
        return self.attributes["symbol"].root


@register_op
class HasValueOp(Operation):
    """Terminator of fir.global initialiser regions."""

    OP_NAME = "fir.has_value"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, value: Value):
        super().__init__(operands=[value])


@register_op
class UndefinedOp(Operation):
    OP_NAME = "fir.undefined"
    TRAITS = frozenset({PURE})

    def __init__(self, result_type: Type):
        super().__init__(result_types=[result_type])


@register_op
class AbsentOp(Operation):
    OP_NAME = "fir.absent"
    TRAITS = frozenset({PURE})

    def __init__(self, result_type: Type):
        super().__init__(result_types=[result_type])


@register_op
class StringLitOp(Operation):
    OP_NAME = "fir.string_lit"
    TRAITS = frozenset({PURE})

    def __init__(self, value: str):
        super().__init__(result_types=[CharType(1, len(value))],
                         attributes={"value": StringAttr(value)})

    @property
    def value(self) -> str:
        return self.attributes["value"].value


@register_op
class ZeroBitsOp(Operation):
    OP_NAME = "fir.zero_bits"
    TRAITS = frozenset({PURE})

    def __init__(self, result_type: Type):
        super().__init__(result_types=[result_type])


__all__ = [
    # types
    "ReferenceType", "HeapType", "PointerType", "BoxType", "SequenceType",
    "CharType", "LogicalType", "ShapeType", "ShapeShiftType", "RecordType",
    "dereferenced_type", "element_type_of",
    # memory ops
    "AllocaOp", "AllocMemOp", "FreeMemOp", "LoadOp", "StoreOp", "ShapeOp",
    "ShapeShiftOp", "EmboxOp", "BoxAddrOp", "BoxDimsOp", "ConvertOp",
    "CoordinateOfOp", "ArrayCoorOp", "FieldIndexOp",
    # control flow
    "ResultOp", "IfOp", "DoLoopOp", "IterateWhileOp", "CallOp", "UnreachableOp",
    # globals & misc
    "GlobalOp", "AddressOfOp", "HasValueOp", "UndefinedOp", "AbsentOp",
    "StringLitOp", "ZeroBitsOp",
]
