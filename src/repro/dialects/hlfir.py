"""The HLFIR (High-Level Fortran IR) dialect of Flang.

HLFIR sits above FIR: it keeps variable declarations (``hlfir.declare``),
whole-array assignments (``hlfir.assign``), designators into arrays and
derived types (``hlfir.designate``) and Fortran transformational intrinsics
(sum, matmul, dot_product, transpose, maxval, minval, product) as first-class
operations, leaving the decision of how to implement them to later lowering.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import (DictAttr, IntegerAttr, StringAttr, TypeAttr)
from ..ir.core import Block, Operation, Region, Value, register_op
from ..ir.traits import IS_TERMINATOR, PURE, READ_ONLY, WRITES_MEMORY
from ..ir.types import Type, i32, index
from .fir import (BoxType, ReferenceType, SequenceType, dereferenced_type)


class ExprType(Type):
    """``!hlfir.expr<shape x T>`` — the value of an array expression."""

    __slots__ = ("shape", "element_type")

    def __init__(self, shape: Sequence[int], element_type: Type):
        self.shape = tuple(shape)
        self.element_type = element_type

    def _key(self):
        return (self.shape, self.element_type)

    def mlir(self) -> str:
        dims = "x".join("?" if d < 0 else str(d) for d in self.shape)
        prefix = f"{dims}x" if self.shape else ""
        return f"!hlfir.expr<{prefix}{self.element_type.mlir()}>"


@register_op
class DeclareOp(Operation):
    """``hlfir.declare`` — associates a memory reference with a Fortran
    variable, carrying its name, attributes (intent, allocatable, ...) and
    optionally its shape.

    Results: (hlfir variable, fir base reference) — both usually of the same
    reference type, mirroring Flang.
    """

    OP_NAME = "hlfir.declare"
    TRAITS = frozenset({PURE})

    def __init__(self, memref: Value, uniq_name: str,
                 shape: Optional[Value] = None,
                 fortran_attrs: Sequence[str] = ()):
        operands = [memref] + ([shape] if shape is not None else [])
        attrs = {
            "uniq_name": StringAttr(uniq_name),
            "has_shape": IntegerAttr(1 if shape is not None else 0),
        }
        if fortran_attrs:
            attrs["fortran_attrs"] = StringAttr(",".join(fortran_attrs))
        super().__init__(operands=operands,
                         result_types=[memref.type, memref.type],
                         attributes=attrs)

    @property
    def memref(self) -> Value:
        return self.operands[0]

    @property
    def shape(self) -> Optional[Value]:
        return self.operands[1] if self.attributes["has_shape"].value else None

    @property
    def uniq_name(self) -> str:
        return self.attributes["uniq_name"].value

    @property
    def fortran_attrs(self) -> Sequence[str]:
        attr = self.get_attr("fortran_attrs")
        return tuple(attr.value.split(",")) if attr is not None and attr.value else ()

    def has_fortran_attr(self, name: str) -> bool:
        return name in self.fortran_attrs


@register_op
class AssignOp(Operation):
    """``hlfir.assign`` — Fortran assignment (scalar or whole array)."""

    OP_NAME = "hlfir.assign"
    TRAITS = frozenset({WRITES_MEMORY})

    def __init__(self, rhs: Value, lhs: Value):
        super().__init__(operands=[rhs, lhs])

    @property
    def rhs(self) -> Value:
        return self.operands[0]

    @property
    def lhs(self) -> Value:
        return self.operands[1]


@register_op
class DesignateOp(Operation):
    """``hlfir.designate`` — a designator: array element, array section or
    derived-type component reference."""

    OP_NAME = "hlfir.designate"
    TRAITS = frozenset({PURE})

    def __init__(self, memref: Value, indices: Sequence[Value] = (),
                 component: Optional[str] = None,
                 result_type: Optional[Type] = None,
                 triplets: Sequence[Value] = ()):
        attrs = {"num_indices": IntegerAttr(len(indices))}
        if component:
            attrs["component"] = StringAttr(component)
        if result_type is None:
            base = dereferenced_type(memref.type)
            if isinstance(base, SequenceType) and indices:
                result_type = ReferenceType(base.element_type)
            else:
                result_type = memref.type
        super().__init__(operands=[memref, *indices, *triplets],
                         result_types=[result_type], attributes=attrs)

    @property
    def memref(self) -> Value:
        return self.operands[0]

    @property
    def indices(self):
        n = self.attributes["num_indices"].value
        return self.operands[1:1 + n]

    @property
    def triplets(self):
        n = self.attributes["num_indices"].value
        return self.operands[1 + n:]

    @property
    def component(self) -> Optional[str]:
        attr = self.get_attr("component")
        return attr.value if attr is not None else None


@register_op
class ElementalOp(Operation):
    """``hlfir.elemental`` — an elemental array expression evaluated per index."""

    OP_NAME = "hlfir.elemental"
    TRAITS = frozenset({PURE})

    def __init__(self, shape: Value, result_type: ExprType,
                 body: Optional[Block] = None):
        rank = len(result_type.shape)
        if body is None:
            body = Block(arg_types=[index] * rank)
        super().__init__(operands=[shape], result_types=[result_type],
                         regions=[Region([body])])

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]


@register_op
class YieldElementOp(Operation):
    OP_NAME = "hlfir.yield_element"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, value: Value):
        super().__init__(operands=[value])


@register_op
class EndAssociateOp(Operation):
    OP_NAME = "hlfir.end_associate"

    def __init__(self, value: Value):
        super().__init__(operands=[value])


@register_op
class DestroyOp(Operation):
    OP_NAME = "hlfir.destroy"

    def __init__(self, value: Value):
        super().__init__(operands=[value])


# ---------------------------------------------------------------------------
# Transformational intrinsics
# ---------------------------------------------------------------------------


class _ReductionIntrinsicOp(Operation):
    """Base of sum/product/maxval/minval: reduce an array to a scalar
    (whole-array reduction; DIM/MASK forms carry extra operands)."""

    TRAITS = frozenset({READ_ONLY})

    def __init__(self, array: Value, result_type: Type,
                 dim: Optional[Value] = None, mask: Optional[Value] = None):
        operands = [array]
        attrs = {"has_dim": IntegerAttr(1 if dim is not None else 0),
                 "has_mask": IntegerAttr(1 if mask is not None else 0)}
        if dim is not None:
            operands.append(dim)
        if mask is not None:
            operands.append(mask)
        super().__init__(operands=operands, result_types=[result_type],
                         attributes=attrs)

    @property
    def array(self) -> Value:
        return self.operands[0]


@register_op
class SumOp(_ReductionIntrinsicOp):
    OP_NAME = "hlfir.sum"


@register_op
class ProductOp(_ReductionIntrinsicOp):
    OP_NAME = "hlfir.product"


@register_op
class MaxvalOp(_ReductionIntrinsicOp):
    OP_NAME = "hlfir.maxval"


@register_op
class MinvalOp(_ReductionIntrinsicOp):
    OP_NAME = "hlfir.minval"


@register_op
class CountOp(_ReductionIntrinsicOp):
    OP_NAME = "hlfir.count"


@register_op
class DotProductOp(Operation):
    OP_NAME = "hlfir.dot_product"
    TRAITS = frozenset({READ_ONLY})

    def __init__(self, lhs: Value, rhs: Value, result_type: Type):
        super().__init__(operands=[lhs, rhs], result_types=[result_type])

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


@register_op
class MatmulOp(Operation):
    OP_NAME = "hlfir.matmul"
    TRAITS = frozenset({READ_ONLY})

    def __init__(self, lhs: Value, rhs: Value, result_type: Type):
        super().__init__(operands=[lhs, rhs], result_types=[result_type])

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


@register_op
class TransposeOp(Operation):
    OP_NAME = "hlfir.transpose"
    TRAITS = frozenset({READ_ONLY})

    def __init__(self, array: Value, result_type: Type):
        super().__init__(operands=[array], result_types=[result_type])

    @property
    def array(self) -> Value:
        return self.operands[0]


#: HLFIR transformational intrinsic op names handled by the linalg lowering.
TRANSFORMATIONAL_INTRINSICS = (
    "hlfir.sum", "hlfir.product", "hlfir.maxval", "hlfir.minval",
    "hlfir.dot_product", "hlfir.matmul", "hlfir.transpose", "hlfir.count",
)


__all__ = [
    "ExprType", "DeclareOp", "AssignOp", "DesignateOp", "ElementalOp",
    "YieldElementOp", "EndAssociateOp", "DestroyOp", "SumOp", "ProductOp",
    "MaxvalOp", "MinvalOp", "CountOp", "DotProductOp", "MatmulOp",
    "TransposeOp", "TRANSFORMATIONAL_INTRINSICS",
]
