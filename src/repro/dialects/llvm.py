"""The ``llvm`` MLIR dialect: the final target of both compilation flows.

Both the baseline Flang flow (direct FIR -> llvm lowering) and the paper's
standard-MLIR flow end at this dialect; ``mlir-translate`` would then emit
LLVM-IR.  The dialect here carries enough structure for the interpreter and
the cost model to execute/analyse the result.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import (Attribute, DenseIntElementsAttr, IntegerAttr,
                             StringAttr, SymbolRefAttr, TypeAttr)
from ..ir.core import Block, Operation, Region, Value, register_op
from ..ir.traits import (ALLOCATES, CALL_LIKE, IS_TERMINATOR, PURE, READ_ONLY,
                         SYMBOL, WRITES_MEMORY)
from ..ir.types import FunctionType, IntegerType, Type


class LLVMPointerType(Type):
    """An opaque LLVM pointer (``!llvm.ptr``)."""

    __slots__ = ("pointee",)

    def __init__(self, pointee: Optional[Type] = None):
        self.pointee = pointee

    def _key(self):
        return (self.pointee,)

    def mlir(self) -> str:
        if self.pointee is None:
            return "!llvm.ptr"
        return f"!llvm.ptr<{self.pointee.mlir()}>"


class LLVMStructType(Type):
    """A literal LLVM struct type (used for memref descriptors)."""

    __slots__ = ("members",)

    def __init__(self, members: Sequence[Type]):
        self.members = tuple(members)

    def _key(self):
        return (self.members,)

    def mlir(self) -> str:
        return "!llvm.struct<(" + ", ".join(m.mlir() for m in self.members) + ")>"


class LLVMArrayType(Type):
    __slots__ = ("size", "element_type")

    def __init__(self, size: int, element_type: Type):
        self.size = size
        self.element_type = element_type

    def _key(self):
        return (self.size, self.element_type)

    def mlir(self) -> str:
        return f"!llvm.array<{self.size} x {self.element_type.mlir()}>"


ptr = LLVMPointerType()


@register_op
class LLVMFuncOp(Operation):
    """``llvm.func`` — used for runtime-library declarations."""

    OP_NAME = "llvm.func"
    TRAITS = frozenset({SYMBOL})

    def __init__(self, name: str, function_type: FunctionType,
                 create_entry_block: bool = False):
        region = Region()
        if create_entry_block:
            region.add_block(Block(arg_types=function_type.inputs))
        super().__init__(regions=[region], attributes={
            "sym_name": StringAttr(name),
            "function_type": TypeAttr(function_type),
        })

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"].value


@register_op
class GlobalOp(Operation):
    """``llvm.mlir.global`` — global scalars (Section V-B)."""

    OP_NAME = "llvm.mlir.global"
    TRAITS = frozenset({SYMBOL})

    def __init__(self, sym_name: str, global_type: Type,
                 value: Optional[Attribute] = None, constant: bool = False,
                 body: Optional[Block] = None):
        attrs = {
            "sym_name": StringAttr(sym_name),
            "global_type": TypeAttr(global_type),
        }
        if value is not None:
            attrs["value"] = value
        if constant:
            attrs["constant"] = IntegerAttr(1)
        regions = [Region([body])] if body is not None else [Region()]
        super().__init__(attributes=attrs, regions=regions)

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"].value

    @property
    def global_type(self) -> Type:
        return self.attributes["global_type"].type


@register_op
class AddressOfOp(Operation):
    """``llvm.mlir.addressof`` — pointer to a global symbol."""

    OP_NAME = "llvm.mlir.addressof"
    TRAITS = frozenset({PURE})

    def __init__(self, sym_name: str, result_type: Optional[Type] = None):
        super().__init__(result_types=[result_type or ptr],
                         attributes={"global_name": SymbolRefAttr(sym_name)})

    @property
    def global_name(self) -> str:
        return self.attributes["global_name"].root


@register_op
class ConstantOp(Operation):
    OP_NAME = "llvm.mlir.constant"
    TRAITS = frozenset({PURE})

    def __init__(self, value: Attribute, result_type: Type):
        super().__init__(result_types=[result_type], attributes={"value": value})


@register_op
class UndefOp(Operation):
    OP_NAME = "llvm.mlir.undef"
    TRAITS = frozenset({PURE})

    def __init__(self, result_type: Type):
        super().__init__(result_types=[result_type])


@register_op
class AllocaOp(Operation):
    """``llvm.alloca`` — stack allocation of `size` elements of `elem_type`."""

    OP_NAME = "llvm.alloca"
    TRAITS = frozenset({ALLOCATES})

    def __init__(self, size: Value, elem_type: Type):
        super().__init__(operands=[size], result_types=[ptr],
                         attributes={"elem_type": TypeAttr(elem_type)})

    @property
    def elem_type(self) -> Type:
        return self.attributes["elem_type"].type


@register_op
class LoadOp(Operation):
    OP_NAME = "llvm.load"
    TRAITS = frozenset({READ_ONLY})

    def __init__(self, address: Value, result_type: Type):
        super().__init__(operands=[address], result_types=[result_type])


@register_op
class StoreOp(Operation):
    OP_NAME = "llvm.store"
    TRAITS = frozenset({WRITES_MEMORY})

    def __init__(self, value: Value, address: Value):
        super().__init__(operands=[value, address])


@register_op
class GEPOp(Operation):
    """``llvm.getelementptr`` — address arithmetic."""

    OP_NAME = "llvm.getelementptr"
    TRAITS = frozenset({PURE})

    def __init__(self, base: Value, indices: Sequence[Value], elem_type: Type):
        super().__init__(operands=[base, *indices], result_types=[ptr],
                         attributes={"elem_type": TypeAttr(elem_type)})

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def indices(self):
        return self.operands[1:]


@register_op
class CallOp(Operation):
    OP_NAME = "llvm.call"
    TRAITS = frozenset({CALL_LIKE})

    def __init__(self, callee: str, operands: Sequence[Value],
                 result_types: Sequence[Type] = ()):
        super().__init__(operands=list(operands), result_types=list(result_types),
                         attributes={"callee": SymbolRefAttr(callee)})

    @property
    def callee(self) -> str:
        return self.attributes["callee"].root


@register_op
class ReturnOp(Operation):
    OP_NAME = "llvm.return"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, values: Sequence[Value] = ()):
        super().__init__(operands=list(values))


@register_op
class BrOp(Operation):
    OP_NAME = "llvm.br"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, dest: Block, operands: Sequence[Value] = ()):
        super().__init__(operands=list(operands), successors=[dest])


@register_op
class CondBrOp(Operation):
    OP_NAME = "llvm.cond_br"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, condition: Value, true_dest: Block, false_dest: Block,
                 true_operands: Sequence[Value] = (),
                 false_operands: Sequence[Value] = ()):
        super().__init__(
            operands=[condition, *true_operands, *false_operands],
            successors=[true_dest, false_dest],
            attributes={"num_true_operands": IntegerAttr(len(true_operands))})

    @property
    def condition(self) -> Value:
        return self.operands[0]


class _LLVMBinOp(Operation):
    TRAITS = frozenset({PURE})

    def __init__(self, lhs: Value, rhs: Value):
        super().__init__(operands=[lhs, rhs], result_types=[lhs.type])


@register_op
class AddOp(_LLVMBinOp):
    OP_NAME = "llvm.add"


@register_op
class SubOp(_LLVMBinOp):
    OP_NAME = "llvm.sub"


@register_op
class MulOp(_LLVMBinOp):
    OP_NAME = "llvm.mul"


@register_op
class SDivOp(_LLVMBinOp):
    OP_NAME = "llvm.sdiv"


@register_op
class SRemOp(_LLVMBinOp):
    OP_NAME = "llvm.srem"


@register_op
class AndOp(_LLVMBinOp):
    OP_NAME = "llvm.and"


@register_op
class OrOp(_LLVMBinOp):
    OP_NAME = "llvm.or"


@register_op
class XOrOp(_LLVMBinOp):
    OP_NAME = "llvm.xor"


@register_op
class FAddOp(_LLVMBinOp):
    OP_NAME = "llvm.fadd"


@register_op
class FSubOp(_LLVMBinOp):
    OP_NAME = "llvm.fsub"


@register_op
class FMulOp(_LLVMBinOp):
    OP_NAME = "llvm.fmul"


@register_op
class FDivOp(_LLVMBinOp):
    OP_NAME = "llvm.fdiv"


@register_op
class FRemOp(_LLVMBinOp):
    OP_NAME = "llvm.frem"


@register_op
class FNegOp(Operation):
    OP_NAME = "llvm.fneg"
    TRAITS = frozenset({PURE})

    def __init__(self, value: Value):
        super().__init__(operands=[value], result_types=[value.type])


@register_op
class FMulAddOp(Operation):
    """``llvm.intr.fmuladd`` — scalar FMA intrinsic."""

    OP_NAME = "llvm.intr.fmuladd"
    TRAITS = frozenset({PURE})

    def __init__(self, a: Value, b: Value, c: Value):
        super().__init__(operands=[a, b, c], result_types=[a.type])


@register_op
class ICmpOp(Operation):
    OP_NAME = "llvm.icmp"
    TRAITS = frozenset({PURE})

    def __init__(self, predicate: str, lhs: Value, rhs: Value):
        super().__init__(operands=[lhs, rhs], result_types=[IntegerType(1)],
                         attributes={"predicate": StringAttr(predicate)})

    @property
    def predicate(self) -> str:
        return self.attributes["predicate"].value


@register_op
class FCmpOp(Operation):
    OP_NAME = "llvm.fcmp"
    TRAITS = frozenset({PURE})

    def __init__(self, predicate: str, lhs: Value, rhs: Value):
        super().__init__(operands=[lhs, rhs], result_types=[IntegerType(1)],
                         attributes={"predicate": StringAttr(predicate)})

    @property
    def predicate(self) -> str:
        return self.attributes["predicate"].value


class _LLVMCastOp(Operation):
    TRAITS = frozenset({PURE})

    def __init__(self, value: Value, result_type: Type):
        super().__init__(operands=[value], result_types=[result_type])


@register_op
class SExtOp(_LLVMCastOp):
    OP_NAME = "llvm.sext"


@register_op
class ZExtOp(_LLVMCastOp):
    OP_NAME = "llvm.zext"


@register_op
class TruncOp(_LLVMCastOp):
    OP_NAME = "llvm.trunc"


@register_op
class SIToFPOp(_LLVMCastOp):
    OP_NAME = "llvm.sitofp"


@register_op
class FPToSIOp(_LLVMCastOp):
    OP_NAME = "llvm.fptosi"


@register_op
class FPExtOp(_LLVMCastOp):
    OP_NAME = "llvm.fpext"


@register_op
class FPTruncOp(_LLVMCastOp):
    OP_NAME = "llvm.fptrunc"


@register_op
class BitcastOp(_LLVMCastOp):
    OP_NAME = "llvm.bitcast"


@register_op
class PtrToIntOp(_LLVMCastOp):
    OP_NAME = "llvm.ptrtoint"


@register_op
class IntToPtrOp(_LLVMCastOp):
    OP_NAME = "llvm.inttoptr"


@register_op
class SelectOp(Operation):
    OP_NAME = "llvm.select"
    TRAITS = frozenset({PURE})

    def __init__(self, condition: Value, true_value: Value, false_value: Value):
        super().__init__(operands=[condition, true_value, false_value],
                         result_types=[true_value.type])


@register_op
class ExtractValueOp(Operation):
    OP_NAME = "llvm.extractvalue"
    TRAITS = frozenset({PURE})

    def __init__(self, container: Value, position: Sequence[int], result_type: Type):
        super().__init__(operands=[container], result_types=[result_type],
                         attributes={"position": DenseIntElementsAttr(position)})


@register_op
class InsertValueOp(Operation):
    OP_NAME = "llvm.insertvalue"
    TRAITS = frozenset({PURE})

    def __init__(self, container: Value, value: Value, position: Sequence[int]):
        super().__init__(operands=[container, value], result_types=[container.type],
                         attributes={"position": DenseIntElementsAttr(position)})


@register_op
class StackSaveOp(Operation):
    """``llvm.intr.stacksave`` — noted by the paper around OpenMP loops."""

    OP_NAME = "llvm.intr.stacksave"

    def __init__(self):
        super().__init__(result_types=[ptr])


@register_op
class StackRestoreOp(Operation):
    OP_NAME = "llvm.intr.stackrestore"

    def __init__(self, saved: Value):
        super().__init__(operands=[saved])


@register_op
class UnreachableOp(Operation):
    OP_NAME = "llvm.unreachable"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self):
        super().__init__()


__all__ = [
    "LLVMPointerType", "LLVMStructType", "LLVMArrayType", "ptr",
    "LLVMFuncOp", "GlobalOp", "AddressOfOp", "ConstantOp", "UndefOp",
    "AllocaOp", "LoadOp", "StoreOp", "GEPOp", "CallOp", "ReturnOp", "BrOp",
    "CondBrOp", "AddOp", "SubOp", "MulOp", "SDivOp", "SRemOp", "AndOp", "OrOp",
    "XOrOp", "FAddOp", "FSubOp", "FMulOp", "FDivOp", "FRemOp", "FNegOp",
    "FMulAddOp", "ICmpOp", "FCmpOp", "SExtOp", "ZExtOp", "TruncOp", "SIToFPOp",
    "FPToSIOp", "FPExtOp", "FPTruncOp", "BitcastOp", "PtrToIntOp", "IntToPtrOp",
    "SelectOp", "ExtractValueOp", "InsertValueOp", "StackSaveOp",
    "StackRestoreOp", "UnreachableOp",
]
