"""The ``gpu`` dialect: kernel launch, host registration and device memory."""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import IntegerAttr, StringAttr, SymbolRefAttr
from ..ir.core import Block, Operation, Region, Value, register_op
from ..ir.traits import (IS_TERMINATOR, LOOP_LIKE, STRUCTURED_CONTROL_FLOW,
                         SYMBOL, SYMBOL_TABLE)
from ..ir.types import MemRefType, Type, index


@register_op
class TerminatorOp(Operation):
    OP_NAME = "gpu.terminator"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self):
        super().__init__()


@register_op
class ReturnOp(Operation):
    OP_NAME = "gpu.return"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, values: Sequence[Value] = ()):
        super().__init__(operands=list(values))


@register_op
class HostRegisterOp(Operation):
    """Register host memory for unified/managed access from the device."""

    OP_NAME = "gpu.host_register"

    def __init__(self, memref: Value):
        super().__init__(operands=[memref])


@register_op
class HostUnregisterOp(Operation):
    OP_NAME = "gpu.host_unregister"

    def __init__(self, memref: Value):
        super().__init__(operands=[memref])


@register_op
class GPUModuleOp(Operation):
    """``gpu.module`` — container of device functions."""

    OP_NAME = "gpu.module"
    TRAITS = frozenset({SYMBOL, SYMBOL_TABLE})

    def __init__(self, sym_name: str):
        super().__init__(regions=[Region([Block()])],
                         attributes={"sym_name": StringAttr(sym_name)})

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"].value


@register_op
class GPUFuncOp(Operation):
    """``gpu.func`` — a device kernel function."""

    OP_NAME = "gpu.func"
    TRAITS = frozenset({SYMBOL})

    def __init__(self, sym_name: str, arg_types: Sequence[Type]):
        super().__init__(regions=[Region([Block(arg_types=arg_types)])],
                         attributes={"sym_name": StringAttr(sym_name),
                                     "kernel": IntegerAttr(1)})

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"].value


@register_op
class LaunchOp(Operation):
    """``gpu.launch`` — inline kernel launch over a grid/block configuration.

    Operands: grid sizes (x, y, z) then block sizes (x, y, z).  The body block
    receives the block ids, thread ids, grid dims and block dims (12 index
    arguments) mirroring MLIR's gpu.launch.
    """

    OP_NAME = "gpu.launch"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW, LOOP_LIKE})

    def __init__(self, grid: Sequence[Value], block: Sequence[Value],
                 body: Optional[Block] = None):
        if len(grid) != 3 or len(block) != 3:
            raise ValueError("gpu.launch expects 3 grid and 3 block sizes")
        if body is None:
            body = Block(arg_types=[index] * 12)
        super().__init__(operands=[*grid, *block], regions=[Region([body])])

    @property
    def grid_sizes(self):
        return self.operands[0:3]

    @property
    def block_sizes(self):
        return self.operands[3:6]

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]


@register_op
class LaunchFuncOp(Operation):
    """``gpu.launch_func`` — launch a named kernel."""

    OP_NAME = "gpu.launch_func"

    def __init__(self, kernel: str, grid: Sequence[Value], block: Sequence[Value],
                 kernel_operands: Sequence[Value] = ()):
        super().__init__(operands=[*grid, *block, *kernel_operands],
                         attributes={"kernel": SymbolRefAttr(kernel)})

    @property
    def kernel(self) -> str:
        return self.attributes["kernel"].root


@register_op
class AllocOp(Operation):
    OP_NAME = "gpu.alloc"

    def __init__(self, memref_type: MemRefType, dynamic_sizes: Sequence[Value] = ()):
        super().__init__(operands=list(dynamic_sizes), result_types=[memref_type])


@register_op
class DeallocOp(Operation):
    OP_NAME = "gpu.dealloc"

    def __init__(self, memref: Value):
        super().__init__(operands=[memref])


@register_op
class MemcpyOp(Operation):
    OP_NAME = "gpu.memcpy"

    def __init__(self, dst: Value, src: Value):
        super().__init__(operands=[dst, src])


@register_op
class ThreadIdOp(Operation):
    OP_NAME = "gpu.thread_id"

    def __init__(self, dimension: str = "x"):
        super().__init__(result_types=[index],
                         attributes={"dimension": StringAttr(dimension)})


@register_op
class BlockIdOp(Operation):
    OP_NAME = "gpu.block_id"

    def __init__(self, dimension: str = "x"):
        super().__init__(result_types=[index],
                         attributes={"dimension": StringAttr(dimension)})


@register_op
class BlockDimOp(Operation):
    OP_NAME = "gpu.block_dim"

    def __init__(self, dimension: str = "x"):
        super().__init__(result_types=[index],
                         attributes={"dimension": StringAttr(dimension)})


@register_op
class GridDimOp(Operation):
    OP_NAME = "gpu.grid_dim"

    def __init__(self, dimension: str = "x"):
        super().__init__(result_types=[index],
                         attributes={"dimension": StringAttr(dimension)})


__all__ = [
    "TerminatorOp", "ReturnOp", "HostRegisterOp", "HostUnregisterOp",
    "GPUModuleOp", "GPUFuncOp", "LaunchOp", "LaunchFuncOp", "AllocOp",
    "DeallocOp", "MemcpyOp", "ThreadIdOp", "BlockIdOp", "BlockDimOp",
    "GridDimOp",
]
