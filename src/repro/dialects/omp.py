"""The ``omp`` dialect: OpenMP parallel regions and worksharing loops."""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import IntegerAttr, StringAttr
from ..ir.core import Block, Operation, Region, Value, register_op
from ..ir.traits import IS_TERMINATOR, LOOP_LIKE, STRUCTURED_CONTROL_FLOW
from ..ir.types import index


@register_op
class TerminatorOp(Operation):
    OP_NAME = "omp.terminator"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self):
        super().__init__()


@register_op
class YieldOp(Operation):
    OP_NAME = "omp.yield"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, values: Sequence[Value] = ()):
        super().__init__(operands=list(values))


@register_op
class ParallelOp(Operation):
    """``omp.parallel`` — a team of threads executes the region."""

    OP_NAME = "omp.parallel"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW})

    def __init__(self, num_threads: Optional[Value] = None,
                 body: Optional[Block] = None):
        operands = [num_threads] if num_threads is not None else []
        super().__init__(operands=operands,
                         regions=[Region([body or Block()])])

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]


@register_op
class WsLoopOp(Operation):
    """``omp.wsloop`` — worksharing loop wrapper around a loop nest region.

    The region's single block takes one induction variable per collapsed
    dimension; operands are lower bounds, upper bounds and steps.
    """

    OP_NAME = "omp.wsloop"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW, LOOP_LIKE})

    def __init__(self, lower: Sequence[Value], upper: Sequence[Value],
                 steps: Sequence[Value], body: Optional[Block] = None,
                 schedule: str = "static"):
        rank = len(lower)
        if body is None:
            body = Block(arg_types=[index] * rank)
        super().__init__(operands=[*lower, *upper, *steps],
                         regions=[Region([body])],
                         attributes={"rank": IntegerAttr(rank),
                                     "schedule": StringAttr(schedule)})

    @property
    def rank(self) -> int:
        return self.attributes["rank"].value

    @property
    def lower_bounds(self):
        return self.operands[:self.rank]

    @property
    def upper_bounds(self):
        return self.operands[self.rank:2 * self.rank]

    @property
    def steps(self):
        return self.operands[2 * self.rank:]

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def induction_variables(self):
        return self.body.args[:self.rank]


@register_op
class BarrierOp(Operation):
    OP_NAME = "omp.barrier"

    def __init__(self):
        super().__init__()


@register_op
class MasterOp(Operation):
    OP_NAME = "omp.master"
    TRAITS = frozenset({STRUCTURED_CONTROL_FLOW})

    def __init__(self, body: Optional[Block] = None):
        super().__init__(regions=[Region([body or Block()])])


__all__ = ["TerminatorOp", "YieldOp", "ParallelOp", "WsLoopOp", "BarrierOp",
           "MasterOp"]
