"""The ``memref`` dialect: memory allocation, loads/stores, views, globals."""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import (Attribute, BoolAttr, DenseFloatElementsAttr,
                             DenseIntElementsAttr, IntegerAttr, StringAttr,
                             TypeAttr, UnitAttr)
from ..ir.core import Block, Operation, Region, Value, register_op
from ..ir.traits import (ALLOCATES, AUTOMATIC_ALLOCATION_SCOPE, FREES,
                         IS_TERMINATOR, PURE, READ_ONLY, SYMBOL,
                         WRITES_MEMORY)
from ..ir.types import DYNAMIC, MemRefType, Type, index


class _AllocLikeOp(Operation):
    """Common base of memref.alloc / memref.alloca.

    Dynamic sizes (one SSA operand per ``?`` dimension, in order) are the
    operands; the result type is the memref being created.
    """

    def __init__(self, memref_type: MemRefType, dynamic_sizes: Sequence[Value] = (),
                 alignment: Optional[int] = None):
        if memref_type.num_dynamic_dims() != len(dynamic_sizes):
            raise ValueError(
                f"{self.OP_NAME}: expected {memref_type.num_dynamic_dims()} dynamic "
                f"sizes, got {len(dynamic_sizes)}")
        attrs = {}
        if alignment is not None:
            attrs["alignment"] = IntegerAttr(alignment)
        super().__init__(operands=list(dynamic_sizes), result_types=[memref_type],
                         attributes=attrs)

    @property
    def memref_type(self) -> MemRefType:
        return self.results[0].type


@register_op
class AllocOp(_AllocLikeOp):
    """Heap allocation."""

    OP_NAME = "memref.alloc"
    TRAITS = frozenset({ALLOCATES})


@register_op
class AllocaOp(_AllocLikeOp):
    """Stack allocation (released at the closest AutomaticAllocationScope)."""

    OP_NAME = "memref.alloca"
    TRAITS = frozenset({ALLOCATES})


@register_op
class DeallocOp(Operation):
    OP_NAME = "memref.dealloc"
    TRAITS = frozenset({FREES})

    def __init__(self, memref: Value):
        super().__init__(operands=[memref])


@register_op
class LoadOp(Operation):
    OP_NAME = "memref.load"
    TRAITS = frozenset({READ_ONLY})

    def __init__(self, memref: Value, indices: Sequence[Value] = ()):
        mtype = memref.type
        if not isinstance(mtype, MemRefType):
            raise TypeError(f"memref.load expects a memref operand, got {mtype.mlir()}")
        if len(indices) != mtype.rank:
            raise ValueError(
                f"memref.load: rank {mtype.rank} memref accessed with "
                f"{len(indices)} indices")
        super().__init__(operands=[memref, *indices],
                         result_types=[mtype.element_type])

    @property
    def memref(self) -> Value:
        return self.operands[0]

    @property
    def indices(self):
        return self.operands[1:]


@register_op
class StoreOp(Operation):
    OP_NAME = "memref.store"
    TRAITS = frozenset({WRITES_MEMORY})

    def __init__(self, value: Value, memref: Value, indices: Sequence[Value] = ()):
        mtype = memref.type
        if not isinstance(mtype, MemRefType):
            raise TypeError(f"memref.store expects a memref operand, got {mtype.mlir()}")
        if len(indices) != mtype.rank:
            raise ValueError(
                f"memref.store: rank {mtype.rank} memref accessed with "
                f"{len(indices)} indices")
        super().__init__(operands=[value, memref, *indices])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def memref(self) -> Value:
        return self.operands[1]

    @property
    def indices(self):
        return self.operands[2:]


@register_op
class DimOp(Operation):
    """Size of one dimension of a memref (dimension given as an index operand)."""

    OP_NAME = "memref.dim"
    TRAITS = frozenset({PURE})

    def __init__(self, memref: Value, dimension: Value):
        super().__init__(operands=[memref, dimension], result_types=[index])


@register_op
class CastOp(Operation):
    """Memref cast between compatible (static/dynamic) shapes."""

    OP_NAME = "memref.cast"
    TRAITS = frozenset({PURE})

    def __init__(self, source: Value, result_type: MemRefType):
        super().__init__(operands=[source], result_types=[result_type])


@register_op
class CopyOp(Operation):
    OP_NAME = "memref.copy"
    TRAITS = frozenset({WRITES_MEMORY})

    def __init__(self, source: Value, target: Value):
        super().__init__(operands=[source, target])


@register_op
class SubViewOp(Operation):
    """A strided view into a memref (used for Fortran array slices).

    Offsets/sizes/strides are SSA index operands, one triple per dimension of
    the source memref.  The result is a memref with the same element type and
    the view's (dynamic) shape; the underlying memory is shared with the
    source, which is exactly why the paper uses subviews to pass array slices
    without copying.
    """

    OP_NAME = "memref.subview"
    TRAITS = frozenset({PURE})

    def __init__(self, source: Value, offsets: Sequence[Value],
                 sizes: Sequence[Value], strides: Sequence[Value],
                 result_type: Optional[MemRefType] = None):
        src_type = source.type
        rank = src_type.rank
        if not (len(offsets) == len(sizes) == len(strides) == rank):
            raise ValueError("memref.subview: offset/size/stride rank mismatch")
        if result_type is None:
            result_type = MemRefType([DYNAMIC] * rank, src_type.element_type)
        super().__init__(operands=[source, *offsets, *sizes, *strides],
                         result_types=[result_type])

    @property
    def source(self) -> Value:
        return self.operands[0]

    def _rank(self) -> int:
        return self.source.type.rank

    @property
    def offsets(self):
        r = self._rank()
        return self.operands[1:1 + r]

    @property
    def sizes(self):
        r = self._rank()
        return self.operands[1 + r:1 + 2 * r]

    @property
    def strides(self):
        r = self._rank()
        return self.operands[1 + 2 * r:1 + 3 * r]


@register_op
class AllocaScopeOp(Operation):
    """Explicit stack-frame scope (``memref.alloca_scope``).

    Section V-B of the paper wraps function bodies in this operation because
    the implicit AutomaticAllocationScope of ``func.func`` did not release
    stack memory in their toolchain.  Its region may hold at most one block.
    """

    OP_NAME = "memref.alloca_scope"
    TRAITS = frozenset({AUTOMATIC_ALLOCATION_SCOPE})

    def __init__(self, body: Optional[Block] = None):
        super().__init__(regions=[Region([body or Block()])])

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    def verify_(self) -> None:
        if len(self.regions[0].blocks) > 1:
            raise ValueError("memref.alloca_scope region can contain at most one block")


@register_op
class AllocaScopeReturnOp(Operation):
    OP_NAME = "memref.alloca_scope.return"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, values: Sequence[Value] = ()):
        super().__init__(operands=list(values))


@register_op
class GlobalOp(Operation):
    """A module-level global memref definition."""

    OP_NAME = "memref.global"
    TRAITS = frozenset({SYMBOL})

    def __init__(self, sym_name: str, memref_type: MemRefType,
                 initial_value: Optional[Attribute] = None,
                 constant: bool = False):
        attrs = {
            "sym_name": StringAttr(sym_name),
            "type": TypeAttr(memref_type),
        }
        if initial_value is not None:
            attrs["initial_value"] = initial_value
        if constant:
            attrs["constant"] = UnitAttr()
        super().__init__(attributes=attrs)

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"].value

    @property
    def type(self) -> MemRefType:
        return self.attributes["type"].type


@register_op
class GetGlobalOp(Operation):
    OP_NAME = "memref.get_global"
    TRAITS = frozenset({PURE})

    def __init__(self, sym_name: str, result_type: MemRefType):
        super().__init__(result_types=[result_type],
                         attributes={"name": StringAttr(sym_name)})

    @property
    def global_name(self) -> str:
        return self.attributes["name"].value


__all__ = [
    "AllocOp", "AllocaOp", "DeallocOp", "LoadOp", "StoreOp", "DimOp", "CastOp",
    "CopyOp", "SubViewOp", "AllocaScopeOp", "AllocaScopeReturnOp", "GlobalOp",
    "GetGlobalOp",
]
