"""The ``vector`` dialect: SIMD loads, stores, FMA and reductions.

Produced by the affine super-vectorisation pass (Section VI, Figure 3) and
lowered to the ``llvm`` dialect by ``convert-vector-to-llvm``.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.attributes import StringAttr
from ..ir.core import Operation, Value, register_op
from ..ir.traits import PURE, READ_ONLY, WRITES_MEMORY
from ..ir.types import MemRefType, Type, VectorType


@register_op
class VectorLoadOp(Operation):
    """Load a 1-D vector of consecutive elements starting at the indices."""

    OP_NAME = "vector.load"
    TRAITS = frozenset({READ_ONLY})

    def __init__(self, result_type: VectorType, memref: Value,
                 indices: Sequence[Value]):
        super().__init__(operands=[memref, *indices], result_types=[result_type])

    @property
    def memref(self) -> Value:
        return self.operands[0]

    @property
    def indices(self):
        return self.operands[1:]


@register_op
class VectorStoreOp(Operation):
    OP_NAME = "vector.store"
    TRAITS = frozenset({WRITES_MEMORY})

    def __init__(self, value: Value, memref: Value, indices: Sequence[Value]):
        super().__init__(operands=[value, memref, *indices])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def memref(self) -> Value:
        return self.operands[1]

    @property
    def indices(self):
        return self.operands[2:]


@register_op
class BroadcastOp(Operation):
    """Broadcast a scalar into a vector."""

    OP_NAME = "vector.broadcast"
    TRAITS = frozenset({PURE})

    def __init__(self, result_type: VectorType, value: Value):
        super().__init__(operands=[value], result_types=[result_type])


@register_op
class SplatOp(Operation):
    OP_NAME = "vector.splat"
    TRAITS = frozenset({PURE})

    def __init__(self, result_type: VectorType, value: Value):
        super().__init__(operands=[value], result_types=[result_type])


@register_op
class FMAOp(Operation):
    """Fused multiply-add on vectors: ``a * b + c``."""

    OP_NAME = "vector.fma"
    TRAITS = frozenset({PURE})

    def __init__(self, a: Value, b: Value, c: Value):
        super().__init__(operands=[a, b, c], result_types=[a.type])


#: Supported reduction kinds.
REDUCTION_KINDS = ("add", "mul", "minf", "maxf", "minsi", "maxsi", "and", "or")


@register_op
class ReductionOp(Operation):
    """Horizontal reduction of a vector to a scalar."""

    OP_NAME = "vector.reduction"
    TRAITS = frozenset({PURE})

    def __init__(self, kind: str, vector: Value):
        if kind not in REDUCTION_KINDS:
            raise ValueError(f"invalid vector.reduction kind '{kind}'")
        element_type = vector.type.element_type
        super().__init__(operands=[vector], result_types=[element_type],
                         attributes={"kind": StringAttr(kind)})

    @property
    def kind(self) -> str:
        return self.attributes["kind"].value


@register_op
class ExtractElementOp(Operation):
    OP_NAME = "vector.extractelement"
    TRAITS = frozenset({PURE})

    def __init__(self, vector: Value, position: Value):
        super().__init__(operands=[vector, position],
                         result_types=[vector.type.element_type])


@register_op
class InsertElementOp(Operation):
    OP_NAME = "vector.insertelement"
    TRAITS = frozenset({PURE})

    def __init__(self, value: Value, vector: Value, position: Value):
        super().__init__(operands=[value, vector, position],
                         result_types=[vector.type])


__all__ = [
    "VectorLoadOp", "VectorStoreOp", "BroadcastOp", "SplatOp", "FMAOp",
    "ReductionOp", "ExtractElementOp", "InsertElementOp", "REDUCTION_KINDS",
]
