"""The ``math`` dialect: elementary transcendental functions and FMA."""

from __future__ import annotations

from ..ir.core import Operation, Value, register_op
from ..ir.traits import PURE


class _UnaryMathOp(Operation):
    TRAITS = frozenset({PURE})

    def __init__(self, value: Value):
        super().__init__(operands=[value], result_types=[value.type])


class _BinaryMathOp(Operation):
    TRAITS = frozenset({PURE})

    def __init__(self, lhs: Value, rhs: Value):
        super().__init__(operands=[lhs, rhs], result_types=[lhs.type])


@register_op
class SqrtOp(_UnaryMathOp):
    OP_NAME = "math.sqrt"


@register_op
class ExpOp(_UnaryMathOp):
    OP_NAME = "math.exp"


@register_op
class LogOp(_UnaryMathOp):
    OP_NAME = "math.log"


@register_op
class Log10Op(_UnaryMathOp):
    OP_NAME = "math.log10"


@register_op
class SinOp(_UnaryMathOp):
    OP_NAME = "math.sin"


@register_op
class CosOp(_UnaryMathOp):
    OP_NAME = "math.cos"


@register_op
class TanOp(_UnaryMathOp):
    OP_NAME = "math.tan"


@register_op
class TanhOp(_UnaryMathOp):
    OP_NAME = "math.tanh"


@register_op
class AbsFOp(_UnaryMathOp):
    OP_NAME = "math.absf"


@register_op
class AbsIOp(_UnaryMathOp):
    OP_NAME = "math.absi"


@register_op
class AtanOp(_UnaryMathOp):
    OP_NAME = "math.atan"


@register_op
class Atan2Op(_BinaryMathOp):
    OP_NAME = "math.atan2"


@register_op
class PowFOp(_BinaryMathOp):
    OP_NAME = "math.powf"


@register_op
class IPowIOp(_BinaryMathOp):
    OP_NAME = "math.ipowi"


@register_op
class FPowIOp(_BinaryMathOp):
    OP_NAME = "math.fpowi"


@register_op
class FmaOp(Operation):
    """Scalar fused multiply-add produced by ``math-uplift-to-fma``."""

    OP_NAME = "math.fma"
    TRAITS = frozenset({PURE})

    def __init__(self, a: Value, b: Value, c: Value):
        super().__init__(operands=[a, b, c], result_types=[a.type])


#: Fortran intrinsic name -> unary math op class.
UNARY_INTRINSIC_OPS = {
    "sqrt": SqrtOp,
    "exp": ExpOp,
    "log": LogOp,
    "log10": Log10Op,
    "sin": SinOp,
    "cos": CosOp,
    "tan": TanOp,
    "tanh": TanhOp,
    "atan": AtanOp,
    "abs": AbsFOp,
}

#: Fortran intrinsic name -> binary math op class.
BINARY_INTRINSIC_OPS = {
    "atan2": Atan2Op,
}


__all__ = [
    "SqrtOp", "ExpOp", "LogOp", "Log10Op", "SinOp", "CosOp", "TanOp", "TanhOp",
    "AbsFOp", "AbsIOp", "AtanOp", "Atan2Op", "PowFOp", "IPowIOp", "FPowIOp",
    "FmaOp", "UNARY_INTRINSIC_OPS", "BINARY_INTRINSIC_OPS",
]
