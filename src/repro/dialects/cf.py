"""The ``cf`` dialect: unstructured control flow between blocks."""

from __future__ import annotations

from typing import Sequence

from ..ir.core import Block, Operation, Value, register_op
from ..ir.traits import IS_TERMINATOR


@register_op
class BranchOp(Operation):
    """Unconditional branch, optionally forwarding block arguments."""

    OP_NAME = "cf.br"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, dest: Block, operands: Sequence[Value] = ()):
        super().__init__(operands=list(operands), successors=[dest])

    @property
    def dest(self) -> Block:
        return self.successors[0]


@register_op
class CondBranchOp(Operation):
    """Conditional branch to one of two successor blocks.

    Operand layout: ``[condition, true_args..., false_args...]`` with the
    split recorded so each successor receives its own forwarded values.
    """

    OP_NAME = "cf.cond_br"
    TRAITS = frozenset({IS_TERMINATOR})

    def __init__(self, condition: Value, true_dest: Block, false_dest: Block,
                 true_operands: Sequence[Value] = (),
                 false_operands: Sequence[Value] = ()):
        from ..ir.attributes import IntegerAttr
        super().__init__(operands=[condition, *true_operands, *false_operands],
                         successors=[true_dest, false_dest],
                         attributes={"num_true_operands": IntegerAttr(len(true_operands))})

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_dest(self) -> Block:
        return self.successors[0]

    @property
    def false_dest(self) -> Block:
        return self.successors[1]

    def _num_true(self) -> int:
        attr = self.get_attr("num_true_operands")
        return attr.value if attr is not None else len(self.operands) - 1

    @property
    def true_operands(self):
        n = self._num_true()
        return self.operands[1:1 + n]

    @property
    def false_operands(self):
        n = self._num_true()
        return self.operands[1 + n:]


__all__ = ["BranchOp", "CondBranchOp"]
