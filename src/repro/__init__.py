"""repro — reproduction of "Fully integrating the Flang Fortran compiler with
standard MLIR" (SC 2024).

Public entry points:

* :class:`repro.flang.FlangCompiler` — the baseline Flang flow (Figure 1);
* :class:`repro.core.StandardMLIRCompiler` — the paper's standard-MLIR flow
  (Figure 2, Section V/VI);
* :mod:`repro.flows` — the flow registry making compilation flows
  first-class, registered objects;
* :mod:`repro.machine` — interpreter + machine models producing modeled
  runtimes;
* :mod:`repro.workloads` and :mod:`repro.harness` — the benchmarks and the
  experiments regenerating Tables I-V;
* ``python -m repro.opt`` — the mlir-opt analogue: run any flow or textual
  pass pipeline over Fortran source, with timings and IR dumps.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
