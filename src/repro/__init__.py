"""repro — reproduction of "Fully integrating the Flang Fortran compiler with
standard MLIR" (SC 2024).

Public entry points:

* :class:`repro.flang.FlangCompiler` — the baseline Flang flow (Figure 1);
* :class:`repro.core.StandardMLIRCompiler` — the paper's standard-MLIR flow
  (Figure 2, Section V/VI);
* :mod:`repro.machine` — interpreter + machine models producing modeled
  runtimes;
* :mod:`repro.workloads` and :mod:`repro.harness` — the benchmarks and the
  experiments regenerating Tables I-V.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
