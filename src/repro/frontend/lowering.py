"""Lowering from the analysed Fortran AST to HLFIR + FIR (Flang's IR).

This reproduces the *output* of Flang's bridge stage (Figure 1 of the paper):
a ``builtin.module`` holding one ``func.func`` per program unit whose body
mixes the ``hlfir``/``fir`` dialects with a handful of standard dialects
(``arith``, ``func``, ``math``, ``omp``, ``acc``), e.g.

* variables are declared with ``hlfir.declare`` over ``fir.alloca`` /
  dummy-argument references,
* assignments use ``hlfir.assign``; array elements are addressed with
  ``hlfir.designate`` using 1-based Fortran indices,
* do loops become ``fir.do_loop`` (storing the index into the loop variable
  at the top of each body, as Flang does), do-while / do-with-exit loops
  become ``fir.iterate_while``,
* allocatable arrays are boxed (``!fir.ref<!fir.box<!fir.heap<...>>>``),
* transformational intrinsics stay abstract as ``hlfir.sum`` etc.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects import acc as acc_d
from ..dialects import arith, fir, hlfir
from ..dialects import func as func_d
from ..dialects import math as math_d
from ..dialects import omp as omp_d
from ..dialects.builtin import ModuleOp
from ..ir import types as ir_types
from ..ir.builder import Builder, InsertPoint
from ..ir.core import Block, Operation, Value
from . import ast_nodes as ast
from . import ftypes, intrinsics
from .ftypes import FType
from .semantics import AnalysisResult, SemanticError, Symbol, analyze
from .parser import parse_source


class LoweringError(Exception):
    pass


@dataclass
class VariableInfo:
    """Lowering-time information about one Fortran variable."""

    symbol: Symbol
    address: Value                 # result of hlfir.declare (a reference/box ref)
    ftype: FType
    extents: List[Value]           # SSA extents for dynamic explicit-shape arrays
    is_boxed: bool = False         # allocatable / pointer (address is a ref to a box)
    by_value: bool = False         # scalar parameter folded to a constant


class FortranLowering:
    """Lowers one compilation unit into a HLFIR/FIR module."""

    def __init__(self, analysis: AnalysisResult):
        self.analysis = analysis
        self.module = ModuleOp(name="fortran_module")
        self.builder = Builder()
        self.variables: Dict[str, VariableInfo] = {}
        self.current_info = None
        self.loop_exit_flags: List[Value] = []
        self.globals_emitted: Dict[str, FType] = {}

    # ------------------------------------------------------------------ driver
    def lower(self) -> ModuleOp:
        for module_unit in self.analysis.unit.modules:
            for sym in self.analysis.globals.values():
                if sym.name not in self.globals_emitted:
                    self._emit_global(sym)
        for name, info in self.analysis.subprograms.items():
            self.lower_subprogram(info)
        return self.module

    # ------------------------------------------------------------- subprograms
    def _mangled_name(self, sp: ast.Subprogram) -> str:
        if sp.kind == "program":
            return "_QQmain"
        return f"_QP{sp.name}"

    def _argument_fir_type(self, sym: Symbol) -> ir_types.Type:
        ft = sym.ftype
        if ft.base == "derived":
            record = self._record_type(ft)
            return fir.ReferenceType(record)
        return ft.fir_storage_type()

    def _record_type(self, ft: FType) -> fir.RecordType:
        dt = self.analysis.derived_types[ft.derived_name]
        members = []
        for name, comp_t in dt.components:
            if comp_t.is_array:
                members.append((name, fir.SequenceType(comp_t.shape(),
                                                       comp_t.element_ir_type())))
            else:
                members.append((name, comp_t.element_ir_type()))
        return fir.RecordType(ft.derived_name, members)

    def lower_subprogram(self, info) -> func_d.FuncOp:
        sp = info.subprogram
        self.current_info = info
        self.variables = {}
        arg_syms = [info.symbols.lookup(a) for a in sp.args]
        arg_types = [self._argument_fir_type(s) for s in arg_syms]
        result_types: List[ir_types.Type] = []
        if sp.kind == "function" and info.result_symbol is not None:
            result_types = [info.result_symbol.ftype.element_ir_type()]
        func_type = ir_types.FunctionType(arg_types, result_types)
        func_op = func_d.FuncOp(self._mangled_name(sp), func_type)
        # record argument names and intents so later conversions (our standard
        # MLIR mapping) can pick by-value vs by-reference representations
        from ..ir.attributes import ArrayAttr, StringAttr
        func_op.set_attr("arg_names", ArrayAttr([StringAttr(a) for a in sp.args]))
        func_op.set_attr("arg_intents", ArrayAttr(
            [StringAttr(s.intent or "") for s in arg_syms]))
        self.module.add(func_op)
        entry = func_op.entry_block
        self.builder.set_insertion_point_to_end(entry)

        # declare dummy arguments
        for sym, block_arg in zip(arg_syms, entry.args):
            block_arg.name_hint = sym.name
            self._declare_argument(sym, block_arg)
        # declare locals (everything else in the symbol table)
        for sym in info.symbols.values():
            if sym.name in self.variables or sym.is_global:
                continue
            if sym.is_parameter and not sym.ftype.is_array:
                continue  # folded into constants at use sites
            self._declare_local(sym)
        # globals referenced by this subprogram
        for sym in self.analysis.globals.values():
            if sym.name not in self.variables:
                self._declare_global_use(sym)

        self._lower_statements(sp.body)

        # implicit return
        block = self.builder.insertion_point.block
        if block.terminator is None:
            self._emit_return(info)
        self.current_info = None
        return func_op

    def _emit_return(self, info) -> None:
        sp = info.subprogram
        if sp.kind == "function" and info.result_symbol is not None:
            var = self.variables[info.result_symbol.name]
            value = self._insert(fir.LoadOp(var.address)).result
            self._insert(func_d.ReturnOp([value]))
        else:
            self._insert(func_d.ReturnOp())

    # -------------------------------------------------------------- declarations
    def _insert(self, op: Operation) -> Operation:
        return self.builder.insert(op)

    def _declare_argument(self, sym: Symbol, block_arg: Value) -> None:
        ft = sym.ftype
        attrs = []
        if sym.intent:
            attrs.append(f"intent_{sym.intent}")
        if ft.allocatable:
            attrs.append("allocatable")
        shape_val = None
        extents: List[Value] = []
        if ft.is_array and not ft.allocatable and not ft.pointer:
            extents = self._explicit_shape_extents(sym)
            if extents:
                shape_val = self._insert(fir.ShapeOp(extents)).result
        declare = self._insert(hlfir.DeclareOp(block_arg, uniq_name=sym.name,
                                               shape=shape_val, fortran_attrs=attrs))
        self.variables[sym.name] = VariableInfo(
            symbol=sym, address=declare.results[0], ftype=ft, extents=extents,
            is_boxed=ft.allocatable or ft.pointer)

    def _explicit_shape_extents(self, sym: Symbol) -> List[Value]:
        """SSA extent values for an explicit-shape array (may read other dummies)."""
        extents: List[Value] = []
        for dim, (lower_e, upper_e) in zip(sym.ftype.dims, sym.dynamic_bounds):
            if dim.extent is not None:
                extents.append(self._index_constant(dim.extent))
            elif upper_e is not None:
                upper_v = self._to_index(self._lower_expr(upper_e))
                if lower_e is not None:
                    lower_v = self._to_index(self._lower_expr(lower_e))
                    diff = self._insert(arith.SubIOp(upper_v, lower_v)).result
                    extents.append(self._insert(
                        arith.AddIOp(diff, self._index_constant(1))).result)
                else:
                    extents.append(upper_v)
            else:
                extents.append(self._index_constant(0))
        return extents

    def _declare_local(self, sym: Symbol) -> None:
        ft = sym.ftype
        if ft.base == "derived":
            self._declare_derived_local(sym)
            return
        elem = ft.element_ir_type()
        extents: List[Value] = []
        shape_val = None
        if ft.allocatable or ft.pointer:
            box_type = fir.BoxType(fir.HeapType(
                fir.SequenceType(ft.shape(), elem) if ft.is_array else elem))
            alloca = self._insert(fir.AllocaOp(box_type, bindc_name=sym.name))
            storage: Value = alloca.result
            attrs = ["allocatable" if ft.allocatable else "pointer"]
            declare = self._insert(hlfir.DeclareOp(storage, uniq_name=sym.name,
                                                   fortran_attrs=attrs))
            self.variables[sym.name] = VariableInfo(
                symbol=sym, address=declare.results[0], ftype=ft, extents=[],
                is_boxed=True)
            return
        if ft.is_array:
            in_type = fir.SequenceType(ft.shape(), elem)
            dynamic_extents = []
            for dim, (lower_e, upper_e) in zip(ft.dims, sym.dynamic_bounds):
                if dim.extent is not None:
                    extents.append(self._index_constant(dim.extent))
                elif upper_e is not None:
                    val = self._to_index(self._lower_expr(upper_e))
                    extents.append(val)
                    dynamic_extents.append(val)
                else:
                    extents.append(self._index_constant(1))
            alloca = self._insert(fir.AllocaOp(in_type, bindc_name=sym.name,
                                               shape_operands=dynamic_extents))
            shape_val = self._insert(fir.ShapeOp(extents)).result
            declare = self._insert(hlfir.DeclareOp(alloca.result, uniq_name=sym.name,
                                                   shape=shape_val))
        else:
            alloca = self._insert(fir.AllocaOp(elem, bindc_name=sym.name))
            declare = self._insert(hlfir.DeclareOp(alloca.result, uniq_name=sym.name))
        self.variables[sym.name] = VariableInfo(
            symbol=sym, address=declare.results[0], ftype=ft, extents=extents)

    def _declare_derived_local(self, sym: Symbol) -> None:
        record = self._record_type(sym.ftype)
        alloca = self._insert(fir.AllocaOp(record, bindc_name=sym.name))
        declare = self._insert(hlfir.DeclareOp(alloca.result, uniq_name=sym.name))
        self.variables[sym.name] = VariableInfo(
            symbol=sym, address=declare.results[0], ftype=sym.ftype, extents=[])

    def _emit_global(self, sym: Symbol) -> None:
        ft = sym.ftype
        elem = ft.element_ir_type()
        if ft.is_array:
            gtype: ir_types.Type = fir.SequenceType(ft.shape(), elem)
        else:
            gtype = elem
        init = None
        if sym.parameter_value is not None and not ft.is_array:
            if ft.base == "integer":
                init = arith.ConstantOp(int(sym.parameter_value), elem).attributes["value"]
            elif ft.base == "real":
                from ..ir.attributes import FloatAttr
                init = FloatAttr(float(sym.parameter_value), elem)
        self.module.add(fir.GlobalOp(f"_QM{sym.name}", gtype, initial_value=init))
        self.globals_emitted[sym.name] = ft

    def _declare_global_use(self, sym: Symbol) -> None:
        if sym.name not in self.globals_emitted:
            return
        ft = sym.ftype
        elem = ft.element_ir_type()
        gtype = fir.SequenceType(ft.shape(), elem) if ft.is_array else elem
        addr = self._insert(fir.AddressOfOp(f"_QM{sym.name}", fir.ReferenceType(gtype)))
        declare = self._insert(hlfir.DeclareOp(addr.result, uniq_name=sym.name))
        self.variables[sym.name] = VariableInfo(
            symbol=sym, address=declare.results[0], ftype=ft, extents=[])

    # ---------------------------------------------------------------- statements
    def _lower_statements(self, stmts: Sequence[ast.Stmt]) -> None:
        for stmt in stmts:
            self._lower_statement(stmt)

    def _lower_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assignment):
            self._lower_assignment(stmt)
        elif isinstance(stmt, ast.IfBlock):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.DoLoop):
            self._lower_do(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.CallStmt):
            self._lower_call_stmt(stmt)
        elif isinstance(stmt, ast.AllocateStmt):
            self._lower_allocate(stmt)
        elif isinstance(stmt, ast.DeallocateStmt):
            self._lower_deallocate(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self._emit_return(self.current_info)
            # continue lowering into a fresh block-less position is not needed:
            # statements after RETURN in the supported subset are dead code.
        elif isinstance(stmt, ast.StopStmt):
            self._insert(fir.CallOp("_FortranAStopStatement", []))
        elif isinstance(stmt, ast.PrintStmt):
            values = [self._lower_expr(item) for item in stmt.items]
            self._insert(fir.CallOp("_FortranAioOutput", values))
        elif isinstance(stmt, ast.ContinueStmt):
            pass
        elif isinstance(stmt, ast.ExitStmt):
            self._lower_exit()
        elif isinstance(stmt, ast.DirectiveRegion):
            self._lower_directive_region(stmt)
        elif isinstance(stmt, ast.PointerAssignment):
            self._lower_pointer_assignment(stmt)
        elif isinstance(stmt, (ast.CycleStmt, ast.GotoStmt)):
            raise LoweringError(f"{type(stmt).__name__} is not supported by the frontend subset")
        else:
            raise LoweringError(f"cannot lower statement {type(stmt).__name__}")

    # -- assignment -----------------------------------------------------------
    def _lower_assignment(self, stmt: ast.Assignment) -> None:
        value = self._lower_expr(stmt.value)
        target_t = stmt.target.ftype
        address = self._lower_address(stmt.target)
        if target_t is not None and not target_t.is_array:
            value = self._convert(value, target_t.element_ir_type())
        self._insert(hlfir.AssignOp(value, address))

    def _lower_pointer_assignment(self, stmt: ast.PointerAssignment) -> None:
        # p => target : store an embox of the target into the pointer's box
        target_addr = self._lower_address(stmt.value)
        pointer_addr = self._lower_address(stmt.target)
        box = self._insert(fir.EmboxOp(target_addr)).result
        self._insert(fir.StoreOp(box, pointer_addr))

    # -- control flow -----------------------------------------------------------
    def _lower_if(self, stmt: ast.IfBlock) -> None:
        self._lower_if_chain(stmt.conditions, stmt.bodies, stmt.else_body)

    def _lower_if_chain(self, conditions, bodies, else_body) -> None:
        condition = self._to_i1(self._lower_expr(conditions[0]))
        if_op = self._insert(fir.IfOp(condition))
        saved = self.builder.insertion_point
        # then region
        self.builder.set_insertion_point_to_end(if_op.then_block)
        self._lower_statements(bodies[0])
        if if_op.then_block.terminator is None:
            self._insert(fir.ResultOp())
        # else region
        self.builder.set_insertion_point_to_end(if_op.else_block)
        if len(conditions) > 1:
            self._lower_if_chain(conditions[1:], bodies[1:], else_body)
        elif else_body:
            self._lower_statements(else_body)
        if if_op.else_block.terminator is None:
            self._insert(fir.ResultOp())
        self.builder.set_insertion_point(saved)

    @staticmethod
    def _contains_exit(stmts: Sequence[ast.Stmt]) -> bool:
        for s in stmts:
            if isinstance(s, ast.ExitStmt):
                return True
            if isinstance(s, ast.IfBlock):
                if any(FortranLowering._contains_exit(b) for b in s.bodies):
                    return True
                if FortranLowering._contains_exit(s.else_body):
                    return True
        return False

    def _lower_do(self, stmt: ast.DoLoop) -> None:
        if stmt.directives and any(d.startswith("omp") for d in stmt.directives):
            self._lower_omp_do(stmt)
            return
        if self._contains_exit(stmt.body):
            self._lower_do_with_exit(stmt)
            return
        lower = self._to_index(self._lower_expr(stmt.start))
        upper = self._to_index(self._lower_expr(stmt.end))
        if stmt.step is not None:
            step = self._to_index(self._lower_expr(stmt.step))
        else:
            step = self._index_constant(1)
        loop = self._insert(fir.DoLoopOp(lower, upper, step))
        var = self.variables[stmt.var]
        saved = self.builder.insertion_point
        self.builder.set_insertion_point_to_end(loop.body)
        # Flang stores the loop index into the iteration variable first
        iv_cast = self._convert(loop.induction_variable, var.ftype.element_ir_type())
        self._insert(fir.StoreOp(iv_cast, var.address))
        self._lower_statements(stmt.body)
        if loop.body.terminator is None:
            self._insert(fir.ResultOp())
        self.builder.set_insertion_point(saved)

    def _lower_do_with_exit(self, stmt: ast.DoLoop) -> None:
        """A counted loop containing EXIT lowers to fir.iterate_while."""
        lower = self._to_index(self._lower_expr(stmt.start))
        upper = self._to_index(self._lower_expr(stmt.end))
        step = (self._to_index(self._lower_expr(stmt.step))
                if stmt.step is not None else self._index_constant(1))
        true_val = self._insert(arith.ConstantOp(True, ir_types.i1)).result
        loop = self._insert(fir.IterateWhileOp(lower, upper, step, true_val))
        var = self.variables[stmt.var]
        saved = self.builder.insertion_point
        self.builder.set_insertion_point_to_end(loop.body)
        iv_cast = self._convert(loop.body.args[0], var.ftype.element_ir_type())
        self._insert(fir.StoreOp(iv_cast, var.address))
        self.loop_exit_flags.append(loop.body.args[1])
        self._exit_requested: Optional[Value] = None
        self._lower_statements(stmt.body)
        flag = self.loop_exit_flags.pop()
        if loop.body.terminator is None:
            current_flag = getattr(self, "_current_ok_flag", None) or flag
            self._insert(fir.ResultOp([current_flag]))
        self._current_ok_flag = None
        self.builder.set_insertion_point(saved)

    def _lower_exit(self) -> None:
        """EXIT sets the iterate_while ok-flag to false for the next check."""
        if not self.loop_exit_flags:
            raise LoweringError("EXIT outside of a loop that supports early exit")
        false_val = self._insert(arith.ConstantOp(False, ir_types.i1)).result
        self._current_ok_flag = false_val

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        """do while(cond) lowers to fir.iterate_while with a huge trip bound."""
        lower = self._index_constant(1)
        upper = self._index_constant(2 ** 31 - 1)
        step = self._index_constant(1)
        # evaluate the condition once for the initial flag
        initial = self._to_i1(self._lower_expr(stmt.condition))
        loop = self._insert(fir.IterateWhileOp(lower, upper, step, initial))
        saved = self.builder.insertion_point
        self.builder.set_insertion_point_to_end(loop.body)
        self._lower_statements(stmt.body)
        cond = self._to_i1(self._lower_expr(stmt.condition))
        self._insert(fir.ResultOp([cond]))
        self.builder.set_insertion_point(saved)

    # -- OpenMP / OpenACC ---------------------------------------------------------
    def _lower_omp_do(self, stmt: ast.DoLoop) -> None:
        parallel = self._insert(omp_d.ParallelOp())
        saved = self.builder.insertion_point
        self.builder.set_insertion_point_to_end(parallel.body)
        lower = self._to_index(self._lower_expr(stmt.start))
        upper = self._to_index(self._lower_expr(stmt.end))
        step = (self._to_index(self._lower_expr(stmt.step))
                if stmt.step is not None else self._index_constant(1))
        wsloop = self._insert(omp_d.WsLoopOp([lower], [upper], [step]))
        # Fortran do-loop bounds are inclusive; record that for consumers
        from ..ir.attributes import IntegerAttr
        wsloop.set_attr("inclusive_ub", IntegerAttr(1))
        self.builder.set_insertion_point_to_end(wsloop.body)
        var = self.variables[stmt.var]
        iv_cast = self._convert(wsloop.body.args[0], var.ftype.element_ir_type())
        self._insert(fir.StoreOp(iv_cast, var.address))
        self._lower_statements(stmt.body)
        if wsloop.body.terminator is None:
            self._insert(omp_d.YieldOp())
        self.builder.set_insertion_point_to_end(parallel.body)
        if parallel.body.terminator is None:
            self._insert(omp_d.TerminatorOp())
        self.builder.set_insertion_point(saved)

    _CLAUSE_RE = re.compile(r"(\w+)\s*\(([^)]*)\)")

    def _lower_directive_region(self, stmt: ast.DirectiveRegion) -> None:
        directive = stmt.directive
        if directive.startswith("acc"):
            self._lower_acc_region(stmt)
        elif directive.startswith("omp"):
            parallel = self._insert(omp_d.ParallelOp())
            saved = self.builder.insertion_point
            self.builder.set_insertion_point_to_end(parallel.body)
            self._lower_statements(stmt.body)
            if parallel.body.terminator is None:
                self._insert(omp_d.TerminatorOp())
            self.builder.set_insertion_point(saved)
        else:
            self._lower_statements(stmt.body)

    def _lower_acc_region(self, stmt: ast.DirectiveRegion) -> None:
        kind = stmt.directive.split()[-1]
        data_operands: List[Value] = []
        created: List[Tuple[str, Value]] = []
        for clause, names in self._CLAUSE_RE.findall(stmt.clauses):
            for raw in names.split(","):
                name = raw.strip().split("(")[0]
                if not name or name not in self.variables:
                    continue
                var = self.variables[name]
                if clause in ("create", "copyin", "copy", "present"):
                    op_cls = acc_d.CreateOp if clause == "create" else acc_d.CopyinOp
                    op = self._insert(op_cls(var.address, name=name))
                    data_operands.append(op.results[0])
                    created.append((clause, var.address))
        if kind == "data":
            region_op = self._insert(acc_d.DataOp(data_operands))
        else:
            region_op = self._insert(acc_d.KernelsOp(data_operands))
        saved = self.builder.insertion_point
        self.builder.set_insertion_point_to_end(region_op.body)
        self._lower_statements(stmt.body)
        if region_op.body.terminator is None:
            self._insert(acc_d.TerminatorOp())
        self.builder.set_insertion_point(saved)
        for clause, address in created:
            if clause in ("create", "copy"):
                self._insert(acc_d.DeleteOp(address))

    # -- calls & allocation ----------------------------------------------------------
    def _lower_call_stmt(self, stmt: ast.CallStmt) -> None:
        args = [self._lower_actual_argument(a) for a in stmt.args]
        self._insert(fir.CallOp(f"_QP{stmt.name}", args))

    def _lower_actual_argument(self, expr: ast.Expr) -> Value:
        """Fortran passes arguments by reference: produce an address."""
        is_named = isinstance(expr, (ast.Identifier, ast.ArrayRef, ast.ComponentRef))
        is_parameter = isinstance(expr, ast.Identifier) and (
            expr.name not in self.variables
            or self.variables[expr.name].symbol.is_parameter)
        if is_named and not is_parameter:
            return self._lower_address(expr)
        # expression argument: evaluate into a temporary
        value = self._lower_expr(expr)
        temp = self._insert(fir.AllocaOp(value.type, bindc_name="tmp_arg"))
        self._insert(fir.StoreOp(value, temp.result))
        return temp.result

    def _lower_allocate(self, stmt: ast.AllocateStmt) -> None:
        for name, dim_exprs in stmt.allocations:
            var = self.variables[name]
            elem = var.ftype.element_ir_type()
            extents = [self._to_index(self._lower_expr(d)) for d in dim_exprs]
            seq = fir.SequenceType([ir_types.DYNAMIC] * len(extents), elem) \
                if extents else elem
            heap = self._insert(fir.AllocMemOp(seq, shape_operands=extents,
                                               bindc_name=name))
            shape = self._insert(fir.ShapeOp(extents)).result if extents else None
            box = self._insert(fir.EmboxOp(heap.result, shape=shape,
                                           result_type=fir.BoxType(fir.HeapType(seq))))
            self._insert(fir.StoreOp(box.result, var.address))

    def _lower_deallocate(self, stmt: ast.DeallocateStmt) -> None:
        for name in stmt.names:
            var = self.variables[name]
            box = self._insert(fir.LoadOp(var.address)).result
            addr = self._insert(fir.BoxAddrOp(box)).result
            self._insert(fir.FreeMemOp(addr))

    # ------------------------------------------------------------------ expressions
    def _lower_expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLiteral):
            t = ir_types.IntegerType(expr.kind * 8) if expr.kind != 4 else ir_types.i32
            return self._insert(arith.ConstantOp(expr.value, t)).result
        if isinstance(expr, ast.RealLiteral):
            t = ir_types.f64 if (expr.ftype and expr.ftype.kind == 8) else ir_types.f32
            return self._insert(arith.ConstantOp(expr.value, t)).result
        if isinstance(expr, ast.LogicalLiteral):
            return self._insert(arith.ConstantOp(expr.value, ir_types.i1)).result
        if isinstance(expr, ast.CharLiteral):
            return self._insert(fir.StringLitOp(expr.value)).result
        if isinstance(expr, ast.Identifier):
            return self._load_variable(expr.name)
        if isinstance(expr, ast.ArrayRef):
            if any(isinstance(i, ast.SliceTriplet) for i in expr.indices):
                return self._lower_address(expr)
            address = self._lower_address(expr)
            return self._insert(fir.LoadOp(address)).result
        if isinstance(expr, ast.ComponentRef):
            address = self._lower_address(expr)
            if expr.ftype is not None and expr.ftype.is_array:
                return address
            return self._insert(fir.LoadOp(address)).result
        if isinstance(expr, ast.BinaryOp):
            return self._lower_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._lower_unary(expr)
        if isinstance(expr, ast.IntrinsicCall):
            return self._lower_intrinsic(expr)
        if isinstance(expr, ast.FunctionCall):
            args = [self._lower_actual_argument(a) for a in expr.args]
            result_type = expr.ftype.element_ir_type()
            call = self._insert(fir.CallOp(f"_QP{expr.name}", args, [result_type]))
            return call.results[0]
        raise LoweringError(f"cannot lower expression {type(expr).__name__}")

    def _load_variable(self, name: str) -> Value:
        var = self.variables.get(name)
        if var is None:
            sym = self.current_info.symbols.lookup(name)
            if sym is not None and sym.is_parameter:
                value = sym.parameter_value
                if sym.ftype.base == "integer":
                    return self._insert(arith.ConstantOp(int(value), ir_types.i32)).result
                return self._insert(arith.ConstantOp(float(value), ir_types.f64 if sym.ftype.kind == 8 else ir_types.f32)).result
            raise LoweringError(f"unknown variable {name}")
        sym = var.symbol
        if sym.is_parameter and sym.parameter_value is not None and not sym.ftype.is_array:
            elem = sym.ftype.element_ir_type()
            if sym.ftype.base == "integer":
                return self._insert(arith.ConstantOp(int(sym.parameter_value), elem)).result
            return self._insert(arith.ConstantOp(float(sym.parameter_value), elem)).result
        if var.ftype.is_array:
            # whole-array reference: yield the variable address (or its box)
            return var.address
        value = self._insert(fir.LoadOp(var.address)).result
        return value

    def _lower_address(self, expr: ast.Expr) -> Value:
        """Lower an lvalue to a FIR reference."""
        if isinstance(expr, ast.Identifier):
            return self.variables[expr.name].address
        if isinstance(expr, ast.ArrayRef):
            var = self.variables[expr.name]
            if any(isinstance(i, ast.SliceTriplet) for i in expr.indices):
                return self._lower_section(var, expr)
            indices = [self._to_index(self._lower_expr(i)) for i in expr.indices]
            base = var.address
            elem_ref = fir.ReferenceType(var.ftype.element_ir_type())
            designate = self._insert(hlfir.DesignateOp(base, indices,
                                                       result_type=elem_ref))
            return designate.results[0]
        if isinstance(expr, ast.ComponentRef):
            base_addr = self._lower_address(expr.base)
            comp_t = expr.ftype
            if comp_t.is_array:
                result_type = fir.ReferenceType(
                    fir.SequenceType(comp_t.shape(), comp_t.element_ir_type()))
            else:
                result_type = fir.ReferenceType(comp_t.element_ir_type())
            designate = self._insert(hlfir.DesignateOp(base_addr, [],
                                                       component=expr.component,
                                                       result_type=result_type))
            return designate.results[0]
        raise LoweringError(f"cannot take the address of {type(expr).__name__}")

    def _lower_section(self, var: VariableInfo, expr: ast.ArrayRef) -> Value:
        """An array section a(lo:hi, j) lowers to hlfir.designate with triplets."""
        triplet_vals: List[Value] = []
        for idx in expr.indices:
            if isinstance(idx, ast.SliceTriplet):
                lo = self._to_index(self._lower_expr(idx.lower)) if idx.lower is not None \
                    else self._index_constant(1)
                hi = self._to_index(self._lower_expr(idx.upper)) if idx.upper is not None \
                    else self._index_constant(0)
                stride = self._to_index(self._lower_expr(idx.stride)) if idx.stride is not None \
                    else self._index_constant(1)
                triplet_vals.extend([lo, hi, stride])
            else:
                v = self._to_index(self._lower_expr(idx))
                triplet_vals.extend([v, v, self._index_constant(1)])
        section_type = fir.ReferenceType(
            fir.SequenceType([ir_types.DYNAMIC] * var.ftype.rank,
                             var.ftype.element_ir_type()))
        designate = self._insert(hlfir.DesignateOp(var.address, [],
                                                   result_type=section_type,
                                                   triplets=triplet_vals))
        return designate.results[0]

    # -- operators --------------------------------------------------------------
    def _lower_binary(self, expr: ast.BinaryOp) -> Value:
        op = expr.op
        if op in (".and.", ".or.", ".eqv.", ".neqv."):
            lhs = self._to_i1(self._lower_expr(expr.lhs))
            rhs = self._to_i1(self._lower_expr(expr.rhs))
            if op == ".and.":
                return self._insert(arith.AndIOp(lhs, rhs)).result
            if op == ".or.":
                return self._insert(arith.OrIOp(lhs, rhs)).result
            eq = self._insert(arith.CmpIOp("eq", lhs, rhs)).result
            if op == ".eqv.":
                return eq
            true_c = self._insert(arith.ConstantOp(True, ir_types.i1)).result
            return self._insert(arith.XOrIOp(eq, true_c)).result
        lhs = self._lower_expr(expr.lhs)
        rhs = self._lower_expr(expr.rhs)
        if op in ("==", "/=", "<", "<=", ">", ">="):
            return self._lower_comparison(op, lhs, rhs)
        if op == "**":
            return self._lower_power(lhs, rhs)
        # numeric promotion
        lhs, rhs = self._promote(lhs, rhs)
        return self._insert(arith.make_arith_binop(op, lhs, rhs)).result

    _CMPI = {"==": "eq", "/=": "ne", "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}
    _CMPF = {"==": "oeq", "/=": "one", "<": "olt", "<=": "ole", ">": "ogt", ">=": "oge"}

    def _lower_comparison(self, op: str, lhs: Value, rhs: Value) -> Value:
        lhs, rhs = self._promote(lhs, rhs)
        if isinstance(lhs.type, ir_types.FloatType):
            return self._insert(arith.CmpFOp(self._CMPF[op], lhs, rhs)).result
        return self._insert(arith.CmpIOp(self._CMPI[op], lhs, rhs)).result

    def _lower_power(self, base: Value, exponent: Value) -> Value:
        if isinstance(base.type, ir_types.FloatType):
            if isinstance(exponent.type, ir_types.FloatType):
                exponent = self._convert(exponent, base.type)
                return self._insert(math_d.PowFOp(base, exponent)).result
            return self._insert(math_d.FPowIOp(base, exponent)).result
        return self._insert(math_d.IPowIOp(base, exponent)).result

    def _lower_unary(self, expr: ast.UnaryOp) -> Value:
        operand = self._lower_expr(expr.operand)
        if expr.op == "-":
            if isinstance(operand.type, ir_types.FloatType):
                return self._insert(arith.NegFOp(operand)).result
            zero = self._insert(arith.ConstantOp(0, operand.type)).result
            return self._insert(arith.SubIOp(zero, operand)).result
        if expr.op == ".not.":
            operand = self._to_i1(operand)
            true_c = self._insert(arith.ConstantOp(True, ir_types.i1)).result
            return self._insert(arith.XOrIOp(operand, true_c)).result
        return operand

    # -- intrinsics --------------------------------------------------------------
    def _lower_intrinsic(self, expr: ast.IntrinsicCall) -> Value:
        name = expr.name.lower()
        if name in intrinsics.TRANSFORMATIONAL:
            return self._lower_transformational(expr)
        if name in ("size",):
            return self._lower_size(expr)
        if name == "allocated":
            return self._lower_allocated(expr)
        if name in ("lbound", "ubound"):
            return self._lower_bound_inquiry(expr)
        args = [self._lower_expr(a) for a in expr.args]
        if name in intrinsics.ELEMENTAL_MATH:
            args = [self._ensure_float(a) for a in args]
            if name in math_d.UNARY_INTRINSIC_OPS:
                return self._insert(math_d.UNARY_INTRINSIC_OPS[name](args[0])).result
            if name in math_d.BINARY_INTRINSIC_OPS:
                return self._insert(math_d.BINARY_INTRINSIC_OPS[name](args[0], args[1])).result
            if name == "asin" or name == "acos" or name == "sinh" or name == "cosh":
                # not present as dedicated math ops: call the runtime
                return self._insert(fir.CallOp(f"_Fortran{name.capitalize()}", args,
                                               [args[0].type])).results[0]
        if name == "abs":
            if isinstance(args[0].type, ir_types.FloatType):
                return self._insert(math_d.AbsFOp(args[0])).result
            return self._insert(math_d.AbsIOp(args[0])).result
        if name == "mod":
            lhs, rhs = self._promote(args[0], args[1])
            kind = "mod"
            return self._insert(arith.make_arith_binop(kind, lhs, rhs)).result
        if name in ("min", "max"):
            result = args[0]
            for other in args[1:]:
                lhs, rhs = self._promote(result, other)
                result = self._insert(arith.make_arith_binop(name, lhs, rhs)).result
            return result
        if name == "sign":
            lhs, rhs = self._promote(args[0], args[1])
            zero = self._insert(arith.ConstantOp(0.0 if isinstance(lhs.type, ir_types.FloatType) else 0, lhs.type)).result
            absval = self._insert(math_d.AbsFOp(lhs)).result \
                if isinstance(lhs.type, ir_types.FloatType) \
                else self._insert(math_d.AbsIOp(lhs)).result
            negval = self._insert(arith.NegFOp(absval)).result \
                if isinstance(lhs.type, ir_types.FloatType) \
                else self._insert(arith.SubIOp(zero, absval)).result
            is_neg = self._lower_comparison("<", rhs, zero)
            return self._insert(arith.SelectOp(is_neg, negval, absval)).result
        if name in ("int", "nint", "floor", "ceiling"):
            return self._convert(args[0], ir_types.i32)
        if name in ("real", "float"):
            kind = 4
            if len(expr.args) > 1 and isinstance(expr.args[1], ast.IntLiteral):
                kind = expr.args[1].value
            return self._convert(args[0], ir_types.f64 if kind == 8 else ir_types.f32)
        if name == "dble":
            return self._convert(args[0], ir_types.f64)
        if name in ("epsilon", "huge", "tiny"):
            t = expr.args[0].ftype
            elem = t.element_ir_type()
            values = {"epsilon": 2.220446049250313e-16 if t.kind == 8 else 1.1920929e-07,
                      "huge": 1.7976931348623157e+308 if t.kind == 8 else 3.4028235e+38,
                      "tiny": 2.2250738585072014e-308 if t.kind == 8 else 1.1754944e-38}
            if t.base == "integer":
                return self._insert(arith.ConstantOp(2 ** 31 - 1, elem)).result
            return self._insert(arith.ConstantOp(values[name], elem)).result
        if name in ("aint", "anint"):
            as_int = self._convert(args[0], ir_types.i64)
            return self._convert(as_int, args[0].type)
        if name == "merge":
            cond = self._to_i1(args[2])
            return self._insert(arith.SelectOp(cond, args[0], args[1])).result
        raise LoweringError(f"intrinsic {name} is not supported")

    def _lower_transformational(self, expr: ast.IntrinsicCall) -> Value:
        name = expr.name.lower()
        arrays = [self._lower_expr(a) for a in expr.args]
        elem = expr.args[0].ftype.element_ir_type()
        if name == "sum":
            return self._insert(hlfir.SumOp(arrays[0], elem)).result
        if name == "product":
            return self._insert(hlfir.ProductOp(arrays[0], elem)).result
        if name == "maxval":
            return self._insert(hlfir.MaxvalOp(arrays[0], elem)).result
        if name == "minval":
            return self._insert(hlfir.MinvalOp(arrays[0], elem)).result
        if name == "count":
            return self._insert(hlfir.CountOp(arrays[0], ir_types.i32)).result
        if name == "dot_product":
            return self._insert(hlfir.DotProductOp(arrays[0], arrays[1], elem)).result
        if name == "matmul":
            result_t = hlfir.ExprType(expr.ftype.shape(), elem)
            return self._insert(hlfir.MatmulOp(arrays[0], arrays[1], result_t)).result
        if name == "transpose":
            result_t = hlfir.ExprType(expr.ftype.shape(), elem)
            return self._insert(hlfir.TransposeOp(arrays[0], result_t)).result
        raise LoweringError(f"transformational intrinsic {name} not supported")

    def _lower_size(self, expr: ast.IntrinsicCall) -> Value:
        array_expr = expr.args[0]
        var = self.variables.get(getattr(array_expr, "name", ""))
        dim: Optional[int] = None
        if len(expr.args) > 1 and isinstance(expr.args[1], ast.IntLiteral):
            dim = expr.args[1].value
        if var is not None and var.ftype.has_static_shape and var.ftype.is_array:
            shape = var.ftype.shape()
            value = shape[dim - 1] if dim else int(_product(shape))
            return self._insert(arith.ConstantOp(value, ir_types.i32)).result
        if var is not None and var.extents:
            if dim:
                return self._convert(var.extents[dim - 1], ir_types.i32)
            total = var.extents[0]
            for e in var.extents[1:]:
                total = self._insert(arith.MulIOp(total, e)).result
            return self._convert(total, ir_types.i32)
        # fall back to querying the box descriptor
        base = self._lower_expr(array_expr)
        box = base
        if isinstance(base.type, fir.ReferenceType) and isinstance(base.type.element_type, fir.BoxType):
            box = self._insert(fir.LoadOp(base)).result
        dim_index = self._insert(arith.ConstantOp((dim or 1) - 1, ir_types.index)).result
        dims = self._insert(fir.BoxDimsOp(box, dim_index))
        return self._convert(dims.results[1], ir_types.i32)

    def _lower_allocated(self, expr: ast.IntrinsicCall) -> Value:
        var = self.variables[expr.args[0].name]
        box = self._insert(fir.LoadOp(var.address)).result
        addr = self._insert(fir.BoxAddrOp(box)).result
        as_int = self._insert(fir.ConvertOp(addr, ir_types.i64)).result
        zero = self._insert(arith.ConstantOp(0, ir_types.i64)).result
        return self._insert(arith.CmpIOp("ne", as_int, zero)).result

    def _lower_bound_inquiry(self, expr: ast.IntrinsicCall) -> Value:
        name = expr.name.lower()
        var = self.variables.get(getattr(expr.args[0], "name", ""))
        dim = expr.args[1].value if len(expr.args) > 1 and isinstance(expr.args[1], ast.IntLiteral) else 1
        if var is not None and var.ftype.is_array:
            d = var.ftype.dims[dim - 1]
            if name == "lbound":
                return self._insert(arith.ConstantOp(d.lower or 1, ir_types.i32)).result
            if d.extent is not None and d.lower is not None:
                return self._insert(arith.ConstantOp(d.lower + d.extent - 1,
                                                     ir_types.i32)).result
        # dynamic: ubound = lbound + extent - 1 from the descriptor
        return self._lower_size(ast.IntrinsicCall(name="size", args=expr.args,
                                                  ftype=ftypes.INTEGER))

    # -- type utilities --------------------------------------------------------------
    def _index_constant(self, value: int) -> Value:
        return self._insert(arith.ConstantOp(value, ir_types.index)).result

    def _to_index(self, value: Value) -> Value:
        if isinstance(value.type, ir_types.IndexType):
            return value
        return self._insert(fir.ConvertOp(value, ir_types.index)).result

    def _to_i1(self, value: Value) -> Value:
        if isinstance(value.type, ir_types.IntegerType) and value.type.width == 1:
            return value
        if isinstance(value.type, fir.LogicalType):
            return self._insert(fir.ConvertOp(value, ir_types.i1)).result
        zero = self._insert(arith.ConstantOp(0, value.type)).result
        return self._insert(arith.CmpIOp("ne", value, zero)).result

    def _ensure_float(self, value: Value) -> Value:
        if isinstance(value.type, ir_types.FloatType):
            return value
        return self._convert(value, ir_types.f64)

    def _convert(self, value: Value, target: ir_types.Type) -> Value:
        if value.type == target:
            return value
        return self._insert(fir.ConvertOp(value, target)).result

    def _promote(self, lhs: Value, rhs: Value) -> Tuple[Value, Value]:
        lt, rt = lhs.type, rhs.type
        if lt == rt:
            return lhs, rhs
        lf = isinstance(lt, ir_types.FloatType)
        rf = isinstance(rt, ir_types.FloatType)
        if lf and rf:
            target = lt if lt.width >= rt.width else rt
            return self._convert(lhs, target), self._convert(rhs, target)
        if lf:
            return lhs, self._convert(rhs, lt)
        if rf:
            return self._convert(lhs, rt), rhs
        # both integer-ish
        if isinstance(lt, ir_types.IndexType) or isinstance(rt, ir_types.IndexType):
            return self._convert(lhs, ir_types.index), self._convert(rhs, ir_types.index)
        target = lt if lt.width >= rt.width else rt
        return self._convert(lhs, target), self._convert(rhs, target)


def _product(values) -> int:
    out = 1
    for v in values:
        out *= v
    return out


def lower_to_hlfir(source: str) -> ModuleOp:
    """Front-door helper: Fortran source text -> HLFIR/FIR module."""
    unit = parse_source(source)
    analysis = analyze(unit)
    return FortranLowering(analysis).lower()


def lower_unit(analysis: AnalysisResult) -> ModuleOp:
    return FortranLowering(analysis).lower()


__all__ = ["FortranLowering", "LoweringError", "lower_to_hlfir", "lower_unit",
           "VariableInfo"]
