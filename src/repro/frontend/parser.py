"""Recursive-descent parser for the Fortran 90 subset.

The parser mirrors the statement-level structure Flang's own parser produces:
program units (programs, modules, subroutines, functions), declarations,
structured control flow (if/do/do while), unstructured control flow (goto,
labelled continue), allocate/deallocate, calls, I/O statements (treated as
runtime calls) and OpenMP/OpenACC directives.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast_nodes as ast
from .lexer import LexError, Token, TokenStream, tokenize


class ParseError(Exception):
    pass


# keywords that begin a new statement and therefore terminate a statement list
_BLOCK_ENDERS = {"end", "else", "elseif", "endif", "enddo", "endselect",
                 "contains", "case"}


class Parser:
    def __init__(self, source: str):
        self.ts = TokenStream(tokenize(source))

    # ------------------------------------------------------------------ units
    def parse(self) -> ast.CompilationUnit:
        unit = ast.CompilationUnit()
        self.ts.skip_newlines()
        while not self.ts.at_end():
            if self.ts.at_name("module") and not self.ts.at_name("procedure", 1):
                unit.modules.append(self.parse_module())
            elif self.ts.at_name("program"):
                unit.subprograms.append(self.parse_subprogram("program"))
            elif self.ts.at_name("subroutine"):
                unit.subprograms.append(self.parse_subprogram("subroutine"))
            elif self._at_function_start():
                unit.subprograms.append(self.parse_subprogram("function"))
            else:
                tok = self.ts.peek()
                raise ParseError(f"line {tok.line}: unexpected top-level token {tok.value!r}")
            self.ts.skip_newlines()
        return unit

    def _at_function_start(self) -> bool:
        """function | <typespec> function ..."""
        if self.ts.at_name("function"):
            return True
        for offset in range(6):
            if self.ts.at_name("function", offset):
                return True
            tok = self.ts.peek(offset)
            if tok.kind == "NEWLINE" or tok.kind == "EOF":
                return False
        return False

    def parse_module(self) -> ast.ModuleUnit:
        loc = self.ts.peek().loc
        self.ts.expect("NAME", "module")
        name = self.ts.expect("NAME").value
        self.ts.skip_newlines()
        module = ast.ModuleUnit(name=name, loc=loc)
        # module specification part
        while True:
            self.ts.skip_newlines()
            if self.ts.at_name("contains"):
                self.ts.next()
                self.ts.skip_newlines()
                while not self.ts.at_name("end"):
                    module.subprograms.append(self.parse_any_subprogram())
                    self.ts.skip_newlines()
                break
            if self.ts.at_name("end"):
                break
            if self.ts.at_name("type") and not self.ts.at("OP", "(", 1):
                module.derived_types.append(self.parse_derived_type())
            elif self._at_declaration():
                module.declarations.append(self.parse_declaration())
            else:
                # skip use/implicit/public/private etc.
                self._skip_statement()
        self._consume_end("module", name)
        return module

    def parse_any_subprogram(self) -> ast.Subprogram:
        if self.ts.at_name("subroutine"):
            return self.parse_subprogram("subroutine")
        if self._at_function_start():
            return self.parse_subprogram("function")
        if self.ts.at_name("program"):
            return self.parse_subprogram("program")
        tok = self.ts.peek()
        raise ParseError(f"line {tok.line}: expected a subprogram, found {tok.value!r}")

    def parse_subprogram(self, kind: str) -> ast.Subprogram:
        loc = self.ts.peek().loc
        result_type: Optional[ast.TypeSpec] = None
        if kind == "function" and not self.ts.at_name("function"):
            result_type = self.parse_type_spec()
        self.ts.expect("NAME", kind if kind != "program" else "program") \
            if kind != "function" else self.ts.expect("NAME", "function")
        name = self.ts.expect("NAME").value
        args: List[str] = []
        result_name: Optional[str] = None
        if self.ts.accept("OP", "("):
            while not self.ts.at("OP", ")"):
                args.append(self.ts.expect("NAME").value)
                if not self.ts.accept("OP", ","):
                    break
            self.ts.expect("OP", ")")
        if kind == "function" and self.ts.at_name("result"):
            self.ts.next()
            self.ts.expect("OP", "(")
            result_name = self.ts.expect("NAME").value
            self.ts.expect("OP", ")")
        self.ts.skip_newlines()
        sp = ast.Subprogram(kind=kind, name=name, args=args,
                            result_name=result_name or (name if kind == "function" else None),
                            result_type=result_type, loc=loc)
        # specification part
        while True:
            self.ts.skip_newlines()
            if self.ts.at_name("use") or self.ts.at_name("implicit") or \
               self.ts.at_name("external") or self.ts.at_name("intrinsic") or \
               self.ts.at_name("save") and self.ts.at("NEWLINE", offset=1):
                self._skip_statement()
                continue
            if self.ts.at_name("type") and not self.ts.at("OP", "(", 1):
                sp.derived_types.append(self.parse_derived_type())
                continue
            if self._at_declaration():
                sp.declarations.append(self.parse_declaration())
                continue
            break
        # execution part
        sp.body = self.parse_statements()
        # contains part
        if self.ts.at_name("contains"):
            self.ts.next()
            self.ts.skip_newlines()
            while not self.ts.at_name("end"):
                sp.contains.append(self.parse_any_subprogram())
                self.ts.skip_newlines()
        self._consume_end(kind, name)
        return sp

    def _consume_end(self, kind: str, name: str) -> None:
        self.ts.skip_newlines()
        self.ts.expect("NAME", "end")
        self.ts.accept("NAME", kind)
        self.ts.accept("NAME", name)
        self.ts.accept("NEWLINE")

    # ----------------------------------------------------------- declarations
    _TYPE_NAMES = {"integer", "real", "logical", "character", "complex",
                   "double", "type"}

    def _at_declaration(self) -> bool:
        if not self.ts.at("NAME"):
            return False
        name = self.ts.peek().value
        if name not in self._TYPE_NAMES:
            return False
        if name == "type":
            # "type(name)" is a declaration; "type name" / "type :: name" is a defn
            return self.ts.at("OP", "(", 1)
        # avoid matching assignments to variables named like types (unlikely)
        return True

    def parse_type_spec(self) -> ast.TypeSpec:
        tok = self.ts.expect("NAME")
        name = tok.value
        kind = 0
        derived = None
        char_length = None
        if name == "double":
            self.ts.expect("NAME", "precision")
            return ast.TypeSpec(name="real", kind=8)
        if name == "type":
            self.ts.expect("OP", "(")
            derived = self.ts.expect("NAME").value
            self.ts.expect("OP", ")")
            return ast.TypeSpec(name="type", derived_name=derived)
        if self.ts.accept("OP", "("):
            # kind selector: (8) or (kind=8) or (len=...) for character
            while not self.ts.at("OP", ")"):
                if self.ts.at_name("kind") and self.ts.at("OP", "=", 1):
                    self.ts.next()
                    self.ts.next()
                    kind = int(self.ts.expect("INT").value)
                elif self.ts.at_name("len") and self.ts.at("OP", "=", 1):
                    self.ts.next()
                    self.ts.next()
                    if self.ts.at("INT"):
                        char_length = int(self.ts.next().value)
                    else:
                        self.ts.next()  # len=* or a name
                elif self.ts.at("INT"):
                    kind = int(self.ts.next().value)
                elif self.ts.at("OP", "*"):
                    self.ts.next()
                else:
                    self.ts.next()
                self.ts.accept("OP", ",")
            self.ts.expect("OP", ")")
        elif self.ts.accept("OP", "*"):
            # old-style kind: real*8, integer*4
            kind = int(self.ts.expect("INT").value)
        return ast.TypeSpec(name=name, kind=kind, char_length=char_length)

    def parse_declaration(self) -> ast.Declaration:
        loc = self.ts.peek().loc
        type_spec = self.parse_type_spec()
        attributes: List[str] = []
        intent: Optional[str] = None
        default_dims: List[ast.DimSpec] = []
        while self.ts.accept("OP", ","):
            attr_tok = self.ts.expect("NAME")
            attr = attr_tok.value
            if attr == "dimension":
                self.ts.expect("OP", "(")
                default_dims = self.parse_dim_list()
                self.ts.expect("OP", ")")
                attributes.append("dimension")
            elif attr == "intent":
                self.ts.expect("OP", "(")
                parts = []
                while not self.ts.at("OP", ")"):
                    parts.append(self.ts.next().value)
                self.ts.expect("OP", ")")
                intent = "".join(parts)
            else:
                attributes.append(attr)
        self.ts.accept("OP", "::")
        entities: List[ast.EntityDecl] = []
        while True:
            name = self.ts.expect("NAME").value
            dims: List[ast.DimSpec] = []
            init: Optional[ast.Expr] = None
            if self.ts.accept("OP", "("):
                dims = self.parse_dim_list()
                self.ts.expect("OP", ")")
            if self.ts.accept("OP", "="):
                init = self.parse_expr()
            entities.append(ast.EntityDecl(name=name, dims=dims, init=init))
            if not self.ts.accept("OP", ","):
                break
        self.ts.accept("NEWLINE")
        return ast.Declaration(type_spec=type_spec, entities=entities,
                               attributes=attributes, intent=intent,
                               default_dims=default_dims, loc=loc)

    def parse_dim_list(self) -> List[ast.DimSpec]:
        dims: List[ast.DimSpec] = []
        while not self.ts.at("OP", ")"):
            dims.append(self.parse_dim_spec())
            if not self.ts.accept("OP", ","):
                break
        return dims

    def parse_dim_spec(self) -> ast.DimSpec:
        # ":"              -> deferred/assumed shape
        # "expr"           -> upper bound (lower defaults to 1)
        # "expr : expr"    -> explicit bounds
        # "expr :"         -> assumed size / lower only
        if self.ts.at("OP", ":"):
            self.ts.next()
            return ast.DimSpec(deferred=True)
        if self.ts.at("OP", "*"):
            self.ts.next()
            return ast.DimSpec(assumed=True)
        first = self.parse_expr()
        if self.ts.accept("OP", ":"):
            if self.ts.at("OP", ",") or self.ts.at("OP", ")"):
                return ast.DimSpec(lower=first, assumed=True)
            second = self.parse_expr()
            return ast.DimSpec(lower=first, upper=second)
        return ast.DimSpec(upper=first)

    def parse_derived_type(self) -> ast.DerivedTypeDef:
        loc = self.ts.peek().loc
        self.ts.expect("NAME", "type")
        self.ts.accept("OP", "::")
        name = self.ts.expect("NAME").value
        self.ts.skip_newlines()
        components: List[ast.Declaration] = []
        while not self.ts.at_name("end"):
            if self._at_declaration():
                components.append(self.parse_declaration())
            else:
                self._skip_statement()
            self.ts.skip_newlines()
        self.ts.expect("NAME", "end")
        self.ts.accept("NAME", "type")
        self.ts.accept("NAME", name)
        self.ts.accept("NEWLINE")
        return ast.DerivedTypeDef(name=name, components=components, loc=loc)

    # ------------------------------------------------------------- statements
    def parse_statements(self, terminators: Tuple[str, ...] = ()) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        pending_directives: List[Tuple[str, str]] = []
        while True:
            self.ts.skip_newlines()
            if self.ts.at_end():
                break
            if self.ts.at("DIRECTIVE"):
                text = self.ts.peek().value.lower()
                rest = text.split(" ", 1)[1] if " " in text else ""
                if rest.startswith("end"):
                    # loop-directive terminators are consumed and ignored;
                    # region terminators are left for the enclosing handler.
                    if any(k in rest for k in ("parallel do", "end do", "end loop")):
                        self.ts.next()
                        self.ts.accept("NEWLINE")
                        continue
                    break
                directive = self.ts.next().value
                self.ts.accept("NEWLINE")
                handled = self._handle_directive(directive, stmts, pending_directives)
                if handled is not None:
                    stmts.append(handled)
                continue
            tok = self.ts.peek()
            if tok.kind == "NAME" and tok.value in _BLOCK_ENDERS:
                break
            if tok.kind == "NAME" and tok.value == "contains":
                break
            stmt = self.parse_statement()
            if stmt is None:
                continue
            if pending_directives and isinstance(stmt, ast.DoLoop):
                stmt.directives = [f"{s} {c}".strip() for s, c in pending_directives]
                pending_directives.clear()
            stmts.append(stmt)
        return stmts

    def _handle_directive(self, directive: str, stmts, pending) -> Optional[ast.Stmt]:
        """Dispatch a !$omp / !$acc directive.

        Loop directives are recorded and attached to the next do loop; region
        directives (acc kernels / acc data / omp parallel without do) consume
        statements until the matching end directive and produce a
        DirectiveRegion node.
        """
        text = directive.lower()
        sentinel, _, rest = text.partition(" ")
        rest = rest.strip()
        if rest.startswith("end"):
            return None  # end markers are consumed by the region parser below
        loop_directives = ("parallel do", "do", "loop", "parallel loop")
        if sentinel == "omp" and any(rest.startswith(d) for d in ("parallel do", "do ", "do")):
            pending.append((f"omp {rest.split()[0]} do" if rest.startswith("parallel") else "omp do",
                            rest.partition("do")[2].strip()))
            return None
        if sentinel == "acc" and rest.startswith("loop"):
            pending.append(("acc loop", rest[4:].strip()))
            return None
        # region directives
        region_kind = rest.split("(")[0].split()[0] if rest else ""
        body = self.parse_statements()
        # consume the matching end directive
        self.ts.skip_newlines()
        if self.ts.at("DIRECTIVE"):
            end_text = self.ts.peek().value.lower()
            if end_text.startswith(f"{sentinel} end"):
                self.ts.next()
                self.ts.accept("NEWLINE")
        return ast.DirectiveRegion(directive=f"{sentinel} {region_kind}",
                                   clauses=rest[len(region_kind):].strip(),
                                   body=body)

    def parse_statement(self) -> Optional[ast.Stmt]:
        label: Optional[int] = None
        if self.ts.at("LABEL"):
            label = int(self.ts.next().value)
        tok = self.ts.peek()
        loc = tok.loc
        stmt: Optional[ast.Stmt]
        if tok.kind != "NAME":
            self._skip_statement()
            return None
        kw = tok.value
        if kw == "if":
            stmt = self.parse_if()
        elif kw == "select":
            stmt = self.parse_select()
        elif kw == "do":
            stmt = self.parse_do()
        elif kw == "call":
            stmt = self.parse_call()
        elif kw == "allocate":
            stmt = self.parse_allocate()
        elif kw == "deallocate":
            stmt = self.parse_deallocate()
        elif kw == "exit":
            self.ts.next()
            self.ts.accept("NAME")
            stmt = ast.ExitStmt()
        elif kw == "cycle":
            self.ts.next()
            self.ts.accept("NAME")
            stmt = ast.CycleStmt()
        elif kw == "goto":
            self.ts.next()
            stmt = ast.GotoStmt(target_label=int(self.ts.expect("INT").value))
        elif kw == "go" and self.ts.at_name("to", 1):
            self.ts.next()
            self.ts.next()
            stmt = ast.GotoStmt(target_label=int(self.ts.expect("INT").value))
        elif kw == "continue":
            self.ts.next()
            stmt = ast.ContinueStmt()
        elif kw == "return":
            self.ts.next()
            stmt = ast.ReturnStmt()
        elif kw == "stop":
            self.ts.next()
            code = None
            if not self.ts.at("NEWLINE"):
                code = self.parse_expr()
            stmt = ast.StopStmt(code=code)
        elif kw in ("print", "write", "read"):
            stmt = self.parse_io(kw)
        elif kw == "where":
            # treat single-line where(mask) assignment as a guarded assignment
            stmt = self.parse_where()
        elif kw == "nullify":
            self._skip_statement()
            return None
        else:
            stmt = self.parse_assignment_or_call()
        if stmt is not None:
            stmt.loc = loc
            stmt.label = label
        self.ts.accept("NEWLINE")
        return stmt

    def parse_if(self) -> ast.Stmt:
        self.ts.expect("NAME", "if")
        self.ts.expect("OP", "(")
        condition = self.parse_expr()
        self.ts.expect("OP", ")")
        if self.ts.at_name("then"):
            self.ts.next()
            self.ts.accept("NEWLINE")
            node = ast.IfBlock(conditions=[condition], bodies=[self.parse_statements()])
            while True:
                self.ts.skip_newlines()
                if self.ts.at_name("elseif") or (self.ts.at_name("else") and self.ts.at_name("if", 1)):
                    if self.ts.at_name("elseif"):
                        self.ts.next()
                    else:
                        self.ts.next()
                        self.ts.next()
                    self.ts.expect("OP", "(")
                    cond = self.parse_expr()
                    self.ts.expect("OP", ")")
                    self.ts.accept("NAME", "then")
                    self.ts.accept("NEWLINE")
                    node.conditions.append(cond)
                    node.bodies.append(self.parse_statements())
                elif self.ts.at_name("else"):
                    self.ts.next()
                    self.ts.accept("NEWLINE")
                    node.else_body = self.parse_statements()
                else:
                    break
            self.ts.skip_newlines()
            if self.ts.at_name("endif"):
                self.ts.next()
            else:
                self.ts.expect("NAME", "end")
                self.ts.accept("NAME", "if")
            return node
        # single statement if
        inner = self.parse_statement()
        return ast.IfBlock(conditions=[condition],
                           bodies=[[inner] if inner is not None else []])

    def parse_select(self) -> ast.Stmt:
        """``select case (expr)`` with value and range cases plus a default."""
        self.ts.expect("NAME", "select")
        self.ts.expect("NAME", "case")
        self.ts.expect("OP", "(")
        selector = self.parse_expr()
        self.ts.expect("OP", ")")
        self.ts.accept("NEWLINE")
        node = ast.SelectCase(selector=selector)
        while True:
            self.ts.skip_newlines()
            if self.ts.at_name("case"):
                self.ts.next()
                if self.ts.at_name("default"):
                    self.ts.next()
                    self.ts.accept("NEWLINE")
                    node.default_body = self.parse_statements()
                    continue
                self.ts.expect("OP", "(")
                items: List[ast.CaseRange] = []
                while not self.ts.at("OP", ")"):
                    items.append(self._parse_case_item())
                    if not self.ts.accept("OP", ","):
                        break
                self.ts.expect("OP", ")")
                self.ts.accept("NEWLINE")
                node.cases.append(ast.CaseBlock(items=items,
                                                body=self.parse_statements()))
            elif self.ts.at_name("endselect"):
                self.ts.next()
                break
            elif self.ts.at_name("end"):
                self.ts.next()
                self.ts.accept("NAME", "select")
                break
            else:
                tok = self.ts.peek()
                raise ParseError(
                    f"line {tok.line}: expected 'case' or 'end select', "
                    f"found {tok.value!r}")
        return node

    def _parse_case_item(self) -> ast.CaseRange:
        if self.ts.accept("OP", ":"):
            return ast.CaseRange(upper=self.parse_expr(), is_range=True)
        value = self.parse_expr()
        if self.ts.accept("OP", ":"):
            if self.ts.at("OP", ")") or self.ts.at("OP", ","):
                return ast.CaseRange(lower=value, is_range=True)
            return ast.CaseRange(lower=value, upper=self.parse_expr(),
                                 is_range=True)
        return ast.CaseRange(lower=value, upper=value)

    def parse_do(self) -> ast.Stmt:
        self.ts.expect("NAME", "do")
        if self.ts.at_name("while"):
            self.ts.next()
            self.ts.expect("OP", "(")
            condition = self.parse_expr()
            self.ts.expect("OP", ")")
            self.ts.accept("NEWLINE")
            body = self.parse_statements()
            self._consume_end_do()
            return ast.DoWhile(condition=condition, body=body)
        # counted do:  do [label] var = start, end [, step]
        end_label: Optional[int] = None
        if self.ts.at("INT"):
            end_label = int(self.ts.next().value)
        var = self.ts.expect("NAME").value
        self.ts.expect("OP", "=")
        start = self.parse_expr()
        self.ts.expect("OP", ",")
        end = self.parse_expr()
        step = None
        if self.ts.accept("OP", ","):
            step = self.parse_expr()
        self.ts.accept("NEWLINE")
        body = self.parse_statements()
        if end_label is not None:
            # labelled do terminates at "<label> continue"
            self.ts.skip_newlines()
            if body and isinstance(body[-1], ast.ContinueStmt):
                pass
        self._consume_end_do(optional=end_label is not None)
        return ast.DoLoop(var=var, start=start, end=end, step=step, body=body)

    def _consume_end_do(self, optional: bool = False) -> None:
        self.ts.skip_newlines()
        if self.ts.at_name("enddo"):
            self.ts.next()
            return
        if self.ts.at_name("end") and self.ts.at_name("do", 1):
            self.ts.next()
            self.ts.next()
            return
        if not optional:
            tok = self.ts.peek()
            raise ParseError(f"line {tok.line}: expected 'end do', found {tok.value!r}")

    def parse_call(self) -> ast.Stmt:
        self.ts.expect("NAME", "call")
        name = self.ts.expect("NAME").value
        args: List[ast.Expr] = []
        if self.ts.accept("OP", "("):
            while not self.ts.at("OP", ")"):
                args.append(self.parse_expr())
                if not self.ts.accept("OP", ","):
                    break
            self.ts.expect("OP", ")")
        return ast.CallStmt(name=name, args=args)

    def parse_allocate(self) -> ast.Stmt:
        self.ts.expect("NAME", "allocate")
        self.ts.expect("OP", "(")
        allocations: List[Tuple[str, List[ast.Expr]]] = []
        while not self.ts.at("OP", ")"):
            if self.ts.at_name("stat") and self.ts.at("OP", "=", 1):
                self.ts.next(); self.ts.next(); self.parse_expr()
            else:
                name = self.ts.expect("NAME").value
                dims: List[ast.Expr] = []
                if self.ts.accept("OP", "("):
                    while not self.ts.at("OP", ")"):
                        dims.append(self.parse_expr())
                        if not self.ts.accept("OP", ","):
                            break
                    self.ts.expect("OP", ")")
                allocations.append((name, dims))
            if not self.ts.accept("OP", ","):
                break
        self.ts.expect("OP", ")")
        return ast.AllocateStmt(allocations=allocations)

    def parse_deallocate(self) -> ast.Stmt:
        self.ts.expect("NAME", "deallocate")
        self.ts.expect("OP", "(")
        names: List[str] = []
        while not self.ts.at("OP", ")"):
            if self.ts.at_name("stat") and self.ts.at("OP", "=", 1):
                self.ts.next(); self.ts.next(); self.parse_expr()
            else:
                names.append(self.ts.expect("NAME").value)
            if not self.ts.accept("OP", ","):
                break
        self.ts.expect("OP", ")")
        return ast.DeallocateStmt(names=names)

    def parse_io(self, kw: str) -> ast.Stmt:
        self.ts.next()
        if kw == "print":
            self.ts.accept("OP", "*")
            self.ts.accept("STRING")
            self.ts.accept("OP", ",")
        else:
            # write(...) / read(...) control list
            if self.ts.accept("OP", "("):
                depth = 1
                while depth:
                    tok = self.ts.next()
                    if tok.kind == "OP" and tok.value == "(":
                        depth += 1
                    elif tok.kind == "OP" and tok.value == ")":
                        depth -= 1
        items: List[ast.Expr] = []
        while not self.ts.at("NEWLINE") and not self.ts.at_end():
            items.append(self.parse_expr())
            if not self.ts.accept("OP", ","):
                break
        return ast.PrintStmt(items=items)

    def parse_where(self) -> ast.Stmt:
        """Single-statement WHERE: ``where (mask) a = b`` lowered as a guarded
        assignment (block WHERE constructs are outside the supported subset)."""
        self.ts.expect("NAME", "where")
        self.ts.expect("OP", "(")
        mask = self.parse_expr()
        self.ts.expect("OP", ")")
        assign = self.parse_assignment_or_call()
        return ast.IfBlock(conditions=[mask], bodies=[[assign]])

    def parse_assignment_or_call(self) -> ast.Stmt:
        target = self.parse_primary(allow_call=True)
        if self.ts.accept("OP", "=>"):
            value = self.parse_expr()
            return ast.PointerAssignment(target=target, value=value)
        if self.ts.accept("OP", "="):
            value = self.parse_expr()
            return ast.Assignment(target=target, value=value)
        # a bare procedure reference without CALL is not standard; treat a
        # lone primary as a no-op call statement
        if isinstance(target, ast.CallOrIndex):
            return ast.CallStmt(name=target.name, args=target.args)
        tok = self.ts.peek()
        raise ParseError(f"line {tok.line}: expected '=' in statement")

    def _skip_statement(self) -> None:
        while not self.ts.at("NEWLINE") and not self.ts.at_end():
            self.ts.next()
        self.ts.accept("NEWLINE")

    # ------------------------------------------------------------- expressions
    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        lhs = self.parse_and()
        while self.ts.at("OP", ".or.") or self.ts.at("OP", ".eqv.") or self.ts.at("OP", ".neqv."):
            op = self.ts.next().value
            rhs = self.parse_and()
            lhs = ast.BinaryOp(op=op, lhs=lhs, rhs=rhs)
        return lhs

    def parse_and(self) -> ast.Expr:
        lhs = self.parse_not()
        while self.ts.at("OP", ".and."):
            self.ts.next()
            rhs = self.parse_not()
            lhs = ast.BinaryOp(op=".and.", lhs=lhs, rhs=rhs)
        return lhs

    def parse_not(self) -> ast.Expr:
        if self.ts.at("OP", ".not."):
            self.ts.next()
            return ast.UnaryOp(op=".not.", operand=self.parse_not())
        return self.parse_comparison()

    _REL_OPS = {"==": "==", "/=": "/=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
                ".eq.": "==", ".ne.": "/=", ".lt.": "<", ".le.": "<=",
                ".gt.": ">", ".ge.": ">="}

    def parse_comparison(self) -> ast.Expr:
        lhs = self.parse_additive()
        while self.ts.at("OP") and self.ts.peek().value in self._REL_OPS:
            op = self._REL_OPS[self.ts.next().value]
            rhs = self.parse_additive()
            lhs = ast.BinaryOp(op=op, lhs=lhs, rhs=rhs)
        return lhs

    def parse_additive(self) -> ast.Expr:
        lhs = self.parse_multiplicative()
        while self.ts.at("OP", "+") or self.ts.at("OP", "-") or self.ts.at("OP", "//"):
            op = self.ts.next().value
            rhs = self.parse_multiplicative()
            lhs = ast.BinaryOp(op=op, lhs=lhs, rhs=rhs)
        return lhs

    def parse_multiplicative(self) -> ast.Expr:
        lhs = self.parse_unary()
        while self.ts.at("OP", "*") or self.ts.at("OP", "/"):
            op = self.ts.next().value
            rhs = self.parse_unary()
            lhs = ast.BinaryOp(op=op, lhs=lhs, rhs=rhs)
        return lhs

    def parse_unary(self) -> ast.Expr:
        if self.ts.at("OP", "-"):
            self.ts.next()
            return ast.UnaryOp(op="-", operand=self.parse_unary())
        if self.ts.at("OP", "+"):
            self.ts.next()
            return self.parse_unary()
        return self.parse_power()

    def parse_power(self) -> ast.Expr:
        base = self.parse_primary()
        if self.ts.at("OP", "**"):
            self.ts.next()
            exponent = self.parse_unary()   # right-associative
            return ast.BinaryOp(op="**", lhs=base, rhs=exponent)
        return base

    _LOGICAL_LITERALS = {".true.": True, ".false.": False}

    def parse_primary(self, allow_call: bool = False) -> ast.Expr:
        tok = self.ts.peek()
        loc = tok.loc
        if tok.kind == "INT":
            self.ts.next()
            text = tok.value.split("_")[0]
            node: ast.Expr = ast.IntLiteral(value=int(text))
        elif tok.kind == "REAL":
            self.ts.next()
            text = tok.value.split("_")[0].lower().replace("d", "e").replace("q", "e")
            kind = 8 if ("d" in tok.value.lower() or "_8" in tok.value) else 4
            node = ast.RealLiteral(value=float(text), kind=kind)
        elif tok.kind == "STRING":
            self.ts.next()
            node = ast.CharLiteral(value=tok.value)
        elif tok.kind == "OP" and tok.value in self._LOGICAL_LITERALS:
            self.ts.next()
            node = ast.LogicalLiteral(value=self._LOGICAL_LITERALS[tok.value])
        elif tok.kind == "OP" and tok.value == "(":
            self.ts.next()
            node = self.parse_expr()
            self.ts.expect("OP", ")")
        elif tok.kind == "NAME":
            self.ts.next()
            name = tok.value
            if self.ts.at("OP", "("):
                self.ts.next()
                args: List[ast.Expr] = []
                while not self.ts.at("OP", ")"):
                    args.append(self.parse_subscript())
                    if not self.ts.accept("OP", ","):
                        break
                self.ts.expect("OP", ")")
                node = ast.CallOrIndex(name=name, args=args)
            else:
                node = ast.Identifier(name=name)
        else:
            raise ParseError(f"line {tok.line}: unexpected token {tok.value!r} in expression")
        node.loc = loc
        # component references: a%b%c, possibly with subscripts
        while self.ts.at("OP", "%"):
            self.ts.next()
            comp = self.ts.expect("NAME").value
            if self.ts.at("OP", "("):
                # indexed component access (a%b(i)) is outside the supported
                # subset; the benchmarks use scalar / whole-array components.
                raise ParseError(
                    f"line {loc.line}: indexed derived-type component access "
                    f"'{comp}(...)' is not supported")
            node = ast.ComponentRef(base=node, component=comp)
            node.loc = loc
        return node

    def parse_subscript(self) -> ast.Expr:
        """A subscript: an expression or a section triplet ``lo:hi[:stride]``."""
        if self.ts.at("OP", ":"):
            self.ts.next()
            upper = None
            if not (self.ts.at("OP", ",") or self.ts.at("OP", ")")):
                upper = self.parse_expr()
            return ast.SliceTriplet(lower=None, upper=upper)
        expr = self.parse_expr()
        if self.ts.accept("OP", ":"):
            upper = None
            stride = None
            if not (self.ts.at("OP", ",") or self.ts.at("OP", ")") or self.ts.at("OP", ":")):
                upper = self.parse_expr()
            if self.ts.accept("OP", ":"):
                stride = self.parse_expr()
            return ast.SliceTriplet(lower=expr, upper=upper, stride=stride)
        return expr


def parse_source(source: str) -> ast.CompilationUnit:
    """Parse Fortran source text into a compilation unit."""
    return Parser(source).parse()


__all__ = ["Parser", "ParseError", "parse_source"]
