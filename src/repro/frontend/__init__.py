"""Fortran frontend: lexer, parser, semantic analysis and HLFIR/FIR lowering.

This package plays the role of Flang's frontend stages (Figure 1 of the
paper): parsing Fortran source, building symbol tables and lowering to the
HLFIR + FIR dialects mixed with a handful of standard MLIR dialects.
"""

from .ast_nodes import CompilationUnit
from .lexer import LexError, Token, tokenize
from .lowering import FortranLowering, LoweringError, lower_to_hlfir, lower_unit
from .parser import ParseError, Parser, parse_source
from .semantics import (AnalysisResult, SemanticAnalyzer, SemanticError,
                        Symbol, SymbolTable, analyze)
from . import ast_nodes, ftypes, intrinsics

__all__ = [
    "CompilationUnit", "LexError", "Token", "tokenize", "FortranLowering",
    "LoweringError", "lower_to_hlfir", "lower_unit", "ParseError", "Parser",
    "parse_source", "AnalysisResult", "SemanticAnalyzer", "SemanticError",
    "Symbol", "SymbolTable", "analyze", "ast_nodes", "ftypes", "intrinsics",
]
