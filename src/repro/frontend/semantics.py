"""Semantic analysis: symbol tables, name resolution and expression typing.

The analyser resolves every ``CallOrIndex`` into an array reference,
intrinsic call or function call, annotates every expression with its resolved
:class:`~repro.frontend.ftypes.FType`, and records per-subprogram symbol
tables used by the HLFIR/FIR lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import ast_nodes as ast
from . import ftypes, intrinsics
from .ftypes import ArrayDim, FType


class SemanticError(Exception):
    pass


@dataclass
class Symbol:
    name: str
    ftype: FType
    is_argument: bool = False
    intent: Optional[str] = None
    is_parameter: bool = False
    parameter_value: Optional[object] = None
    is_function_result: bool = False
    is_global: bool = False
    #: dimension bound expressions that could not be folded to constants
    dynamic_bounds: List[Tuple[Optional[ast.Expr], Optional[ast.Expr]]] = field(
        default_factory=list)


@dataclass
class DerivedType:
    name: str
    components: List[Tuple[str, FType]]

    def component_type(self, name: str) -> FType:
        for comp, t in self.components:
            if comp == name:
                return t
        raise SemanticError(f"derived type {self.name} has no component {name}")


class SymbolTable:
    def __init__(self, parent: Optional["SymbolTable"] = None):
        self.symbols: Dict[str, Symbol] = {}
        self.parent = parent

    def define(self, symbol: Symbol) -> Symbol:
        self.symbols[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        if name in self.symbols:
            return self.symbols[name]
        if self.parent is not None:
            return self.parent.lookup(name)
        return None

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def values(self):
        return self.symbols.values()


@dataclass
class SubprogramInfo:
    """Analysis results for one subprogram."""

    subprogram: ast.Subprogram
    symbols: SymbolTable
    result_symbol: Optional[Symbol] = None


@dataclass
class AnalysisResult:
    unit: ast.CompilationUnit
    subprograms: Dict[str, SubprogramInfo] = field(default_factory=dict)
    derived_types: Dict[str, DerivedType] = field(default_factory=dict)
    globals: SymbolTable = field(default_factory=SymbolTable)

    def info(self, name: str) -> SubprogramInfo:
        return self.subprograms[name]


class SemanticAnalyzer:
    def __init__(self, unit: ast.CompilationUnit):
        self.unit = unit
        self.result = AnalysisResult(unit=unit)
        #: function name -> result FType, for typing calls
        self.function_results: Dict[str, FType] = {}

    # -------------------------------------------------------------- driver
    def analyze(self) -> AnalysisResult:
        # module-level declarations become globals; derived types are global
        for module in self.unit.modules:
            for dt in module.derived_types:
                self._register_derived_type(dt)
            for decl in module.declarations:
                for sym in self._declaration_symbols(decl, is_argument=False):
                    sym.is_global = True
                    self.result.globals.define(sym)
        # first pass: function result types so calls can be typed
        for sp in self.unit.all_subprograms():
            for dt in sp.derived_types:
                self._register_derived_type(dt)
            if sp.kind == "function":
                self.function_results[sp.name] = self._function_result_type(sp)
        # second pass: per-subprogram analysis
        for sp in self.unit.all_subprograms():
            self.result.subprograms[sp.name] = self._analyze_subprogram(sp)
        return self.result

    # ---------------------------------------------------------- declarations
    def _register_derived_type(self, dt: ast.DerivedTypeDef) -> None:
        components: List[Tuple[str, FType]] = []
        for decl in dt.components:
            base = self._base_ftype(decl.type_spec)
            for entity in decl.entities:
                dims = self._resolve_dims(entity.dims or decl.default_dims, None)
                components.append((entity.name, base.with_dims(dims)))
        self.result.derived_types[dt.name] = DerivedType(dt.name, components)

    def _base_ftype(self, spec: ast.TypeSpec) -> FType:
        if spec.name == "integer":
            return FType(base="integer", kind=spec.kind or 4)
        if spec.name == "real":
            return FType(base="real", kind=spec.kind or 4)
        if spec.name == "logical":
            return FType(base="logical", kind=spec.kind or 4)
        if spec.name == "character":
            return FType(base="character", kind=1, char_length=spec.char_length)
        if spec.name == "complex":
            # complex is outside the evaluated subset; treat as a 2-element real
            return FType(base="real", kind=spec.kind or 4)
        if spec.name == "type":
            return FType(base="derived", derived_name=spec.derived_name)
        raise SemanticError(f"unsupported type spec {spec.name}")

    def _function_result_type(self, sp: ast.Subprogram) -> FType:
        if sp.result_type is not None:
            return self._base_ftype(sp.result_type)
        result_name = sp.result_name or sp.name
        for decl in sp.declarations:
            for entity in decl.entities:
                if entity.name == result_name:
                    base = self._base_ftype(decl.type_spec)
                    dims = self._resolve_dims(entity.dims or decl.default_dims, None)
                    return base.with_dims(dims)
        return self._implicit_type(result_name)

    @staticmethod
    def _implicit_type(name: str) -> FType:
        """Default implicit typing: i-n integer, otherwise real."""
        return ftypes.INTEGER if name[0] in "ijklmn" else ftypes.REAL

    def _declaration_symbols(self, decl: ast.Declaration,
                             is_argument: bool,
                             symbols: Optional[SymbolTable] = None) -> List[Symbol]:
        base = self._base_ftype(decl.type_spec)
        allocatable = "allocatable" in decl.attributes
        pointer = "pointer" in decl.attributes
        parameter = "parameter" in decl.attributes
        out: List[Symbol] = []
        for entity in decl.entities:
            dim_specs = entity.dims or decl.default_dims
            dims = self._resolve_dims(dim_specs, symbols)
            ft = FType(base=base.base, kind=base.kind, dims=dims,
                       allocatable=allocatable, pointer=pointer,
                       parameter=parameter, derived_name=base.derived_name,
                       char_length=entity.char_length or base.char_length)
            sym = Symbol(name=entity.name, ftype=ft, is_argument=is_argument,
                         intent=decl.intent, is_parameter=parameter)
            if parameter and entity.init is not None:
                sym.parameter_value = self._fold_constant(entity.init, symbols)
            sym.dynamic_bounds = [
                (d.lower, d.upper) for d in dim_specs
            ]
            out.append(sym)
        return out

    def _resolve_dims(self, dim_specs: List[ast.DimSpec],
                      symbols: Optional[SymbolTable]) -> Tuple[ArrayDim, ...]:
        dims: List[ArrayDim] = []
        for d in dim_specs:
            if d.deferred or d.assumed:
                dims.append(ArrayDim(lower=1 if not d.deferred else None, extent=None))
                continue
            lower = 1
            if d.lower is not None:
                folded = self._fold_constant(d.lower, symbols)
                lower = folded if isinstance(folded, int) else None
            extent = None
            if d.upper is not None:
                upper = self._fold_constant(d.upper, symbols)
                if isinstance(upper, int) and isinstance(lower, int):
                    extent = upper - lower + 1
            dims.append(ArrayDim(lower=lower, extent=extent))
        return tuple(dims)

    def _fold_constant(self, expr: ast.Expr, symbols: Optional[SymbolTable]):
        """Best-effort constant folding of specification expressions."""
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.RealLiteral):
            return expr.value
        if isinstance(expr, ast.LogicalLiteral):
            return expr.value
        if isinstance(expr, ast.UnaryOp):
            val = self._fold_constant(expr.operand, symbols)
            if val is None:
                return None
            return -val if expr.op == "-" else val
        if isinstance(expr, ast.BinaryOp):
            lhs = self._fold_constant(expr.lhs, symbols)
            rhs = self._fold_constant(expr.rhs, symbols)
            if lhs is None or rhs is None:
                return None
            try:
                if expr.op == "+":
                    return lhs + rhs
                if expr.op == "-":
                    return lhs - rhs
                if expr.op == "*":
                    return lhs * rhs
                if expr.op == "/":
                    return lhs // rhs if isinstance(lhs, int) and isinstance(rhs, int) else lhs / rhs
                if expr.op == "**":
                    return lhs ** rhs
            except (ZeroDivisionError, OverflowError):
                return None
            return None
        if isinstance(expr, ast.Identifier):
            table = symbols or self.result.globals
            sym = table.lookup(expr.name) if table else None
            if sym is None:
                sym = self.result.globals.lookup(expr.name)
            if sym is not None and sym.is_parameter:
                return sym.parameter_value
            return None
        return None

    # ------------------------------------------------------------ subprograms
    def _analyze_subprogram(self, sp: ast.Subprogram) -> SubprogramInfo:
        symbols = SymbolTable(parent=self.result.globals)
        # declared entities
        for decl in sp.declarations:
            is_arg_decl = any(e.name in sp.args for e in decl.entities)
            for sym in self._declaration_symbols(decl, is_arg_decl, symbols):
                sym.is_argument = sym.name in sp.args
                symbols.define(sym)
        # undeclared dummy arguments get implicit types
        for arg in sp.args:
            if symbols.lookup(arg) is None:
                symbols.define(Symbol(name=arg, ftype=self._implicit_type(arg),
                                      is_argument=True))
        result_symbol = None
        if sp.kind == "function":
            result_name = sp.result_name or sp.name
            result_symbol = symbols.lookup(result_name)
            if result_symbol is None:
                result_symbol = symbols.define(
                    Symbol(name=result_name,
                           ftype=self.function_results.get(sp.name, ftypes.REAL)))
            result_symbol.is_function_result = True
        info = SubprogramInfo(subprogram=sp, symbols=symbols,
                              result_symbol=result_symbol)
        self._desugar_exits(sp.body, symbols)
        self._analyze_statements(sp.body, symbols)
        return info

    # ------------------------------------------------------- EXIT desugaring
    def _desugar_exits(self, stmts: List[ast.Stmt], symbols: SymbolTable) -> None:
        """Rewrite loops containing EXIT into flag-guarded loops.

        ``exit`` sets an integer flag to 0; every statement that could
        execute after the exit point is wrapped in ``if (flag == 1)`` and a
        counted loop's whole body is guarded so remaining iterations are
        no-ops (a do-while additionally folds the flag into its condition).
        This gives exact Fortran EXIT semantics through the ordinary
        if/loop lowering, shared by every compilation flow.
        """
        index = 0
        while index < len(stmts):
            stmt = stmts[index]
            if isinstance(stmt, (ast.DoLoop, ast.DoWhile)):
                self._desugar_exits(stmt.body, symbols)
                if self._has_exit(stmt.body):
                    index += self._rewrite_exit_loop(stmts, index, stmt,
                                                     symbols)
                    continue
            elif isinstance(stmt, ast.IfBlock):
                for body in stmt.bodies:
                    self._desugar_exits(body, symbols)
                self._desugar_exits(stmt.else_body, symbols)
            elif isinstance(stmt, ast.SelectCase):
                for case in stmt.cases:
                    self._desugar_exits(case.body, symbols)
                self._desugar_exits(stmt.default_body, symbols)
            elif isinstance(stmt, ast.DirectiveRegion):
                self._desugar_exits(stmt.body, symbols)
            index += 1

    def _rewrite_exit_loop(self, stmts: List[ast.Stmt], index: int, stmt,
                           symbols: SymbolTable) -> int:
        """Flag-guard one loop containing EXIT; returns how many statements
        the caller must now skip (the loop plus everything inserted)."""
        flag = self._fresh_int(symbols, "iexit")
        on_exit: List[ast.Stmt] = []
        restore: Optional[ast.Stmt] = None
        if isinstance(stmt, ast.DoLoop):
            # F2018 11.1.7.4.3: the do-variable keeps its value at the
            # moment of EXIT — snapshot it when the exit fires, restore it
            # after the loop (the guarded remaining iterations still step it)
            save = self._fresh_int(symbols, "isave")
            on_exit.append(ast.Assignment(target=ast.Identifier(name=save),
                                          value=ast.Identifier(name=stmt.var)))
        stmt.body[:] = self._guard_exits(stmt.body, flag, on_exit=on_exit)
        if isinstance(stmt, ast.DoLoop):
            stmt.body[:] = [ast.IfBlock(conditions=[self._flag_live(flag)],
                                        bodies=[list(stmt.body)])]
            restore = ast.IfBlock(
                conditions=[ast.BinaryOp(op="==",
                                         lhs=ast.Identifier(name=flag),
                                         rhs=ast.IntLiteral(value=0))],
                bodies=[[ast.Assignment(target=ast.Identifier(name=stmt.var),
                                        value=ast.Identifier(name=save))]])
        else:
            stmt.condition = ast.BinaryOp(op=".and.", lhs=stmt.condition,
                                          rhs=self._flag_live(flag))
        stmts.insert(index, ast.Assignment(target=ast.Identifier(name=flag),
                                           value=ast.IntLiteral(value=1)))
        if restore is not None:
            stmts.insert(index + 2, restore)
            return 3   # flag init, the loop, the do-variable restore
        return 2       # flag init, the loop

    def _fresh_int(self, symbols: SymbolTable, prefix: str) -> str:
        """A fresh implicitly-integer helper variable (prefix starts i-n)."""
        counter = 0
        while symbols.lookup(f"{prefix}{counter}") is not None:
            counter += 1
        name = f"{prefix}{counter}"
        symbols.define(Symbol(name=name, ftype=ftypes.INTEGER))
        return name

    @staticmethod
    def _flag_live(flag: str) -> ast.Expr:
        return ast.BinaryOp(op="==", lhs=ast.Identifier(name=flag),
                            rhs=ast.IntLiteral(value=1))

    @classmethod
    def _has_exit(cls, stmts: List[ast.Stmt]) -> bool:
        """EXIT at this loop's level (nested loops consume their own exits)."""
        for stmt in stmts:
            if isinstance(stmt, ast.ExitStmt):
                return True
            if isinstance(stmt, ast.IfBlock):
                if any(cls._has_exit(b) for b in stmt.bodies) or \
                        cls._has_exit(stmt.else_body):
                    return True
            elif isinstance(stmt, ast.SelectCase):
                if any(cls._has_exit(c.body) for c in stmt.cases) or \
                        cls._has_exit(stmt.default_body):
                    return True
            elif isinstance(stmt, ast.DirectiveRegion):
                if cls._has_exit(stmt.body):
                    return True
        return False

    @classmethod
    def _guard_exits(cls, stmts: List[ast.Stmt], flag: str, *,
                     on_exit: List[ast.Stmt] = ()) -> List[ast.Stmt]:
        """Replace EXITs with ``flag = 0`` (plus the ``on_exit`` snapshot
        statements) and guard everything downstream of a possible exit."""
        import copy

        def exit_replacement() -> List[ast.Stmt]:
            return [ast.Assignment(target=ast.Identifier(name=flag),
                                   value=ast.IntLiteral(value=0)),
                    *copy.deepcopy(list(on_exit))]

        out: List[ast.Stmt] = []
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, ast.ExitStmt):
                out.extend(exit_replacement())
                return out  # statements after an unconditional EXIT are dead
            contains = False
            if isinstance(stmt, ast.IfBlock):
                contains = any(cls._has_exit(b) for b in stmt.bodies) or \
                    cls._has_exit(stmt.else_body)
                if contains:
                    stmt.bodies = [cls._guard_exits(b, flag, on_exit=on_exit)
                                   for b in stmt.bodies]
                    stmt.else_body = cls._guard_exits(stmt.else_body, flag,
                                                      on_exit=on_exit)
            elif isinstance(stmt, ast.SelectCase):
                contains = any(cls._has_exit(c.body) for c in stmt.cases) or \
                    cls._has_exit(stmt.default_body)
                if contains:
                    for case in stmt.cases:
                        case.body = cls._guard_exits(case.body, flag,
                                                     on_exit=on_exit)
                    stmt.default_body = cls._guard_exits(stmt.default_body,
                                                         flag,
                                                         on_exit=on_exit)
            elif isinstance(stmt, ast.DirectiveRegion):
                contains = cls._has_exit(stmt.body)
                if contains:
                    stmt.body = cls._guard_exits(stmt.body, flag,
                                                 on_exit=on_exit)
            out.append(stmt)
            if contains:
                rest = cls._guard_exits(list(stmts[index + 1:]), flag,
                                        on_exit=on_exit)
                if rest:
                    out.append(ast.IfBlock(conditions=[cls._flag_live(flag)],
                                           bodies=[rest]))
                return out
        return out

    def _analyze_statements(self, stmts: List[ast.Stmt], symbols: SymbolTable) -> None:
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, ast.SelectCase):
                stmts[i] = stmt = self._desugar_select(stmt)
            self._analyze_statement(stmt, symbols)

    def _desugar_select(self, stmt: ast.SelectCase) -> ast.IfBlock:
        """Rewrite SELECT CASE into the equivalent IF/ELSE IF chain.

        Each case's value list becomes a disjunction of equality / range
        tests against (a fresh copy of) the selector expression, so every
        compilation flow supports the construct through the ordinary IfBlock
        lowering.
        """
        import copy

        def selector() -> ast.Expr:
            return copy.deepcopy(stmt.selector)

        def item_condition(item: ast.CaseRange) -> ast.Expr:
            if not item.is_range:
                return ast.BinaryOp(op="==", lhs=selector(), rhs=item.lower)
            if item.lower is not None and item.upper is not None:
                return ast.BinaryOp(
                    op=".and.",
                    lhs=ast.BinaryOp(op=">=", lhs=selector(), rhs=item.lower),
                    rhs=ast.BinaryOp(op="<=", lhs=selector(), rhs=item.upper))
            if item.lower is not None:
                return ast.BinaryOp(op=">=", lhs=selector(), rhs=item.lower)
            return ast.BinaryOp(op="<=", lhs=selector(), rhs=item.upper)

        node = ast.IfBlock(loc=stmt.loc, label=stmt.label)
        for case in stmt.cases:
            condition: Optional[ast.Expr] = None
            for item in case.items:
                test = item_condition(item)
                condition = test if condition is None else \
                    ast.BinaryOp(op=".or.", lhs=condition, rhs=test)
            if condition is None:     # `case ()` — can never be selected
                condition = ast.LogicalLiteral(value=False)
            node.conditions.append(condition)
            node.bodies.append(case.body)
        node.else_body = stmt.default_body
        if not node.conditions:
            # degenerate select with only a default: guard with .true.
            node.conditions.append(ast.LogicalLiteral(value=True))
            node.bodies.append(node.else_body)
            node.else_body = []
        return node

    def _analyze_statement(self, stmt: ast.Stmt, symbols: SymbolTable) -> None:
        if isinstance(stmt, (ast.Assignment, ast.PointerAssignment)):
            stmt.target = self._resolve_expr(stmt.target, symbols)
            stmt.value = self._resolve_expr(stmt.value, symbols)
            self._define_implicit(stmt.target, symbols)
        elif isinstance(stmt, ast.IfBlock):
            stmt.conditions = [self._resolve_expr(c, symbols) for c in stmt.conditions]
            for body in stmt.bodies:
                self._analyze_statements(body, symbols)
            self._analyze_statements(stmt.else_body, symbols)
        elif isinstance(stmt, ast.DoLoop):
            if symbols.lookup(stmt.var) is None:
                symbols.define(Symbol(name=stmt.var, ftype=self._implicit_type(stmt.var)))
            stmt.start = self._resolve_expr(stmt.start, symbols)
            stmt.end = self._resolve_expr(stmt.end, symbols)
            if stmt.step is not None:
                stmt.step = self._resolve_expr(stmt.step, symbols)
            self._analyze_statements(stmt.body, symbols)
        elif isinstance(stmt, ast.DoWhile):
            stmt.condition = self._resolve_expr(stmt.condition, symbols)
            self._analyze_statements(stmt.body, symbols)
        elif isinstance(stmt, ast.DirectiveRegion):
            self._analyze_statements(stmt.body, symbols)
        elif isinstance(stmt, ast.CallStmt):
            stmt.args = [self._resolve_expr(a, symbols) for a in stmt.args]
        elif isinstance(stmt, ast.AllocateStmt):
            stmt.allocations = [
                (name, [self._resolve_expr(d, symbols) for d in dims])
                for name, dims in stmt.allocations
            ]
        elif isinstance(stmt, ast.PrintStmt):
            stmt.items = [self._resolve_expr(i, symbols) for i in stmt.items]
        elif isinstance(stmt, ast.StopStmt) and stmt.code is not None:
            stmt.code = self._resolve_expr(stmt.code, symbols)
        # Exit/Cycle/Goto/Continue/Return/Deallocate need no resolution

    def _define_implicit(self, target: ast.Expr, symbols: SymbolTable) -> None:
        """Implicitly declare a scalar assigned to without a declaration."""
        if isinstance(target, ast.Identifier) and symbols.lookup(target.name) is None:
            symbols.define(Symbol(name=target.name,
                                  ftype=self._implicit_type(target.name)))

    # ------------------------------------------------------------- expressions
    def _resolve_expr(self, expr: ast.Expr, symbols: SymbolTable) -> ast.Expr:
        if expr is None:
            return None
        if isinstance(expr, ast.IntLiteral):
            expr.ftype = ftypes.INTEGER if expr.kind != 8 else ftypes.INTEGER8
        elif isinstance(expr, ast.RealLiteral):
            expr.ftype = ftypes.DOUBLE if expr.kind == 8 else ftypes.REAL
        elif isinstance(expr, ast.LogicalLiteral):
            expr.ftype = ftypes.LOGICAL
        elif isinstance(expr, ast.CharLiteral):
            expr.ftype = FType(base="character", kind=1, char_length=len(expr.value))
        elif isinstance(expr, ast.Identifier):
            sym = symbols.lookup(expr.name)
            if sym is None:
                sym = Symbol(name=expr.name, ftype=self._implicit_type(expr.name))
                symbols.define(sym)
            expr.ftype = sym.ftype
        elif isinstance(expr, ast.CallOrIndex):
            return self._resolve_call_or_index(expr, symbols)
        elif isinstance(expr, ast.BinaryOp):
            expr.lhs = self._resolve_expr(expr.lhs, symbols)
            expr.rhs = self._resolve_expr(expr.rhs, symbols)
            expr.ftype = self._binary_type(expr)
        elif isinstance(expr, ast.UnaryOp):
            expr.operand = self._resolve_expr(expr.operand, symbols)
            expr.ftype = ftypes.LOGICAL if expr.op == ".not." else expr.operand.ftype
        elif isinstance(expr, ast.ComponentRef):
            expr.base = self._resolve_expr(expr.base, symbols)
            base_t = expr.base.ftype
            if base_t is None or base_t.base != "derived":
                raise SemanticError(f"component access on non-derived type: %{expr.component}")
            dt = self.result.derived_types.get(base_t.derived_name)
            if dt is None:
                raise SemanticError(f"unknown derived type {base_t.derived_name}")
            expr.ftype = dt.component_type(expr.component)
        elif isinstance(expr, ast.SliceTriplet):
            if expr.lower is not None:
                expr.lower = self._resolve_expr(expr.lower, symbols)
            if expr.upper is not None:
                expr.upper = self._resolve_expr(expr.upper, symbols)
            if expr.stride is not None:
                expr.stride = self._resolve_expr(expr.stride, symbols)
            expr.ftype = ftypes.INTEGER
        elif isinstance(expr, (ast.ArrayRef, ast.FunctionCall, ast.IntrinsicCall)):
            pass  # already resolved
        else:
            raise SemanticError(f"cannot resolve expression {expr!r}")
        return expr

    def _resolve_call_or_index(self, expr: ast.CallOrIndex,
                               symbols: SymbolTable) -> ast.Expr:
        args = [self._resolve_expr(a, symbols) for a in expr.args]
        sym = symbols.lookup(expr.name)
        if sym is not None and sym.ftype.is_array and not sym.is_function_result:
            has_slice = any(isinstance(a, ast.SliceTriplet) for a in args)
            node = ast.ArrayRef(name=expr.name, indices=args, loc=expr.loc)
            if has_slice or len(args) < sym.ftype.rank:
                # an array section keeps the array's element type + dynamic dims
                section_rank = sum(1 for a in args if isinstance(a, ast.SliceTriplet))
                node.ftype = sym.ftype.scalar().with_dims(
                    tuple(ArrayDim(1, None) for _ in range(max(section_rank, 1))))
            else:
                node.ftype = sym.ftype.scalar()
            return node
        if intrinsics.is_intrinsic(expr.name) and (sym is None or not sym.ftype.is_array):
            node = ast.IntrinsicCall(name=expr.name, args=args, loc=expr.loc)
            node.ftype = intrinsics.result_type(expr.name, [a.ftype for a in args])
            return node
        # user function call
        node = ast.FunctionCall(name=expr.name, args=args, loc=expr.loc)
        node.ftype = self.function_results.get(expr.name)
        if node.ftype is None:
            node.ftype = self._implicit_type(expr.name)
        return node

    def _binary_type(self, expr: ast.BinaryOp) -> FType:
        op = expr.op
        lt, rt = expr.lhs.ftype, expr.rhs.ftype
        if op in ("==", "/=", "<", "<=", ">", ">=", ".and.", ".or.", ".eqv.", ".neqv."):
            return ftypes.LOGICAL
        if op == "//":
            return FType(base="character", kind=1)
        result = ftypes.combine_numeric(lt.scalar(), rt.scalar())
        # elemental operation on arrays keeps the array shape
        if lt.is_array:
            return result.with_dims(lt.dims)
        if rt.is_array:
            return result.with_dims(rt.dims)
        return result


def analyze(unit: ast.CompilationUnit) -> AnalysisResult:
    return SemanticAnalyzer(unit).analyze()


__all__ = ["Symbol", "SymbolTable", "DerivedType", "SubprogramInfo",
           "AnalysisResult", "SemanticAnalyzer", "SemanticError", "analyze"]
