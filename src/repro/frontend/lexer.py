"""Free-form Fortran lexer.

Handles the Fortran 90 free-form subset the reproduction needs: keywords and
identifiers (case-insensitive), integer/real literals (including ``d``
exponents and kind suffixes), operators (including ``**``, ``//``, relational
and logical dot-operators), strings, comments, ``&`` line continuations,
statement labels and ``!$omp`` / ``!$acc`` directives (which are preserved as
special tokens rather than discarded as comments).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional

from .ast_nodes import SourceLocation


class LexError(Exception):
    pass


@dataclass
class Token:
    kind: str       # NAME, INT, REAL, STRING, OP, NEWLINE, DIRECTIVE, LABEL, EOF
    value: str
    line: int
    column: int = 0

    @property
    def loc(self) -> SourceLocation:
        return SourceLocation(self.line, self.column)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, line={self.line})"


KEYWORDS = {
    "program", "end", "subroutine", "function", "module", "contains", "use",
    "implicit", "none", "integer", "real", "logical", "character", "complex",
    "double", "precision", "type", "dimension", "allocatable", "parameter",
    "intent", "in", "out", "inout", "pointer", "target", "optional", "save",
    "if", "then", "else", "elseif", "endif", "do", "while", "enddo", "exit",
    "cycle", "goto", "continue", "call", "return", "stop", "allocate",
    "deallocate", "print", "write", "read", "result", "kind", "len",
    "only", "public", "private", "external", "intrinsic", "data", "where",
    "select", "case", "nullify",
}

#: multi-character operators, longest first
_OPERATORS = [
    "**", "//", "==", "/=", "<=", ">=", "=>", "::", "%", "(", ")", ",", "=",
    "+", "-", "*", "/", "<", ">", ":", ";",
]

_DOT_OP_RE = re.compile(r"\.(and|or|not|eqv|neqv|true|false|eq|ne|lt|le|gt|ge)\.", re.I)
_NAME_RE = re.compile(r"[a-z_][a-z0-9_]*", re.I)
_REAL_RE = re.compile(
    r"(\d+\.\d*([edq][+-]?\d+)?|\.\d+([edq][+-]?\d+)?|\d+[edq][+-]?\d+)(_\w+)?", re.I)
_INT_RE = re.compile(r"\d+(_\w+)?")


def _join_continuations(source: str) -> List[tuple]:
    """Join lines ending in ``&`` (and strip leading ``&`` of continuations).

    Returns a list of (line_number, text) pairs where line_number refers to
    the first physical line of the logical line.
    """
    logical: List[tuple] = []
    pending: Optional[str] = None
    pending_line = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.rstrip()
        stripped = line.strip()
        is_directive = stripped.lower().startswith(("!$omp", "!$acc"))
        if not is_directive:
            # strip trailing comments (respecting strings)
            out = []
            in_str: Optional[str] = None
            for ch in line:
                if in_str:
                    out.append(ch)
                    if ch == in_str:
                        in_str = None
                elif ch in "'\"":
                    in_str = ch
                    out.append(ch)
                elif ch == "!":
                    break
                else:
                    out.append(ch)
            line = "".join(out).rstrip()
        if pending is not None:
            line = pending + " " + line.lstrip().lstrip("&").lstrip()
            lineno_use = pending_line
            pending = None
        else:
            lineno_use = lineno
        if line.rstrip().endswith("&"):
            pending = line.rstrip()[:-1]
            pending_line = lineno_use
            continue
        if line.strip():
            logical.append((lineno_use, line))
    if pending is not None and pending.strip():
        logical.append((pending_line, pending))
    return logical


def tokenize(source: str) -> List[Token]:
    """Tokenise free-form Fortran source into a flat token list.

    Statements are separated by NEWLINE tokens (``;`` separators also produce
    NEWLINE).  Directives occupy their own logical line and produce a single
    DIRECTIVE token whose value is the directive text without the sentinel.
    """
    tokens: List[Token] = []
    for lineno, line in _join_continuations(source):
        stripped = line.strip()
        low = stripped.lower()
        if low.startswith("!$omp") or low.startswith("!$acc"):
            sentinel = "omp" if low.startswith("!$omp") else "acc"
            body = stripped[5:].strip()
            tokens.append(Token("DIRECTIVE", f"{sentinel} {body}".strip(), lineno))
            tokens.append(Token("NEWLINE", "\n", lineno))
            continue
        if not stripped or stripped.startswith("!"):
            continue
        tokens.extend(_tokenize_line(stripped, lineno))
        tokens.append(Token("NEWLINE", "\n", lineno))
    tokens.append(Token("EOF", "", tokens[-1].line if tokens else 1))
    return tokens


def _tokenize_line(text: str, lineno: int) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    n = len(text)
    # statement label: leading integer followed by whitespace then more text
    m = re.match(r"^(\d+)\s+\S", text)
    if m:
        tokens.append(Token("LABEL", m.group(1), lineno, 0))
        pos = m.end(1)
    while pos < n:
        ch = text[pos]
        if ch in " \t":
            pos += 1
            continue
        if ch == ";":
            tokens.append(Token("NEWLINE", "\n", lineno, pos))
            pos += 1
            continue
        if ch in "'\"":
            end = pos + 1
            while end < n and text[end] != ch:
                end += 1
            if end >= n:
                raise LexError(f"unterminated string at line {lineno}")
            tokens.append(Token("STRING", text[pos + 1:end], lineno, pos))
            pos = end + 1
            continue
        m = _DOT_OP_RE.match(text, pos)
        if m:
            tokens.append(Token("OP", "." + m.group(1).lower() + ".", lineno, pos))
            pos = m.end()
            continue
        m = _REAL_RE.match(text, pos)
        if m:
            tokens.append(Token("REAL", m.group(0), lineno, pos))
            pos = m.end()
            continue
        m = _INT_RE.match(text, pos)
        if m:
            tokens.append(Token("INT", m.group(0), lineno, pos))
            pos = m.end()
            continue
        m = _NAME_RE.match(text, pos)
        if m:
            tokens.append(Token("NAME", m.group(0).lower(), lineno, pos))
            pos = m.end()
            continue
        for op in _OPERATORS:
            if text.startswith(op, pos):
                tokens.append(Token("OP", op, lineno, pos))
                pos += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r} at line {lineno}: {text!r}")
    return tokens


class TokenStream:
    """Cursor over a token list with the lookahead helpers the parser needs."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def at(self, kind: str, value: Optional[str] = None, offset: int = 0) -> bool:
        tok = self.peek(offset)
        if tok.kind != kind:
            return False
        return value is None or tok.value == value

    def at_name(self, value: str, offset: int = 0) -> bool:
        return self.at("NAME", value, offset)

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, value):
            return self.next()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.at(kind, value):
            expected = value or kind
            raise LexError(
                f"line {tok.line}: expected {expected!r}, found {tok.kind} {tok.value!r}")
        return self.next()

    def skip_newlines(self) -> None:
        while self.at("NEWLINE"):
            self.next()

    def at_end(self) -> bool:
        return self.at("EOF")


__all__ = ["Token", "TokenStream", "tokenize", "LexError", "KEYWORDS"]
