"""Fortran-level type model used by semantic analysis and lowering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..ir import types as ir_types
from ..dialects import fir


@dataclass(frozen=True)
class ArrayDim:
    """One array dimension: constant bounds when known, else dynamic."""

    lower: Optional[int] = 1          # None when not known at compile time
    extent: Optional[int] = None      # None when dynamic / deferred

    @property
    def is_static(self) -> bool:
        return self.extent is not None


@dataclass(frozen=True)
class FType:
    """A resolved Fortran type: base type + kind + optional array shape."""

    base: str = "real"                # integer | real | logical | character | derived
    kind: int = 4
    dims: Tuple[ArrayDim, ...] = ()
    allocatable: bool = False
    pointer: bool = False
    parameter: bool = False
    derived_name: Optional[str] = None
    char_length: Optional[int] = None

    # -- queries -------------------------------------------------------------
    @property
    def is_array(self) -> bool:
        return len(self.dims) > 0

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def has_static_shape(self) -> bool:
        return all(d.is_static for d in self.dims)

    def scalar(self) -> "FType":
        """The element type of an array type."""
        return FType(base=self.base, kind=self.kind, derived_name=self.derived_name,
                     char_length=self.char_length)

    def with_dims(self, dims: Tuple[ArrayDim, ...]) -> "FType":
        return FType(base=self.base, kind=self.kind, dims=dims,
                     allocatable=self.allocatable, pointer=self.pointer,
                     parameter=self.parameter, derived_name=self.derived_name,
                     char_length=self.char_length)

    def shape(self) -> Tuple[int, ...]:
        """Static extents, with DYNAMIC placeholders for unknown dims."""
        return tuple(d.extent if d.extent is not None else ir_types.DYNAMIC
                     for d in self.dims)

    def lower_bounds(self) -> Tuple[Optional[int], ...]:
        return tuple(d.lower for d in self.dims)

    # -- conversions to IR types ------------------------------------------------
    def element_ir_type(self) -> ir_types.Type:
        """The MLIR scalar type of one element."""
        if self.base == "integer":
            return ir_types.IntegerType(self.kind * 8 if self.kind else 32)
        if self.base == "real":
            return ir_types.FloatType(64 if self.kind == 8 else 32)
        if self.base == "logical":
            return ir_types.i1
        if self.base == "character":
            return ir_types.i8
        if self.base == "derived":
            raise TypeError("derived types have no single element IR type")
        raise TypeError(f"unknown Fortran base type {self.base!r}")

    def fir_value_type(self) -> ir_types.Type:
        """The FIR value type (what fir.load of a variable of this type yields)."""
        elem = self.element_ir_type()
        if self.is_array:
            return fir.SequenceType(self.shape(), elem)
        return elem

    def fir_storage_type(self) -> ir_types.Type:
        """The FIR reference type used for the variable's storage.

        Allocatable / pointer arrays are boxed (ref<box<heap<array<...>>>>),
        mirroring Flang's representation; plain variables are plain
        references.
        """
        elem = self.element_ir_type()
        if self.is_array:
            seq = fir.SequenceType(self.shape(), elem)
            if self.allocatable:
                return fir.ReferenceType(fir.BoxType(fir.HeapType(seq)))
            if self.pointer:
                return fir.ReferenceType(fir.BoxType(fir.PointerType(seq)))
            return fir.ReferenceType(seq)
        if self.allocatable or self.pointer:
            return fir.ReferenceType(fir.BoxType(fir.HeapType(elem)))
        return fir.ReferenceType(elem)


INTEGER = FType(base="integer", kind=4)
INTEGER8 = FType(base="integer", kind=8)
REAL = FType(base="real", kind=4)
DOUBLE = FType(base="real", kind=8)
LOGICAL = FType(base="logical", kind=4)
CHARACTER = FType(base="character", kind=1)


def combine_numeric(a: FType, b: FType) -> FType:
    """Usual Fortran numeric type promotion for binary operations."""
    if a.base == "real" or b.base == "real":
        kind = max(a.kind if a.base == "real" else 0,
                   b.kind if b.base == "real" else 0, 4)
        return FType(base="real", kind=kind)
    kind = max(a.kind, b.kind, 4)
    return FType(base="integer", kind=kind)


__all__ = ["ArrayDim", "FType", "INTEGER", "INTEGER8", "REAL", "DOUBLE",
           "LOGICAL", "CHARACTER", "combine_numeric"]
