"""Classification and result typing of Fortran intrinsic procedures."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from . import ftypes
from .ftypes import FType

#: Elemental numeric intrinsics that map to the MLIR ``math`` dialect.
ELEMENTAL_MATH = {
    "sqrt", "exp", "log", "log10", "sin", "cos", "tan", "tanh", "atan",
    "atan2", "asin", "acos", "sinh", "cosh",
}

#: Other elemental intrinsics handled inline by the lowering.
ELEMENTAL_OTHER = {
    "abs", "mod", "min", "max", "sign", "nint", "int", "real", "dble",
    "float", "aint", "anint", "ceiling", "floor", "merge", "epsilon", "huge",
    "tiny",
}

#: Transformational (whole-array) intrinsics that HLFIR keeps as operations.
TRANSFORMATIONAL = {
    "sum", "product", "maxval", "minval", "count", "matmul", "dot_product",
    "transpose",
}

#: Array inquiry intrinsics.
INQUIRY = {"size", "lbound", "ubound", "allocated", "shape"}

ALL_INTRINSICS = ELEMENTAL_MATH | ELEMENTAL_OTHER | TRANSFORMATIONAL | INQUIRY


def is_intrinsic(name: str) -> bool:
    return name.lower() in ALL_INTRINSICS


def result_type(name: str, arg_types: List[FType]) -> FType:
    """Result type of an intrinsic call given the argument types."""
    name = name.lower()
    first = arg_types[0] if arg_types else ftypes.REAL

    if name in ("int", "nint", "ceiling", "floor"):
        return ftypes.INTEGER
    if name in ("real", "float"):
        return ftypes.REAL if first.kind != 8 else ftypes.REAL
    if name == "dble":
        return ftypes.DOUBLE
    if name in ("epsilon", "huge", "tiny"):
        return first.scalar()
    if name in ("size", "lbound", "ubound", "count"):
        return ftypes.INTEGER
    if name == "allocated":
        return ftypes.LOGICAL
    if name == "shape":
        return FType(base="integer", kind=4,
                     dims=(ftypes.ArrayDim(1, first.rank or 1),))

    if name in ("sum", "product", "maxval", "minval", "dot_product"):
        return first.scalar()
    if name == "matmul":
        a, b = arg_types[0], arg_types[1]
        elem = ftypes.combine_numeric(a.scalar(), b.scalar())
        rows = a.dims[0] if a.rank >= 1 else ftypes.ArrayDim(1, None)
        cols = b.dims[1] if b.rank >= 2 else ftypes.ArrayDim(1, None)
        return elem.with_dims((rows, cols))
    if name == "transpose":
        a = arg_types[0]
        dims = tuple(reversed(a.dims)) if a.rank == 2 else a.dims
        return a.scalar().with_dims(dims)

    if name in ELEMENTAL_MATH or name in ("abs", "sign", "aint", "anint", "merge"):
        # elemental: result type follows the (promoted) argument
        if first.base == "integer" and name == "abs":
            return first.scalar() if not first.is_array else first
        promoted = first if first.base == "real" else ftypes.REAL
        return promoted if not first.is_array else first
    if name in ("mod",):
        return ftypes.combine_numeric(first.scalar(), arg_types[1].scalar()) \
            if len(arg_types) > 1 else first.scalar()
    if name in ("min", "max"):
        out = first.scalar()
        for t in arg_types[1:]:
            out = ftypes.combine_numeric(out, t.scalar())
        return out
    return first


__all__ = [
    "ELEMENTAL_MATH", "ELEMENTAL_OTHER", "TRANSFORMATIONAL", "INQUIRY",
    "ALL_INTRINSICS", "is_intrinsic", "result_type",
]
