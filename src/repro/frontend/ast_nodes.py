"""Abstract syntax tree for the Fortran 90 subset handled by the frontend.

Nodes are small dataclasses; the parser produces them and the semantic
analyser annotates expressions with resolved :class:`~repro.frontend.ftypes`
types before lowering to HLFIR/FIR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass
class SourceLocation:
    line: int
    column: int = 0

    def __str__(self):
        return f"line {self.line}"


# ---------------------------------------------------------------------------
# Types as written in declarations (pre-semantic)
# ---------------------------------------------------------------------------


@dataclass
class TypeSpec:
    """A declared type: base name plus kind, e.g. real(kind=8)."""

    name: str                      # integer | real | logical | character | type
    kind: int = 0                  # 0 = default kind
    derived_name: Optional[str] = None  # for type(name)
    char_length: Optional[int] = None


@dataclass
class DimSpec:
    """One dimension of an array declaration.

    ``lower``/``upper`` are expressions or None; a deferred shape (``:``)
    has both None and ``deferred=True``; an assumed shape dummy argument has
    ``assumed=True``.
    """

    lower: Optional["Expr"] = None
    upper: Optional["Expr"] = None
    deferred: bool = False
    assumed: bool = False


@dataclass
class EntityDecl:
    """A single declared entity within a declaration statement."""

    name: str
    dims: List[DimSpec] = field(default_factory=list)
    init: Optional["Expr"] = None
    char_length: Optional[int] = None


@dataclass
class Declaration:
    """``integer, dimension(10), intent(in) :: a, b(5)``"""

    type_spec: TypeSpec
    entities: List[EntityDecl]
    attributes: List[str] = field(default_factory=list)  # allocatable, parameter, ...
    intent: Optional[str] = None
    default_dims: List[DimSpec] = field(default_factory=list)
    loc: Optional[SourceLocation] = None


@dataclass
class DerivedTypeDef:
    name: str
    components: List[Declaration]
    loc: Optional[SourceLocation] = None


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class of expressions; ``ftype`` is filled in by semantics."""

    ftype = None
    loc: Optional[SourceLocation] = None


@dataclass
class IntLiteral(Expr):
    value: int
    kind: int = 4
    ftype: object = None
    loc: Optional[SourceLocation] = None


@dataclass
class RealLiteral(Expr):
    value: float
    kind: int = 4
    ftype: object = None
    loc: Optional[SourceLocation] = None


@dataclass
class LogicalLiteral(Expr):
    value: bool
    ftype: object = None
    loc: Optional[SourceLocation] = None


@dataclass
class CharLiteral(Expr):
    value: str
    ftype: object = None
    loc: Optional[SourceLocation] = None


@dataclass
class Identifier(Expr):
    name: str
    ftype: object = None
    loc: Optional[SourceLocation] = None


@dataclass
class BinaryOp(Expr):
    op: str            # + - * / ** == /= < <= > >= .and. .or. .eqv. .neqv. //
    lhs: Expr = None
    rhs: Expr = None
    ftype: object = None
    loc: Optional[SourceLocation] = None


@dataclass
class UnaryOp(Expr):
    op: str            # - + .not.
    operand: Expr = None
    ftype: object = None
    loc: Optional[SourceLocation] = None


@dataclass
class SliceTriplet(Expr):
    """An array-section subscript ``lo:hi:stride`` (all parts optional)."""

    lower: Optional[Expr] = None
    upper: Optional[Expr] = None
    stride: Optional[Expr] = None
    ftype: object = None
    loc: Optional[SourceLocation] = None


@dataclass
class CallOrIndex(Expr):
    """``name(args...)`` — resolved by semantics into ArrayRef / FunctionCall
    / IntrinsicCall."""

    name: str
    args: List[Expr] = field(default_factory=list)
    ftype: object = None
    loc: Optional[SourceLocation] = None


@dataclass
class ArrayRef(Expr):
    name: str
    indices: List[Expr] = field(default_factory=list)
    ftype: object = None
    loc: Optional[SourceLocation] = None


@dataclass
class FunctionCall(Expr):
    name: str
    args: List[Expr] = field(default_factory=list)
    ftype: object = None
    loc: Optional[SourceLocation] = None


@dataclass
class IntrinsicCall(Expr):
    name: str
    args: List[Expr] = field(default_factory=list)
    ftype: object = None
    loc: Optional[SourceLocation] = None


@dataclass
class ComponentRef(Expr):
    """Derived-type component access ``base%component``."""

    base: Expr = None
    component: str = ""
    ftype: object = None
    loc: Optional[SourceLocation] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class Assignment(Stmt):
    target: Expr = None
    value: Expr = None
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class PointerAssignment(Stmt):
    target: Expr = None
    value: Expr = None
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class IfBlock(Stmt):
    """if/else if/else chain: conditions[i] guards bodies[i]; the optional
    trailing else body is ``else_body``."""

    conditions: List[Expr] = field(default_factory=list)
    bodies: List[List[Stmt]] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class CaseRange:
    """One item of a CASE value list: a single value or an inclusive range.

    A single value has ``lower is upper`` semantics via ``is_range=False``;
    open-ended ranges (``:hi`` / ``lo:``) leave the missing bound ``None``.
    """

    lower: Optional[Expr] = None
    upper: Optional[Expr] = None
    is_range: bool = False


@dataclass
class CaseBlock:
    """One ``case (items)`` alternative of a SELECT CASE construct."""

    items: List[CaseRange] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)


@dataclass
class SelectCase(Stmt):
    """``select case (selector)`` ... ``end select``.

    The shared frontend desugars this into an :class:`IfBlock` chain during
    semantic analysis, so every compilation flow supports it uniformly.
    """

    selector: Expr = None
    cases: List[CaseBlock] = field(default_factory=list)
    default_body: List[Stmt] = field(default_factory=list)
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class DoLoop(Stmt):
    var: str = ""
    start: Expr = None
    end: Expr = None
    step: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None
    directives: List[str] = field(default_factory=list)  # e.g. ["omp parallel do"]


@dataclass
class DoWhile(Stmt):
    condition: Expr = None
    body: List[Stmt] = field(default_factory=list)
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class ExitStmt(Stmt):
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class CycleStmt(Stmt):
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class GotoStmt(Stmt):
    target_label: int = 0
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class ContinueStmt(Stmt):
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class CallStmt(Stmt):
    name: str = ""
    args: List[Expr] = field(default_factory=list)
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class AllocateStmt(Stmt):
    """``allocate(a(n), b(m, k))`` — allocations maps name -> dim exprs."""

    allocations: List[Tuple[str, List[Expr]]] = field(default_factory=list)
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class DeallocateStmt(Stmt):
    names: List[str] = field(default_factory=list)
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class ReturnStmt(Stmt):
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class StopStmt(Stmt):
    code: Optional[Expr] = None
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class PrintStmt(Stmt):
    items: List[Expr] = field(default_factory=list)
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


@dataclass
class DirectiveRegion(Stmt):
    """A region delimited by a directive pair, e.g. ``!$acc kernels`` ...
    ``!$acc end kernels`` or ``!$omp parallel`` ... ``!$omp end parallel``."""

    directive: str = ""
    clauses: str = ""
    body: List[Stmt] = field(default_factory=list)
    loc: Optional[SourceLocation] = None
    label: Optional[int] = None


# ---------------------------------------------------------------------------
# Program units
# ---------------------------------------------------------------------------


@dataclass
class Subprogram:
    """A subroutine or function."""

    kind: str                              # "subroutine" | "function" | "program"
    name: str
    args: List[str] = field(default_factory=list)
    result_name: Optional[str] = None      # for functions
    result_type: Optional[TypeSpec] = None
    declarations: List[Declaration] = field(default_factory=list)
    derived_types: List[DerivedTypeDef] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    contains: List["Subprogram"] = field(default_factory=list)
    loc: Optional[SourceLocation] = None


@dataclass
class ModuleUnit:
    name: str
    declarations: List[Declaration] = field(default_factory=list)
    derived_types: List[DerivedTypeDef] = field(default_factory=list)
    subprograms: List[Subprogram] = field(default_factory=list)
    loc: Optional[SourceLocation] = None


@dataclass
class CompilationUnit:
    """A whole source file."""

    modules: List[ModuleUnit] = field(default_factory=list)
    subprograms: List[Subprogram] = field(default_factory=list)

    def all_subprograms(self) -> List[Subprogram]:
        out: List[Subprogram] = []
        for m in self.modules:
            out.extend(m.subprograms)
        out.extend(self.subprograms)
        # include nested (contains) subprograms
        nested: List[Subprogram] = []
        for sp in out:
            nested.extend(sp.contains)
        return out + nested

    def find_subprogram(self, name: str) -> Optional[Subprogram]:
        for sp in self.all_subprograms():
            if sp.name == name:
                return sp
        return None

    def main_program(self) -> Optional[Subprogram]:
        for sp in self.all_subprograms():
            if sp.kind == "program":
                return sp
        return None


__all__ = [name for name in dir() if not name.startswith("_")]
