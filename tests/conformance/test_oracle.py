"""Oracle behaviour: token comparison, divergence detection, sweeps."""

import pytest

from repro.conformance import (check_kernel, check_seed, default_configs,
                               run_sweep)
from repro.conformance.oracle import (FlowConfig, Observation,
                                      compare_observations,
                                      printed_difference)


class TestPrintedComparison:
    def test_identical_lines_match(self):
        assert printed_difference(["1 2 3"], ["1 2 3"]) is None

    def test_integer_tokens_compare_exactly(self):
        assert printed_difference(["7"], ["8"]) is not None

    def test_int_vs_float_rendering_of_same_value_matches(self):
        # the flang runtime renders integer reductions through float();
        # 30 and 30.0 are the same observable
        assert printed_difference(["30"], ["30.0"]) is None

    def test_real_tokens_compare_with_tolerance(self):
        assert printed_difference(["0.30000000000000004"], ["0.3"]) is None
        assert printed_difference(["0.300001"], ["0.3"]) is not None

    def test_nan_matches_nan_only(self):
        assert printed_difference(["nan"], ["nan"]) is None
        assert printed_difference(["nan"], ["0.0"]) is not None

    def test_line_and_token_count_mismatches(self):
        assert printed_difference(["1"], ["1", "2"]) is not None
        assert printed_difference(["1 2"], ["1"]) is not None


def _obs(config, engine, printed=("1",), ok=True, stats=None, error=""):
    return Observation(config=config, engine=engine, ok=ok,
                       printed=tuple(printed), stats=stats, error=error)


class TestCompareObservations:
    CONFIGS = [FlowConfig(label="a", flow="a"), FlowConfig(label="b", flow="b")]

    def _base(self, overrides=None):
        from repro.flows import ENGINES
        observations = {
            (config, engine): _obs(config, engine)
            for config in ("a", "b") for engine in ENGINES
        }
        observations.update(overrides or {})
        return observations

    def test_clean_observations_have_no_divergence(self):
        assert compare_observations(self._base(), self.CONFIGS) == []

    def test_engine_output_divergence_is_bit_exact(self):
        from repro.flows import ENGINES
        # 1e-12 apart: fine across flows, NOT fine across engines
        observations = self._base({
            (config, engine): _obs(config, engine, printed=("1.0",))
            for config in ("a", "b") for engine in ENGINES
        })
        observations[("a", "reference")] = _obs(
            "a", "reference", printed=("1.000000000001",))
        kinds = [d.kind for d in compare_observations(observations, self.CONFIGS)]
        assert kinds == ["engine-output"]

    def test_cross_flow_divergence(self):
        from repro.flows import ENGINES
        observations = self._base({
            ("b", engine): _obs("b", engine, printed=("2",))
            for engine in ENGINES
        })
        divergences = compare_observations(observations, self.CONFIGS)
        assert [d.kind for d in divergences] == ["flow-output"]
        assert divergences[0].left == "a@compiled"
        assert divergences[0].right == "b@compiled"

    def test_engine_stats_divergence(self):
        from repro.flows import ENGINES
        from repro.machine import ExecutionStats
        from repro.service.serialization import stats_to_dict
        stats_a, stats_b = ExecutionStats(), ExecutionStats()
        stats_b.bump("serial", "arith")
        observations = self._base({
            ("a", engine): _obs("a", engine, stats=stats_to_dict(stats_a))
            for engine in ENGINES
        })
        observations[("a", "reference")] = _obs(
            "a", "reference", stats=stats_to_dict(stats_b))
        divergences = compare_observations(observations, self.CONFIGS)
        assert [d.kind for d in divergences] == ["engine-stats"]
        assert "arith" in divergences[0].detail

    def test_single_flow_failure_is_flagged(self):
        from repro.flows import ENGINES
        observations = self._base({
            ("b", engine): _obs("b", engine, ok=False, error="boom")
            for engine in ENGINES
        })
        kinds = [d.kind for d in compare_observations(observations, self.CONFIGS)]
        assert kinds == ["flow-error"]

    def test_engine_error_asymmetry_is_flagged(self):
        observations = self._base({
            ("b", "reference"): _obs("b", "reference", ok=False, error="boom"),
        })
        kinds = [d.kind for d in compare_observations(observations, self.CONFIGS)]
        assert "engine-error" in kinds

    def test_all_failing_is_one_divergence(self):
        from repro.flows import ENGINES
        observations = {(c.label, e): _obs(c.label, e, ok=False, error="nope")
                        for c in self.CONFIGS
                        for e in ENGINES}
        kinds = [d.kind for d in compare_observations(observations, self.CONFIGS)]
        assert kinds == ["all-failed"]


class TestDefaultConfigs:
    def test_contains_builtin_flows_and_baseline(self):
        labels = {config.label for config in default_configs()}
        assert {"flang", "ours", "ours@noopt"} <= labels

    def test_picks_up_registered_flows(self):
        from repro.flows import Flow, registered

        class NullFlow(Flow):
            name = "null-flow-under-test"

        with registered(NullFlow):
            labels = {config.label for config in default_configs()}
        assert "null-flow-under-test" in labels


class TestKernelChecks:
    def test_handwritten_kernel_is_conformant(self):
        report = check_kernel("""
program p
  implicit none
  integer :: q, r
  q = (-7) / 2
  r = mod(-7, 2)
  print *, q, r
end program p
""")
        assert report.ok, [d.describe() for d in report.divergences]
        from repro.flows import ENGINES
        # 3 configs x every registered engine observed
        assert len(report.observations) == 3 * len(ENGINES)
        assert all(o.ok for o in report.observations.values())

    @pytest.mark.parametrize("seed", range(4))
    def test_generated_seeds_are_conformant(self, seed):
        report = check_seed(seed)
        assert report.ok, [d.describe() for d in report.divergences]


class TestServiceSweep:
    def test_small_sweep_through_the_service(self):
        report = run_sweep(range(2))
        assert report.ok
        assert len(report.seeds) == 2
        assert report.service_counters["recompilations"] == \
            2 * len(report.configs) * len(report.engines)

    def test_warm_sweep_recompiles_nothing(self):
        from repro.service import CompileService
        service = CompileService()
        run_sweep(range(2), service=service)
        cold = service.recompilations
        report = run_sweep(range(2), service=service)
        assert report.ok
        assert service.recompilations == cold


@pytest.mark.slow
@pytest.mark.conformance
class TestConformanceSweep:
    """The bigger sweep tier: excluded from tier-1, run by the CI smoke job
    (which sweeps seeds 0-63 through the CLI) and by hand."""

    def test_seeds_0_to_31_in_process(self):
        for seed in range(32):
            report = check_seed(seed)
            assert report.ok, (seed,
                               [d.describe() for d in report.divergences])
