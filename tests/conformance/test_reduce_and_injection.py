"""Reducer behaviour + the end-to-end injected-bug scenario.

The acceptance bar for the subsystem: deliberately breaking one arithmetic
op's semantics in one flow must be *caught* by the oracle and *shrunk* by
the reducer to a small self-contained repro.
"""

import pytest

from repro.conformance import check_kernel, check_seed, default_configs
from repro.conformance.reduce import (matching_predicate, reduce_report,
                                      reduce_source)
from repro.flows import registered
from repro.flows.builtin import OursFlow
from repro.ir.core import create_operation


class BuggyDivFlow(OursFlow):
    """The paper's flow with a deliberately broken divsi: floor division
    instead of LLVM's truncating division (exactly the class of bug PR 3
    fixed by hand — now manufactured on demand)."""

    name = "ours-buggy-div"
    description = "ours with divsi reverted to floor division (test-only)"

    def compile(self, workload, options, execution, **kwargs):
        result = super().compile(workload, options, execution, **kwargs)
        if result.error is None:
            for op in list(result.module.walk()):
                if op.name == "arith.divsi":
                    bad = create_operation(
                        "arith.floordivsi", operands=list(op.operands),
                        result_types=[r.type for r in op.results])
                    op.parent.insert_before(op, bad)
                    op.replace_all_uses_with(list(bad.results))
                    op.erase(check_uses=False)
        return result


# the dividend comes out of a loop so no flow can constant-fold the
# division away: the injected floordivsi must actually execute
MIXED_SIGN_KERNEL = """
program p
  implicit none
  integer :: i, a, q
  a = 0
  do i = 1, 7
    a = a - 1
  end do
  q = a / 2
  print *, q
end program p
"""


class TestInjectedBug:
    def test_oracle_catches_the_broken_flow(self):
        with registered(BuggyDivFlow):
            report = check_kernel(MIXED_SIGN_KERNEL)
            assert not report.ok
            kinds = {d.kind for d in report.divergences}
            assert kinds == {"flow-output"}
            assert any("ours-buggy-div" in d.right or "ours-buggy-div" in d.left
                       for d in report.divergences)

    def test_without_injection_the_kernel_is_clean(self):
        assert check_kernel(MIXED_SIGN_KERNEL).ok

    def test_reducer_shrinks_a_handwritten_divergence(self):
        with registered(BuggyDivFlow):
            report = check_kernel(MIXED_SIGN_KERNEL + "")
            reduced = reduce_source(report.source,
                                    matching_predicate(report))
            assert len(reduced.splitlines()) <= len(
                MIXED_SIGN_KERNEL.strip().splitlines())
            # the reduction must still diverge
            assert not check_kernel(reduced).ok

    @pytest.mark.slow
    @pytest.mark.conformance
    def test_generated_kernel_is_caught_and_reduced(self):
        """Acceptance scenario: sweep generated seeds under the injected
        bug until one diverges, then shrink it to <= 20 lines."""
        with registered(BuggyDivFlow):
            report = None
            for seed in range(64):
                candidate = check_seed(seed)
                if not candidate.ok:
                    report = candidate
                    break
            assert report is not None, \
                "injected divsi bug not caught within 64 seeds"
            reduced = reduce_report(report)
            assert len(reduced.splitlines()) <= 20, reduced
            assert not check_kernel(reduced).ok


class TestReducerMechanics:
    def test_reduction_requires_a_divergence(self):
        report = check_kernel(MIXED_SIGN_KERNEL)
        assert report.ok
        with pytest.raises(ValueError):
            reduce_report(report)

    def test_predicate_rejects_unparseable_candidates(self):
        report_like = check_kernel(MIXED_SIGN_KERNEL)
        predicate = matching_predicate(report_like)
        assert predicate("this is not fortran") is False

    def test_reduce_source_is_a_fixpoint_under_false_predicate(self):
        # nothing may be removed if every candidate fails the predicate
        source = MIXED_SIGN_KERNEL.strip() + "\n"
        assert reduce_source(source, lambda s: False) == source

    def test_declaration_gc_drops_unused_names(self):
        source = """
program p
  implicit none
  integer :: used, unused
  real(kind=8) :: never
  used = 3
  print *, used
end program p
""".strip() + "\n"
        # accept any candidate that still prints: the GC pass must strip
        # the two unused declarations
        def predicate(candidate: str) -> bool:
            return "print" in candidate and "used" in candidate
        reduced = reduce_source(source, predicate)
        assert "unused" not in reduced
        assert "never" not in reduced
