"""Generator invariants: determinism, validity, round-trips, registry glue."""

import pytest

from repro.conformance import GeneratorConfig, generate
from repro.conformance.unparse import unparse
from repro.frontend.parser import parse_source
from repro.frontend.semantics import analyze
from repro.service.jobs import CompileJob
from repro.workloads import get_workload

SEEDS = range(12)


class TestDeterminism:
    def test_same_seed_same_source(self):
        for seed in SEEDS:
            assert generate(seed).source == generate(seed).source

    def test_different_seeds_differ(self):
        sources = {generate(seed).source for seed in range(20)}
        assert len(sources) == 20

    def test_config_is_part_of_the_derivation(self):
        small = GeneratorConfig(min_body_segments=1, max_body_segments=2)
        assert generate(3, small).source != generate(3).source


class TestValidity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_parses_and_analyzes(self, seed):
        unit = parse_source(generate(seed).source)
        program = unit.main_program()
        assert program is not None and program.name == f"conf{seed}"
        analyze(unit)  # must not raise

    @pytest.mark.parametrize("seed", SEEDS)
    def test_unparse_parse_fixpoint(self, seed):
        source = generate(seed).source
        assert unparse(parse_source(source)) == source

    def test_programs_always_print(self):
        for seed in SEEDS:
            assert "print *" in generate(seed).source


class TestFeatureCoverage:
    def test_corners_appear_across_seed_range(self):
        seen = set()
        for seed in range(60):
            seen.update(generate(seed).features)
        for tag in ("corner-mixed-sign-division", "corner-zero-trip-loop",
                    "corner-nan", "corner-negative-step", "select-case",
                    "do-while", "int-division", "clamped-index"):
            assert tag in seen, f"feature {tag} never generated in 60 seeds"


class TestRegistryIntegration:
    def test_family_resolution(self):
        workload = get_workload("conformance/5")
        assert workload.name == "conformance/5"
        assert workload.source(scaled=True) == generate(5).source

    def test_family_resolution_is_stable(self):
        assert get_workload("conformance/9").identity() == \
            get_workload("conformance/9").identity()

    def test_unknown_family_member_raises(self):
        with pytest.raises(KeyError):
            get_workload("conformance/not-a-seed")
        with pytest.raises(KeyError):
            get_workload("nosuchfamily/1")

    def test_jobs_are_pool_safe(self):
        """The pool ships only the spec: re-resolving it must reproduce the
        exact cache key, or sweeps silently fall back to in-process runs."""
        from repro.service.scheduler import CompileService
        job = CompileJob(flow="ours", workload_name="conformance/7",
                         engine="reference")
        assert CompileJob.from_spec(job.spec()).key() == job.key()
        assert CompileService._pool_safe(job)

    def test_engine_is_key_material(self):
        compiled = CompileJob(flow="ours", workload_name="conformance/7")
        reference = CompileJob(flow="ours", workload_name="conformance/7",
                               engine="reference")
        assert compiled.key() != reference.key()
