"""Persistent jit translations: keying, eviction and the disk tier.

The broad engine-parity guarantee lives in ``test_engine_parity``; these
tests target the translation *cache* mechanics the persistence work fixed
and introduced: bounded LRU eviction (a full cache evicts one entry, not
all), fingerprint keying (structurally different blocks with colliding
uids get distinct translations), the disk roundtrip (a simulated and a
real fresh process compile from the stored source with bit-identical
output and stats), version bumps as clean misses, and stale/corrupt
payload handling (source of record wins, never an error).
"""

import json
import os
import subprocess
import sys

import pytest

from repro.flang import FlangCompiler
from repro.machine import Interpreter
from repro.machine import jit
from repro.service.cache import ArtifactCache
from repro.service.jit_store import JitTranslationStore
from repro.service.serialization import stats_to_dict


def _compile_fir(source: str):
    return FlangCompiler().compile(source, stop_at="fir").fir_module


def _program(body: str) -> str:
    return f"program p\n  implicit none\n{body}\nend program p\n"


#: hot enough (static work >= the jit's _TRANSLATE_WORK) to translate on
#: first entry, so a single run_main exercises the full store pipeline
LOOP_PROGRAM = _program("""
  integer :: i
  real(kind=8), dimension(1024) :: a
  do i = 1, 1024
    a(i) = real(i, 8) * 1.5d0 + 0.25d0
  end do
  print *, a(1), a(511), a(1024)
""")


def _loop_program(scale: str) -> str:
    return _program(f"""
  integer :: i
  real(kind=8), dimension(1024) :: a
  do i = 1, 1024
    a(i) = real(i, 8) * {scale}
  end do
  print *, a(1), a(1024)
""")


def _entry_block(interp: Interpreter):
    for name in ("_QQmain", "main", "MAIN"):
        func = interp.functions.get(name)
        if func is not None:
            return func.regions[0].blocks[0]
    raise AssertionError("module has no main program")


def _run_jit(module):
    interp = Interpreter(module, engine="jit")
    interp.run_main()
    return interp.printed, stats_to_dict(interp.stats)


@pytest.fixture(autouse=True)
def _isolated_translation_cache():
    """Each test starts cold and leaves no store behind."""
    saved = jit.get_translation_store()
    jit.set_translation_store(None)
    jit.clear_translation_cache()
    yield
    jit.set_translation_store(saved)
    jit.clear_translation_cache()


# ---------------------------------------------------------------------------
# Bounded LRU eviction
# ---------------------------------------------------------------------------

class TestCodeCacheLRU:
    def test_full_cache_evicts_one_entry_not_all(self, monkeypatch):
        monkeypatch.setattr(jit, "_CODE_CACHE_MAX", 3)
        modules = [_compile_fir(_loop_program(f"{k}.0d0"))
                   for k in (2, 3, 5, 7)]
        interps = [Interpreter(m, engine="jit") for m in modules]
        keys = []
        for interp in interps[:3]:
            block = _entry_block(interp)
            jit.compile_block(interp, block)
            keys.append(jit.translation_key(block, interp._check_stride))
        assert len(set(keys)) == 3
        assert len(jit._CODE_CACHE) == 3

        # touch the oldest entry so it becomes most-recently-used
        jit.compile_block(interps[0], _entry_block(interps[0]))

        # overflowing evicts exactly the single LRU entry (keys[1]) —
        # the old behaviour cleared the whole cache here
        block = _entry_block(interps[3])
        jit.compile_block(interps[3], block)
        key3 = jit.translation_key(block, interps[3]._check_stride)
        assert len(jit._CODE_CACHE) == 3
        assert keys[0] in jit._CODE_CACHE
        assert keys[1] not in jit._CODE_CACHE
        assert keys[2] in jit._CODE_CACHE
        assert key3 in jit._CODE_CACHE

    def test_refilling_evicted_entry_keeps_cache_bounded(self, monkeypatch):
        monkeypatch.setattr(jit, "_CODE_CACHE_MAX", 2)
        modules = [_compile_fir(_loop_program(f"{k}.0d0"))
                   for k in (2, 3, 5)]
        interps = [Interpreter(m, engine="jit") for m in modules]
        for _ in range(2):    # cycle through all three twice
            for interp in interps:
                jit.compile_block(interp, _entry_block(interp))
                assert len(jit._CODE_CACHE) <= 2


# ---------------------------------------------------------------------------
# Fingerprint keying vs uid aliasing
# ---------------------------------------------------------------------------

class TestUidCollision:
    def test_colliding_uids_get_distinct_translations(self):
        # a long-lived daemon can see two different blocks with the same
        # _uid (uids restart after unpickling); the old (_uid, stride) key
        # would alias their translations
        mul = _program("""
  integer :: i
  real(kind=8), dimension(1024) :: a
  do i = 1, 1024
    a(i) = real(i, 8) * 2.0d0
  end do
  print *, a(1), a(1024)
""")
        add = _program("""
  integer :: i
  real(kind=8), dimension(1024) :: a
  do i = 1, 1024
    a(i) = real(i, 8) + 2.0d0
  end do
  print *, a(1), a(1024)
""")
        interp_a = Interpreter(_compile_fir(mul), engine="jit")
        interp_b = Interpreter(_compile_fir(add), engine="jit")
        block_a, block_b = _entry_block(interp_a), _entry_block(interp_b)
        block_b._uid = block_a._uid
        assert block_a._uid == block_b._uid

        key_a = jit.translation_key(block_a, interp_a._check_stride)
        key_b = jit.translation_key(block_b, interp_b._check_stride)
        assert key_a != key_b

        fn_a, _ = jit.compile_block(interp_a, block_a)
        fn_b, _ = jit.compile_block(interp_b, block_b)
        assert len(jit._CODE_CACHE) == 2
        assert fn_a.__jit_source__ != fn_b.__jit_source__

    def test_rebuilt_block_reuses_translation(self):
        # the converse guarantee: fresh frontend run, entirely new uids
        # and objects, same structure -> same key, no second translation
        interp_a = Interpreter(_compile_fir(LOOP_PROGRAM), engine="jit")
        interp_b = Interpreter(_compile_fir(LOOP_PROGRAM), engine="jit")
        block_a, block_b = _entry_block(interp_a), _entry_block(interp_b)
        assert block_a is not block_b
        assert jit.translation_key(block_a, interp_a._check_stride) == \
            jit.translation_key(block_b, interp_b._check_stride)

        before = jit.snapshot_translation_counters()
        jit.compile_block(interp_a, block_a)
        jit.compile_block(interp_b, block_b)
        delta = jit.translation_counters_delta(before)
        assert delta["misses"] == 1
        assert delta["memory_hits"] == 1
        assert len(jit._CODE_CACHE) == 1


# ---------------------------------------------------------------------------
# The disk tier (simulated process restarts in-process)
# ---------------------------------------------------------------------------

class _TamperingStore:
    """Wraps a real store, rewriting looked-up payloads (corruption sim)."""

    def __init__(self, inner, rewrite):
        self._inner = inner
        self._rewrite = rewrite

    def lookup(self, key):
        payload = self._inner.lookup(key)
        return self._rewrite(dict(payload)) if payload is not None else None

    def store(self, key, payload):
        self._inner.store(key, payload)

    def contains(self, key):
        return self._inner.contains(key)


class TestDiskTier:
    @pytest.fixture
    def store(self, tmp_path):
        return JitTranslationStore(
            ArtifactCache(cache_dir=str(tmp_path / "artifacts")))

    def _seed(self, store):
        """Cold run that populates ``store``; returns (printed, stats)."""
        jit.set_translation_store(store)
        before = jit.snapshot_translation_counters()
        printed, stats = _run_jit(_compile_fir(LOOP_PROGRAM))
        delta = jit.translation_counters_delta(before)
        assert delta["misses"] >= 1
        assert delta["stores"] == delta["misses"]
        assert delta["disk_hits"] == 0
        return printed, stats

    def test_fresh_process_compiles_from_stored_source(self, store):
        printed, stats = self._seed(store)
        jit.clear_translation_cache()    # simulate a fresh process

        before = jit.snapshot_translation_counters()
        warm_printed, warm_stats = _run_jit(_compile_fir(LOOP_PROGRAM))
        delta = jit.translation_counters_delta(before)
        assert delta["misses"] == 0
        assert delta["disk_hits"] >= 1
        assert warm_printed == printed
        assert warm_stats == stats

    def test_semantics_version_bump_is_clean_miss(self, store, monkeypatch):
        from repro.machine import semantics
        self._seed(store)
        jit.clear_translation_cache()

        monkeypatch.setattr(semantics, "SEMANTICS_VERSION",
                            semantics.SEMANTICS_VERSION + 1)
        before = jit.snapshot_translation_counters()
        _run_jit(_compile_fir(LOOP_PROGRAM))
        delta = jit.translation_counters_delta(before)
        assert delta["disk_hits"] == 0
        assert delta["misses"] >= 1
        assert delta["stores"] == delta["misses"]    # re-stored under new key

    def test_key_schema_version_bump_is_clean_miss(self, store, monkeypatch):
        from repro.service import jobs
        self._seed(store)
        jit.clear_translation_cache()

        monkeypatch.setattr(jobs, "KEY_SCHEMA_VERSION",
                            jobs.KEY_SCHEMA_VERSION + 1)
        before = jit.snapshot_translation_counters()
        _run_jit(_compile_fir(LOOP_PROGRAM))
        delta = jit.translation_counters_delta(before)
        assert delta["disk_hits"] == 0
        assert delta["misses"] >= 1

    def test_stale_source_payload_is_a_miss_and_restored(self, store):
        # a payload whose source does not match what this block generates
        # (foreign interpreter build, partial write) must never be used
        printed, stats = self._seed(store)
        jit.clear_translation_cache()

        def stale(payload):
            payload["source"] = "def _jit_block(env):\n    return None\n"
            return payload

        jit.set_translation_store(_TamperingStore(store, stale))
        before = jit.snapshot_translation_counters()
        warm_printed, warm_stats = _run_jit(_compile_fir(LOOP_PROGRAM))
        delta = jit.translation_counters_delta(before)
        assert delta["disk_hits"] == 0
        assert delta["misses"] >= 1
        assert delta["stores"] == delta["misses"]
        assert (warm_printed, warm_stats) == (printed, stats)

    def test_corrupt_bytecode_falls_back_to_stored_source(self, store):
        # the marshal fast path is only a shortcut: flipping its bytes
        # must fall back to compiling the (verified) source, still a hit
        printed, stats = self._seed(store)
        jit.clear_translation_cache()

        def corrupt(payload):
            payload["bytecode"] = "AAAA"
            return payload

        jit.set_translation_store(_TamperingStore(store, corrupt))
        before = jit.snapshot_translation_counters()
        warm_printed, warm_stats = _run_jit(_compile_fir(LOOP_PROGRAM))
        delta = jit.translation_counters_delta(before)
        assert delta["disk_hits"] >= 1
        assert delta["misses"] == 0
        assert (warm_printed, warm_stats) == (printed, stats)

    def test_jit_engine_promotes_cold_blocks_with_stored_translations(
            self, store):
        # tiering normally defers cold blocks to the compiled engine; a
        # stored translation instantiates for pennies, so the engine must
        # use it on first entry instead
        cold = _program("""
  integer :: i, total
  total = 0
  do i = 1, 4
    total = total + i
  end do
  print *, total
""")
        jit.set_translation_store(store)
        interp = Interpreter(_compile_fir(cold), engine="jit")
        block = _entry_block(interp)
        jit.compile_block(interp, block)    # force-translate + store
        assert store.contains(
            jit.translation_key(block, interp._check_stride))
        jit.clear_translation_cache()

        before = jit.snapshot_translation_counters()
        interp2 = Interpreter(_compile_fir(cold), engine="jit")
        interp2.run_main()
        delta = jit.translation_counters_delta(before)
        assert delta["disk_hits"] >= 1
        assert _entry_block(interp2) in interp2._jit.cache


# ---------------------------------------------------------------------------
# The real thing: two separate OS processes sharing one store directory
# ---------------------------------------------------------------------------

_SUBPROCESS_DRIVER = """
import json, sys
from repro.flang import FlangCompiler
from repro.machine import Interpreter
from repro.machine import jit
from repro.service.cache import ArtifactCache
from repro.service.jit_store import JitTranslationStore
from repro.service.serialization import stats_to_dict

cache_dir, source_path = sys.argv[1], sys.argv[2]
jit.set_translation_store(JitTranslationStore(ArtifactCache(cache_dir=cache_dir)))
with open(source_path) as fh:
    source = fh.read()
module = FlangCompiler().compile(source, stop_at="fir").fir_module
before = jit.snapshot_translation_counters()
interp = Interpreter(module, engine="jit")
interp.run_main()
print(json.dumps({
    "counters": jit.translation_counters_delta(before),
    "printed": interp.printed,
    "stats": stats_to_dict(interp.stats),
}))
"""


class TestCrossProcess:
    def test_translate_once_fresh_process_compiles_from_store(self, tmp_path):
        source_path = tmp_path / "program.f90"
        source_path.write_text(LOOP_PROGRAM)
        cache_dir = tmp_path / "artifacts"

        def run_once():
            env = dict(os.environ)
            root = os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))))
            env["PYTHONPATH"] = os.path.join(root, "src")
            proc = subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_DRIVER,
                 str(cache_dir), str(source_path)],
                capture_output=True, text=True, env=env, timeout=300)
            assert proc.returncode == 0, proc.stderr
            return json.loads(proc.stdout.strip().splitlines()[-1])

        cold, warm = run_once(), run_once()
        assert cold["counters"]["misses"] >= 1
        assert cold["counters"]["stores"] == cold["counters"]["misses"]
        # the second process never ran a frontend-to-jit translation: every
        # translated block came off disk, bit-identical
        assert warm["counters"]["misses"] == 0
        assert warm["counters"]["disk_hits"] >= 1
        assert warm["counters"]["hit_rate"] == 1.0
        assert warm["printed"] == cold["printed"]
        assert warm["stats"] == cold["stats"]
