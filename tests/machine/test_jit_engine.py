"""Trace-compiling jit engine corners.

The registry-wide parity suite (``test_engine_parity``) covers the broad
guarantee; these tests target the jit's *generator* mechanics specifically:
loop-body inlining (upward, downward, runtime-sign and zero-trip loops),
structured-if inlining with results, fallback thunks embedded inside
generated loops (calls, runtime intrinsics), env-residency of values that
cross the generated/fallback boundary, and the execution limit firing from
inside an inlined loop.
"""

import pytest

from repro.core import StandardMLIRCompiler
from repro.flang import FlangCompiler
from repro.machine import ExecutionLimitExceeded, Interpreter
from repro.service.serialization import stats_to_dict


def _compile_fir(source: str):
    return FlangCompiler().compile(source, stop_at="fir").fir_module


def _compile_ours(source: str):
    return StandardMLIRCompiler(vector_width=4).compile(source).optimised_module


def _assert_jit_identical(module):
    reference = Interpreter(module, engine="reference")
    reference.run_main()
    jit = Interpreter(module, engine="jit")
    jit.run_main()
    assert jit.printed == reference.printed
    assert stats_to_dict(jit.stats) == stats_to_dict(reference.stats)
    return jit


def _program(body: str) -> str:
    return f"program p\n  implicit none\n{body}\nend program p\n"


class TestLoopInlining:
    def test_upward_do_loop_with_reduction(self):
        source = _program("""
  integer :: i
  real(kind=8) :: total
  total = 0.0d0
  do i = 1, 100
    total = total + real(i, 8)
  end do
  print *, total
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            jit = _assert_jit_identical(module)
            assert jit.printed[-1].strip() == "5050.0"

    def test_downward_do_loop_negative_step(self):
        source = _program("""
  integer :: i, total
  total = 0
  do i = 10, 1, -1
    total = total + i
  end do
  print *, total
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            jit = _assert_jit_identical(module)
            assert jit.printed[-1].strip() == "55"

    def test_zero_trip_loop(self):
        source = _program("""
  integer :: i, total
  total = 7
  do i = 5, 1
    total = total + 1000
  end do
  print *, total
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            jit = _assert_jit_identical(module)
            assert jit.printed[-1].strip() == "7"

    def test_runtime_step_sign(self):
        """A step held in a variable: the jit cannot specialize the loop
        direction at generate time and must pick it at run time."""
        source = _program("""
  integer :: i, st, total
  total = 0
  st = -2
  do i = 9, 1, st
    total = total + i
  end do
  print *, total
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            jit = _assert_jit_identical(module)
            assert jit.printed[-1].strip() == "25"

    def test_nested_loops_with_array_accesses(self):
        source = _program("""
  integer :: i, j
  real(kind=8), dimension(8, 8) :: a
  real(kind=8) :: total
  total = 0.0d0
  do j = 1, 8
    do i = 1, 8
      a(i, j) = real(i * j, 8)
    end do
  end do
  do j = 1, 8
    do i = 1, 8
      total = total + a(i, j)
    end do
  end do
  print *, total
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            _assert_jit_identical(module)


class TestStructuredIfInlining:
    def test_if_else_inside_loop(self):
        source = _program("""
  integer :: i, evens, odds
  evens = 0
  odds = 0
  do i = 1, 20
    if (mod(i, 2) == 0) then
      evens = evens + 1
    else
      odds = odds + 1
    end if
  end do
  print *, evens, odds
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            jit = _assert_jit_identical(module)
            assert jit.printed[-1].split() == ["10", "10"]

    def test_untaken_arm_loop_hoist_does_not_leak(self):
        """Regression: a loop inside an if-arm hoists env reads into the
        arm-local preheader; values registered there must not shadow env
        reads emitted *after* the if, or the untaken-arm path crashes with
        UnboundLocalError."""
        source = """
subroutine work(flag, x)
  implicit none
  integer, intent(in) :: flag
  integer, intent(inout) :: x
  integer :: i
  if (flag > 0) then
    do i = 1, 3
      x = x + i
    end do
  end if
  x = x + 1
end subroutine work

program p
  implicit none
  integer :: x
  x = 1
  call work(0, x)
  print *, x
  call work(1, x)
  print *, x
end program p
"""
        for module in (_compile_fir(source), _compile_ours(source)):
            jit = _assert_jit_identical(module)
            assert [line.strip() for line in jit.printed] == ["2", "9"]

    def test_conditional_exit_falls_back_cleanly(self):
        """EXIT desugars to guarded control flow; whatever shape the flows
        produce, the jit must stay bit-identical to the reference."""
        source = _program("""
  integer :: i, total
  total = 0
  do i = 1, 100
    total = total + i
    if (total > 50) then
      exit
    end if
  end do
  print *, i, total
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            _assert_jit_identical(module)


class TestFallbackInsideGeneratedCode:
    def test_call_inside_inlined_loop(self):
        """func.call is a fallback thunk; its operands/results must cross
        the generated-code boundary through env."""
        source = """
subroutine double_it(x, y)
  implicit none
  integer, intent(in) :: x
  integer, intent(out) :: y
  y = 2 * x
end subroutine double_it

program p
  implicit none
  integer :: i, r, total
  total = 0
  do i = 1, 10
    call double_it(i, r)
    total = total + r
  end do
  print *, total
end program p
"""
        for module in (_compile_fir(source), _compile_ours(source)):
            jit = _assert_jit_identical(module)
            assert jit.printed[-1].strip() == "110"

    def test_intrinsic_reduction_inside_loop(self):
        source = _program("""
  integer :: i
  real(kind=8), dimension(16) :: v
  real(kind=8) :: total
  total = 0.0d0
  do i = 1, 16
    v(i) = real(i, 8)
  end do
  do i = 1, 4
    total = total + sum(v)
  end do
  print *, total
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            _assert_jit_identical(module)


class TestGeneratorMechanics:
    def test_loop_bodies_are_inlined_as_while_loops(self):
        source = _program("""
  integer :: i
  real(kind=8) :: total
  total = 0.0d0
  do i = 1, 50
    total = total + real(i, 8)
  end do
  print *, total
""")
        module = _compile_fir(source)
        jit = Interpreter(module, engine="jit")
        jit.run_main()
        sources = [fn.__jit_source__ for fn, _ in jit._jit.cache.values()]
        assert any("while " in text for text in sources)
        # deferred stats: counters are integer locals flushed via _ctx_counts
        assert any("_ctx_counts" in text for text in sources)

    def test_engine_name_is_validated(self):
        from repro.dialects.builtin import ModuleOp
        with pytest.raises(Exception):
            Interpreter(ModuleOp([]), engine="turbo")

    def test_execution_limit_fires_inside_inlined_loop(self):
        source = _program("""
  integer :: i
  real(kind=8) :: total
  total = 0.0d0
  do i = 1, 100000
    total = total + 1.0d0
  end do
  print *, total
""")
        module = _compile_fir(source)
        interp = Interpreter(module, max_ops=200, engine="jit")
        with pytest.raises(ExecutionLimitExceeded):
            interp.run_main()

    def test_parallel_context_stats_survive_stride_flushes(self):
        """Regression: a unit whose last inlined-loop iteration lands exactly
        on a stride-check boundary exits with ``_t == 0``; the exit flush
        must still move the accumulated category counters into the (parallel)
        context Counter.  Caught by table4 regeneration diverging on jit."""
        from repro.flows import get_flow
        from repro.workloads import get_workload

        workload = get_workload("pw-advection", openmp=True)
        module = get_flow("flang").run(workload).module
        _assert_jit_identical(module)

    def test_division_semantics_inside_generated_loops(self):
        """divsi/remsi corners run through generated code, not thunks."""
        source = _program("""
  integer :: i, q, r
  do i = -3, 3
    q = i / 2
    r = mod(i, 2)
    print *, q, r
  end do
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            jit = _assert_jit_identical(module)
        # spot-check LLVM trunc semantics on the last flow's output
        assert jit.printed[0].split() == ["-1", "-1"]
