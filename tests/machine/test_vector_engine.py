"""Whole-array vector engine corners.

The registry-wide parity suite (``test_engine_parity``) covers the broad
guarantee; these tests target the vector engine's *matcher and evaluator*
mechanics specifically: analytic stats bit-equality on zero-trip,
negative-step and runtime-bound loops, per-nest runtime fallback (hazards
detected at evaluation time must re-run the nest iteratively without
observable difference), the loop-carried-dependence declines that keep
read-modify-write nests off the whole-array path, and the match/run
accounting the examples demo reports.
"""

import pytest

from repro.core import StandardMLIRCompiler
from repro.flang import FlangCompiler
from repro.machine import ExecutionLimitExceeded, Interpreter
from repro.service.serialization import stats_to_dict


def _compile_fir(source: str):
    return FlangCompiler().compile(source, stop_at="fir").fir_module


def _compile_ours(source: str):
    return StandardMLIRCompiler(vector_width=4).compile(source).optimised_module


def _assert_vector_identical(module):
    reference = Interpreter(module, engine="reference")
    reference.run_main()
    vec = Interpreter(module, engine="vector")
    vec.run_main()
    assert vec.printed == reference.printed
    assert stats_to_dict(vec.stats) == stats_to_dict(reference.stats)
    return vec


def _program(body: str) -> str:
    return f"program p\n  implicit none\n{body}\nend program p\n"


class TestAnalyticStats:
    """The synthesized ExecutionStats must be bit-identical to iterating."""

    def test_elementwise_nest(self):
        source = _program("""
  integer :: i
  real(kind=8), dimension(64) :: a, b
  do i = 1, 64
    a(i) = real(i, 8)
  end do
  do i = 1, 64
    b(i) = a(i) * 2.0d0 + 1.0d0
  end do
  print *, b(1), b(64)
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            _assert_vector_identical(module)

    def test_zero_trip_loop(self):
        source = _program("""
  integer :: i
  real(kind=8), dimension(8) :: a
  a = 3.0d0
  do i = 5, 1
    a(i) = 1000.0d0
  end do
  print *, a(1)
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            vec = _assert_vector_identical(module)
            assert vec.printed[-1].strip() == "3.0"

    def test_negative_step_loop(self):
        source = _program("""
  integer :: i
  real(kind=8), dimension(16) :: a
  do i = 16, 1, -1
    a(i) = real(i * i, 8)
  end do
  print *, a(1), a(16)
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            _assert_vector_identical(module)

    def test_runtime_bound_loop(self):
        """Bounds held in variables: trip counts are only known when the
        nest runs, so the analytic stats must come from runtime values."""
        source = _program("""
  integer :: i, n
  real(kind=8), dimension(32) :: a
  real(kind=8) :: total
  n = 27
  total = 0.0d0
  do i = 1, n
    a(i) = real(i, 8) * 0.5d0
  end do
  do i = 1, n
    total = total + a(i)
  end do
  print *, total
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            _assert_vector_identical(module)

    def test_nested_stencil(self):
        source = _program("""
  integer :: i, j
  real(kind=8), dimension(12, 12) :: a, b
  do j = 1, 12
    do i = 1, 12
      a(i, j) = real(i + j, 8)
    end do
  end do
  b = 0.0d0
  do j = 2, 11
    do i = 2, 11
      b(i, j) = 0.25d0 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))
    end do
  end do
  print *, b(2, 2), b(11, 11)
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            _assert_vector_identical(module)


class TestFallback:
    """Nests the matcher admits but the evaluator must decline at runtime
    (or bodies the matcher declines outright) run iteratively — with
    observables bit-identical to the reference engine either way."""

    def test_fallback_inside_nest_stats(self):
        """A call in the loop body keeps the nest off the whole-array path;
        the surrounding block still runs under the vector engine and the
        stats must not drift."""
        source = _program("""
  integer :: i
  real(kind=8), dimension(16) :: a
  real(kind=8) :: s
  do i = 1, 16
    a(i) = sqrt(real(i, 8))
  end do
  s = 0.0d0
  do i = 1, 16
    s = s + a(i)
  end do
  print *, s
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            _assert_vector_identical(module)

    def test_scalar_accumulation_under_outer_loop(self):
        """Regression: a scalar cell initialised in the outer body and
        accumulated in the inner loop (``s = s + a(i)``) is a loop-carried
        dependence — broadcast evaluation once produced exactly half the
        correct sum."""
        source = _program("""
  integer :: i, k
  real(kind=8), dimension(8) :: a
  real(kind=8) :: s
  do i = 1, 8
    a(i) = real(i, 8)
  end do
  do k = 1, 2
    s = 0.0d0
    do i = 1, 8
      s = s + a(i)
    end do
    print *, s
  end do
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            vec = _assert_vector_identical(module)
            assert vec.printed[-1].strip() == "36.0"

    def test_array_read_modify_write_under_outer_loop(self):
        """Regression: an inner nest updating ``a(i) = a(i) + ...`` re-run
        by an outer loop must not read pre-nest memory for every outer
        iteration — the store pattern does not span the full nest space."""
        source = _program("""
  integer :: i, k
  real(kind=8), dimension(8) :: a
  a = 1.0d0
  do k = 1, 3
    do i = 1, 8
      a(i) = a(i) + real(k, 8)
    end do
  end do
  print *, a(1), a(8)
""")
        for module in (_compile_fir(source), _compile_ours(source)):
            vec = _assert_vector_identical(module)
            assert vec.printed[-1].strip().split()[0] == "7.0"


class TestEngineMechanics:
    def test_match_and_run_accounting(self):
        source = _program("""
  integer :: i
  real(kind=8), dimension(64) :: a
  do i = 1, 64
    a(i) = real(i, 8) * 2.0d0
  end do
  print *, a(64)
""")
        vec = _assert_vector_identical(_compile_fir(source))
        engine = vec._vector
        assert engine.matched_sites > 0
        assert engine.vector_runs > 0
        # everything here is pure element-wise: no runtime fallbacks
        assert engine.fallback_runs == 0

    def test_fallback_accounting(self):
        """A matched nest that trips a runtime hazard is counted as a
        fallback run, not a vector run going wrong."""
        source = _program("""
  integer :: i, k
  real(kind=8), dimension(8) :: a
  a = 0.0d0
  do k = 1, 3
    do i = 1, 8
      a(i) = a(i) + 1.0d0
    end do
  end do
  print *, a(4)
""")
        vec = _assert_vector_identical(_compile_fir(source))
        engine = vec._vector
        if engine.matched_sites:
            assert engine.fallback_runs > 0

    def test_execution_limit_still_fires(self):
        """Analytic stats feed the op budget: a nest whose synthesized cost
        exceeds ``max_ops`` must raise exactly like the iterative engines."""
        source = _program("""
  integer :: i
  real(kind=8), dimension(1000) :: a
  do i = 1, 1000
    a(i) = real(i, 8) * 3.0d0
  end do
  print *, a(1000)
""")
        module = _compile_fir(source)
        interp = Interpreter(module, max_ops=200, engine="vector")
        with pytest.raises(ExecutionLimitExceeded):
            interp.run_main()

    def test_engine_name_registered(self):
        from repro.machine.interpreter import ENGINE_NAMES
        assert "vector" in ENGINE_NAMES
        with pytest.raises(Exception, match="unknown interpreter engine"):
            Interpreter(_compile_fir(_program("  print *, 1")),
                        engine="vectorize")


class TestWorkFloor:
    """Tiny statically-bounded nests must stay on the iterative thunks:
    whole-array evaluation pays a planning + materialization overhead that
    a handful of element operations never amortizes (the bench's
    ``vector_vs_compiled < 1`` rows)."""

    def test_tiny_static_nest_stays_iterative(self):
        source = _program("""
  integer :: i
  real(kind=8), dimension(8) :: a
  do i = 1, 8
    a(i) = real(i, 8) * 2.0d0
  end do
  print *, a(1), a(8)
""")
        vec = _assert_vector_identical(_compile_ours(source))
        engine = vec._vector
        assert engine.floor_declined_sites > 0
        assert engine.vector_runs == 0

    def test_large_static_nest_still_vectorizes(self):
        source = _program("""
  integer :: i
  real(kind=8), dimension(4096) :: a
  do i = 1, 4096
    a(i) = real(i, 8) * 2.0d0
  end do
  print *, a(1), a(4096)
""")
        vec = _assert_vector_identical(_compile_ours(source))
        engine = vec._vector
        assert engine.floor_declined_sites == 0
        assert engine.matched_sites > 0
        # the nest ran on the whole-array path or hazard-fell back — the
        # floor kept it *eligible* either way
        assert engine.vector_runs + engine.fallback_runs > 0

    def test_runtime_bound_nest_is_assumed_hot(self):
        # flang-fir loop bounds only resolve at run time: the static
        # floor must not decline them (they estimate to None)
        source = _program("""
  integer :: i
  real(kind=8), dimension(64) :: a
  do i = 1, 64
    a(i) = real(i, 8) * 2.0d0
  end do
  print *, a(1), a(64)
""")
        vec = _assert_vector_identical(_compile_fir(source))
        engine = vec._vector
        assert engine.floor_declined_sites == 0
        assert engine.matched_sites > 0
        assert engine.vector_runs > 0

    def test_estimated_work_on_static_and_runtime_bounds(self):
        from repro.dialects import arith, scf
        from repro.ir import Block
        from repro.ir import types as T
        from repro.machine.loop_patterns import (VECTOR_WORK_FLOOR,
                                                 estimated_nest_work)

        def nest(trips):
            block = Block()
            lo = arith.ConstantOp(0, T.index)
            hi = arith.ConstantOp(trips, T.index)
            st = arith.ConstantOp(1, T.index)
            block.add_ops([lo, hi, st])
            loop = scf.ForOp(lo.result, hi.result, st.result)
            block.add_op(loop)
            loop.regions[0].blocks[0].add_op(scf.YieldOp())
            return loop

        small, large = nest(8), nest(8192)
        assert estimated_nest_work(small) < VECTOR_WORK_FLOOR
        assert estimated_nest_work(large) >= VECTOR_WORK_FLOOR

        # runtime bounds (block arguments) estimate to None: assumed hot
        block = Block()
        arg = block.add_argument(T.index)
        st = arith.ConstantOp(1, T.index)
        block.add_op(st)
        loop = scf.ForOp(st.result, arg, st.result)
        block.add_op(loop)
        loop.regions[0].blocks[0].add_op(scf.YieldOp())
        assert estimated_nest_work(loop) is None
