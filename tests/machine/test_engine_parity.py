"""Registry-wide cross-engine stats parity.

PR 3 spot-checked one polyhedron kernel and one stencil; this extends the
guarantee to **every registered workload family** (and the conformance
generator's family) and to **all registered engines**: the cached-dispatch
engine, the trace-compiling jit engine, the whole-array vector engine and
the one-op reference engine must produce bit-identical
:class:`ExecutionStats` and printed output for the same compiled module.
"""

import pytest

from repro.flows import ENGINES, get_flow
from repro.machine import Interpreter
from repro.service.serialization import stats_to_dict
from repro.workloads import all_workloads, get_workload


def _families():
    """One representative per category: the smallest kernel by modelled work."""
    by_category = {}
    for workload in all_workloads():
        by_category.setdefault(workload.category, []).append(workload)
    return sorted(
        (category,
         min(members,
             key=lambda w: w.work_model(dict(w.interp_params))).name)
        for category, members in by_category.items())


FAMILIES = _families()


def _assert_engines_identical(module):
    reference = Interpreter(module, engine="reference")
    reference.run_main()
    for engine in ENGINES:
        if engine == "reference":
            continue
        other = Interpreter(module, engine=engine)
        other.run_main()
        assert other.printed == reference.printed, engine
        assert stats_to_dict(other.stats) == \
            stats_to_dict(reference.stats), engine
        assert not other.stats.diff(reference.stats), engine


class TestEngineParityAcrossRegistry:
    def test_every_category_is_covered(self):
        assert [category for category, _ in FAMILIES] == \
            ["intrinsic", "polyhedron", "stencil"]

    @pytest.mark.parametrize(("category", "name"), FAMILIES,
                             ids=[c for c, _ in FAMILIES])
    def test_family_representative_flang_flow(self, category, name):
        result = get_flow("flang").run(get_workload(name))
        _assert_engines_identical(result.module)

    @pytest.mark.parametrize(("category", "name"), FAMILIES,
                             ids=[c for c, _ in FAMILIES])
    def test_family_representative_ours_flow(self, category, name):
        result = get_flow("ours").run(get_workload(name))
        _assert_engines_identical(result.module)

    def test_conformance_family_representative(self):
        workload = get_workload("conformance/0")
        for flow in ("flang", "ours"):
            _assert_engines_identical(get_flow(flow).run(workload).module)


class TestStatsDiff:
    def test_diff_is_empty_for_identical_stats(self):
        from repro.machine import ExecutionStats
        assert ExecutionStats().diff(ExecutionStats()) == []

    def test_diff_does_not_mutate_either_side(self):
        from repro.machine import ExecutionStats
        from repro.service.serialization import stats_to_dict
        a, b = ExecutionStats(), ExecutionStats()
        b.bump("gpu", "x")
        before_a, before_b = stats_to_dict(a), stats_to_dict(b)
        a.diff(b)
        assert "gpu" not in a.counts
        assert stats_to_dict(a) == before_a and stats_to_dict(b) == before_b

    def test_diff_names_the_diverging_field(self):
        from repro.machine import ExecutionStats
        a, b = ExecutionStats(), ExecutionStats()
        a.bump("serial", "arith")
        b.bump("parallel", "mem")
        b.runtime_calls["_FortranASumReal8"] += 1
        details = a.diff(b)
        text = "\n".join(details)
        assert "counts[serial][arith]" in text
        assert "counts[parallel][mem]" in text
        assert "runtime_calls[_FortranASumReal8]" in text
