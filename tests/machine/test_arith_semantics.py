"""Integer/float comparison and division semantics, plus dispatch-cache
regression tests: both interpreter engines (compiled thunks and the one-op
reference) must implement LLVM/MLIR arith semantics identically.
"""

import numpy as np
import pytest

from repro.dialects import arith
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir import types as T
from repro.ir.core import create_operation
from repro.machine import Interpreter
from repro.service.serialization import stats_to_dict

from ..conftest import run_flang, run_ours

ENGINES = pytest.mark.parametrize("engine",
                                  ["compiled", "reference", "jit", "vector"])

NAN = float("nan")


def _interpret(arg_types, build, *, engine, args=()):
    """Build main(arg_types) from ``build(block_args)`` and run it.

    ``build`` returns (ops, result_values); the function is executed with
    ``args`` on the requested engine and the return values are returned.
    """
    fn = FuncOp("main", T.FunctionType(tuple(arg_types), ()))
    ops, results = build(fn.entry_block.args)
    for op in ops:
        fn.entry_block.add_op(op)
    fn.entry_block.add_op(ReturnOp(results))
    module = ModuleOp([fn])
    interp = Interpreter(module, engine=engine)
    return interp.call("main", list(args))


def _eval_binary(op_name, a, b, operand_type, *, engine):
    def build(args):
        op = create_operation(op_name, operands=list(args),
                              result_types=[operand_type])
        return [op], [op.results[0]]
    (result,) = _interpret([operand_type, operand_type], build,
                           engine=engine, args=[a, b])
    return result


def _eval_cmpi(predicate, a, b, operand_type, *, engine):
    def build(args):
        op = arith.CmpIOp(predicate, args[0], args[1])
        return [op], [op.results[0]]
    (result,) = _interpret([operand_type, operand_type], build,
                           engine=engine, args=[a, b])
    return result


def _eval_cmpf(predicate, a, b, *, engine):
    def build(args):
        op = arith.CmpFOp(predicate, args[0], args[1])
        return [op], [op.results[0]]
    (result,) = _interpret([T.f64, T.f64], build,
                           engine=engine, args=[a, b])
    return result


class TestCmpISemantics:
    @ENGINES
    def test_signed_predicates_on_negatives(self, engine):
        assert _eval_cmpi("slt", -1, 1, T.i32, engine=engine)
        assert _eval_cmpi("sge", 1, -1, T.i32, engine=engine)
        assert not _eval_cmpi("sgt", -5, -3, T.i32, engine=engine)

    @ENGINES
    def test_unsigned_predicates_reinterpret_negatives(self, engine):
        # -1 is the largest i32 when reinterpreted as unsigned
        assert _eval_cmpi("ugt", -1, 1, T.i32, engine=engine)
        assert not _eval_cmpi("ult", -1, 1, T.i32, engine=engine)
        assert _eval_cmpi("uge", -1, 2**31, T.i32, engine=engine)
        # ordering among negatives is preserved (both wrap high)
        assert _eval_cmpi("ult", -5, -3, T.i32, engine=engine)
        assert _eval_cmpi("ule", -3, -3, T.i32, engine=engine)

    def test_reinterpretation_is_width_aware(self):
        from repro.machine.semantics import as_unsigned
        assert as_unsigned(-1, 32) == 2**32 - 1
        assert as_unsigned(-1, 64) == 2**64 - 1
        assert as_unsigned(-1, 8) == 255
        assert as_unsigned(True, 1) == 1
        # out-of-range values wrap at the declared width, scalar and ndarray
        assert as_unsigned(2**33, 32) == 0
        arr = np.array([-1, -128], dtype=np.int32)
        assert list(as_unsigned(arr, 32)) == [2**32 - 1, 2**32 - 128]
        assert as_unsigned(arr, 32).dtype == np.uint32
        assert as_unsigned(np.array([-1], dtype=np.int64), 64).dtype == np.uint64

    @ENGINES
    def test_unsigned_predicates_at_both_widths(self, engine):
        # -1 reinterprets to 2^64-1 at i64 and 2^32-1 at i32; both exceed 2^31
        assert _eval_cmpi("ugt", -1, 2**31, T.i64, engine=engine)
        assert _eval_cmpi("ugt", -1, 2**31, T.i32, engine=engine)

    @ENGINES
    def test_unsigned_predicates_on_ndarrays(self, engine):
        a = np.array([-1, 2, -5], dtype=np.int32)
        b = np.array([1, 2, -3], dtype=np.int32)
        result = _eval_cmpi("ult", a, b, T.i32, engine=engine)
        assert list(result) == [False, False, True]
        result = _eval_cmpi("uge", a, b, T.i32, engine=engine)
        assert list(result) == [True, True, False]


class TestCmpFSemantics:
    @ENGINES
    def test_ordered_predicates_false_on_nan(self, engine):
        for pred in ("oeq", "one", "olt", "ole", "ogt", "oge"):
            assert not _eval_cmpf(pred, NAN, 1.0, engine=engine)
            assert not _eval_cmpf(pred, 1.0, NAN, engine=engine)

    @ENGINES
    def test_unordered_predicates_true_on_nan(self, engine):
        for pred in ("ueq", "une", "ult", "ule", "ugt", "uge"):
            assert _eval_cmpf(pred, NAN, 1.0, engine=engine)
            assert _eval_cmpf(pred, 1.0, NAN, engine=engine)

    @ENGINES
    def test_ord_uno_detect_nan(self, engine):
        assert _eval_cmpf("ord", 1.0, 2.0, engine=engine)
        assert not _eval_cmpf("ord", NAN, 2.0, engine=engine)
        assert not _eval_cmpf("uno", 1.0, 2.0, engine=engine)
        assert _eval_cmpf("uno", 1.0, NAN, engine=engine)

    @ENGINES
    def test_behave_as_ordered_without_nan(self, engine):
        assert _eval_cmpf("ueq", 2.0, 2.0, engine=engine)
        assert not _eval_cmpf("ueq", 1.0, 2.0, engine=engine)
        assert _eval_cmpf("one", 1.0, 2.0, engine=engine)
        assert not _eval_cmpf("une", 2.0, 2.0, engine=engine)

    @ENGINES
    def test_vectorized_nan_semantics(self, engine):
        a = np.array([1.0, NAN, 3.0])
        b = np.array([1.0, 2.0, NAN])
        assert list(_eval_cmpf("oeq", a, b, engine=engine)) == \
            [True, False, False]
        assert list(_eval_cmpf("ueq", a, b, engine=engine)) == \
            [True, True, True]
        assert list(_eval_cmpf("one", a, b, engine=engine)) == \
            [False, False, False]
        assert list(_eval_cmpf("ord", a, b, engine=engine)) == \
            [True, False, False]
        assert list(_eval_cmpf("uno", a, b, engine=engine)) == \
            [False, True, True]


class TestIntegerDivision:
    """divsi/remsi follow LLVM sdiv/srem (truncate toward zero, remainder
    takes the dividend's sign); floordivsi/ceildivsi round toward -inf/+inf.
    Division by zero consistently yields 0 on every path."""

    CASES = [(-7, 2, -3, -1), (7, -2, -3, 1), (-7, -2, 3, -1), (7, 2, 3, 1),
             (-6, 3, -2, 0), (5, 0, 0, 0)]

    @ENGINES
    def test_divsi_remsi_scalar(self, engine):
        for a, b, q, r in self.CASES:
            assert _eval_binary("arith.divsi", a, b, T.i32,
                                engine=engine) == q, (a, b)
            assert _eval_binary("arith.remsi", a, b, T.i32,
                                engine=engine) == r, (a, b)

    @ENGINES
    def test_divsi_remsi_ndarray_matches_scalar(self, engine):
        a = np.array([c[0] for c in self.CASES], dtype=np.int64)
        b = np.array([c[1] for c in self.CASES], dtype=np.int64)
        q = _eval_binary("arith.divsi", a, b, T.i64,
                         engine=engine)
        r = _eval_binary("arith.remsi", a, b, T.i64,
                         engine=engine)
        assert list(q) == [c[2] for c in self.CASES]
        assert list(r) == [c[3] for c in self.CASES]

    @ENGINES
    def test_floordiv_ceildiv_negative_operands(self, engine):
        for a, b, floor_q, ceil_q in [(-7, 2, -4, -3), (7, -2, -4, -3),
                                      (7, 2, 3, 4), (-7, -2, 3, 4),
                                      (5, 0, 0, 0)]:
            assert _eval_binary("arith.floordivsi", a, b, T.i64,
                                engine=engine) == floor_q, (a, b)
            assert _eval_binary("arith.ceildivsi", a, b, T.i64,
                                engine=engine) == ceil_q, (a, b)

    @ENGINES
    def test_floordiv_ceildiv_ndarray(self, engine):
        a = np.array([-7, 7, 7, -7, 5], dtype=np.int64)
        b = np.array([2, -2, 2, -2, 0], dtype=np.int64)
        floor_q = _eval_binary("arith.floordivsi", a, b, T.i64,
                               engine=engine)
        ceil_q = _eval_binary("arith.ceildivsi", a, b, T.i64,
                              engine=engine)
        assert list(floor_q) == [-4, -4, 3, 3, 0]
        assert list(ceil_q) == [-3, -3, 4, 4, 0]

    def test_fortran_division_and_mod_on_negatives(self):
        """End-to-end: Fortran ``/`` truncates toward zero and ``mod`` takes
        the dividend's sign, through both compilation flows."""
        src = """
program p
  implicit none
  integer :: q, r
  q = (-7) / 2
  r = mod(-7, 2)
  print *, q, r
end program p
"""
        for interp in (run_flang(src), run_ours(src)):
            assert interp.printed[-1].split() == ["-3", "-1"]


class TestDispatchCacheRegression:
    """The compiled (cached-dispatch) engine must be observationally
    identical to the one-op reference engine: same printed output, same
    statistics, bit for bit."""

    def _assert_engines_identical(self, module):
        reference = Interpreter(module, engine="reference")
        reference.run_main()
        for engine in ("compiled", "jit"):
            other = Interpreter(module, engine=engine)
            other.run_main()
            assert other.printed == reference.printed, engine
            assert stats_to_dict(other.stats) == \
                stats_to_dict(reference.stats), engine

    def test_polyhedron_workload_stats_equality(self, flang_compiler,
                                                standard_compiler):
        from repro.workloads import get_workload
        source = get_workload("ac").source(scaled=True)
        self._assert_engines_identical(
            flang_compiler.compile(source, stop_at="fir").fir_module)
        self._assert_engines_identical(
            standard_compiler.compile(source).optimised_module)

    def test_stencil_workload_stats_equality(self, standard_compiler,
                                             simple_program_source):
        self._assert_engines_identical(
            standard_compiler.compile(simple_program_source).optimised_module)

    @ENGINES
    def test_execution_limit_still_enforced(self, engine,
                                            standard_compiler,
                                            simple_program_source):
        from repro.machine import ExecutionLimitExceeded
        result = standard_compiler.compile(simple_program_source)
        interp = Interpreter(result.optimised_module, max_ops=50,
                             engine=engine)
        with pytest.raises(ExecutionLimitExceeded):
            interp.run_main()
