"""Tests for the execution substrate: interpreter, machine models, profiler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import (ARCHER2, CRAY_PROFILE, FLANG_V20_PROFILE,
                           GNU_PROFILE, OURS_PROFILE, ExecutionStats,
                           FortranArray, Interpreter, PerformanceModel,
                           WorkloadScaling, profile_stats)
from repro.machine.values import Cell, ElementPtr

from ..conftest import last_value, run_flang, run_ours


class TestValues:
    @given(st.lists(st.integers(1, 6), min_size=1, max_size=3), st.data())
    @settings(max_examples=25, deadline=None)
    def test_fortran_array_column_major_indexing(self, shape, data):
        arr = FortranArray(shape)
        indices = [data.draw(st.integers(1, s)) for s in shape]
        arr.set(indices, 42.5)
        assert arr.get(indices) == 42.5
        # column-major: the flat index of (1,1,..) is 0
        assert arr.flat_index([1] * len(shape)) == 0
        # round-trip through the numpy view
        as_np = arr.as_numpy()
        assert as_np[tuple(i - 1 for i in indices)] == 42.5

    def test_cell_and_element_ptr(self):
        cell = Cell(3)
        ptr = ElementPtr(cell)
        assert ptr.load() == 3
        ptr.store(7)
        assert cell.value == 7

    def test_element_ptr_flat_index(self):
        arr = FortranArray([4, 4])
        ptr = ElementPtr(arr, flat=5)
        ptr.store(9.0)
        assert arr.data[5] == 9.0


class TestInterpreter:
    def test_scalar_arithmetic_program(self):
        src = """
program p
  implicit none
  real(kind=8) :: x
  integer :: i
  x = 1.5d0
  i = 3
  x = x * real(i, 8) + 2.0d0 ** 2
  print *, x
end program p
"""
        assert last_value(run_flang(src)) == pytest.approx(8.5)
        assert last_value(run_ours(src)) == pytest.approx(8.5)

    def test_function_call_and_return_value(self, conditional_source):
        interp = run_ours(conditional_source)
        assert interp.printed[-1].split() == ["1", "2"]

    def test_stats_categories_populated(self, simple_program_source):
        interp = run_ours(simple_program_source)
        stats = interp.stats
        assert stats.total("float_arith") > 0
        assert stats.total("load") > 0
        assert stats.total("store") > 0
        assert stats.total_ops > 0

    def test_parallel_context_tracked(self):
        from repro.workloads import jacobi
        src = jacobi(openmp=True).source(scaled=True)
        interp = run_flang(src)
        assert interp.stats.parallel_regions > 0
        assert "parallel" in interp.stats.counts

    def test_gpu_context_tracked(self):
        from repro.workloads import pw_advection
        src = pw_advection(openacc=True).source(scaled=True)
        interp = run_ours(src, gpu=True)
        assert interp.stats.gpu_kernel_launches >= 1
        assert interp.stats.gpu_threads > 0

    def test_execution_limit(self, simple_program_source, standard_compiler):
        result = standard_compiler.compile(simple_program_source)
        from repro.machine import ExecutionLimitExceeded
        interp = Interpreter(result.optimised_module, max_ops=50)
        with pytest.raises(ExecutionLimitExceeded):
            interp.run_main()


class TestPerformanceModel:
    def _stats(self, **categories) -> ExecutionStats:
        stats = ExecutionStats()
        for key, value in categories.items():
            stats.counts["serial"][key] = value
        return stats

    def test_more_work_takes_longer(self):
        model = PerformanceModel()
        small = model.cpu_runtime(self._stats(float_arith=1e6, load=1e6),
                                  WorkloadScaling(work_ratio=1.0))
        large = model.cpu_runtime(self._stats(float_arith=1e6, load=1e6),
                                  WorkloadScaling(work_ratio=10.0))
        assert large.total_s > small.total_s

    def test_vectorised_counts_run_faster(self):
        model = PerformanceModel()
        scalar = self._stats(float_arith=8e6, load=8e6, store=2e6)
        vector = self._stats(vector_float=2e6, vector_load=2e6, vector_store=5e5)
        s = model.cpu_runtime(scalar, WorkloadScaling())
        v = model.cpu_runtime(vector, WorkloadScaling())
        assert v.total_s < s.total_s

    def test_cray_profile_beats_flang_profile_on_identical_counts(self):
        model = PerformanceModel()
        stats = self._stats(float_arith=5e6, load=6e6, store=2e6,
                            index_arith=8e6, loop_iter=1e6)
        cray = model.cpu_runtime(stats, WorkloadScaling(), CRAY_PROFILE)
        flang = model.cpu_runtime(stats, WorkloadScaling(), FLANG_V20_PROFILE)
        gnu = model.cpu_runtime(stats, WorkloadScaling(), GNU_PROFILE)
        assert cray.total_s < gnu.total_s < flang.total_s

    def test_threading_reduces_runtime_until_bandwidth_saturates(self):
        model = PerformanceModel()
        stats = self._stats(float_arith=2e7, load=2e7, store=5e6, loop_iter=1e6)
        scaling = WorkloadScaling(work_ratio=1.0, parallel_fraction=0.98,
                                  working_set_bytes=8e9)
        serial = model.cpu_runtime(stats, scaling, OURS_PROFILE, threads=1)
        t8 = model.cpu_runtime(stats, scaling, OURS_PROFILE, threads=8)
        t64 = model.cpu_runtime(stats, scaling, OURS_PROFILE, threads=64)
        assert t8.total_s < serial.total_s
        assert t64.total_s <= t8.total_s
        speedup_64 = serial.total_s / t64.total_s
        assert speedup_64 < 64  # bandwidth-bound: far from ideal scaling

    def test_cache_fit_allows_superlinear_scaling(self):
        """Working sets that drop into aggregate cache scale better (jacobi)."""
        model = PerformanceModel()
        stats = self._stats(float_arith=1e6, load=6e7, store=2e7, loop_iter=1e6)
        big = WorkloadScaling(parallel_fraction=0.99, working_set_bytes=100e9)
        small = WorkloadScaling(parallel_fraction=0.99, working_set_bytes=16e6)
        speed_big = model.cpu_runtime(stats, big, OURS_PROFILE, 1).total_s / \
            model.cpu_runtime(stats, big, OURS_PROFILE, 64).total_s
        speed_small = model.cpu_runtime(stats, small, OURS_PROFILE, 1).total_s / \
            model.cpu_runtime(stats, small, OURS_PROFILE, 64).total_s
        assert speed_small > speed_big

    def test_gpu_runtime_scales_with_work(self):
        model = PerformanceModel()
        stats = ExecutionStats()
        stats.counts["gpu"]["float_arith"] = 1e6
        stats.counts["gpu"]["load"] = 1e6
        stats.gpu_kernel_launches = 1
        small = model.gpu_runtime(stats, WorkloadScaling(work_ratio=1e3))
        large = model.gpu_runtime(stats, WorkloadScaling(work_ratio=1e4))
        assert large.total_s > small.total_s

    @given(st.floats(1.0, 1e6), st.floats(0.0, 1e6))
    @settings(max_examples=30, deadline=None)
    def test_runtime_is_positive_and_monotone_in_flops(self, flops, loads):
        model = PerformanceModel()
        base = self._stats(float_arith=flops, load=loads)
        more = self._stats(float_arith=flops * 2 + 1, load=loads)
        t_base = model.cpu_runtime(base, WorkloadScaling()).total_s
        t_more = model.cpu_runtime(more, WorkloadScaling()).total_s
        assert t_base > 0
        assert t_more >= t_base


class TestProfiler:
    def test_flang_profile_is_scalar_ours_is_vectorised(self):
        """Section IV: Flang's executables are entirely scalar; the standard
        flow vectorises the stencil loops."""
        from repro.workloads import jacobi
        src = jacobi().source(scaled=True)
        flang_mix = profile_stats(run_flang(src).stats)
        ours_mix = profile_stats(run_ours(src).stats)
        assert flang_mix.vectorised_fp_fraction == 0.0
        assert ours_mix.vectorised_fp_fraction > 0.0
        assert flang_mix.total_instructions > ours_mix.total_instructions


class TestEngineParameterisedProfiling:
    """profile_module / modeled_runtime accept the engine as an argument;
    since all engines are stats-identical, the derived numbers must be
    engine-independent, bit for bit."""

    def _module(self, standard_compiler, simple_program_source):
        return standard_compiler.compile(simple_program_source).optimised_module

    def test_profile_module_is_engine_independent(self, standard_compiler,
                                                  simple_program_source):
        from repro.machine import profile_module
        module = self._module(standard_compiler, simple_program_source)
        mixes = [profile_module(module, engine=engine).as_dict()
                 for engine in ("compiled", "reference", "jit")]
        assert mixes[0] == mixes[1] == mixes[2]
        assert mixes[0]["total_instructions"] > 0

    def test_modeled_runtime_is_engine_independent(self, standard_compiler,
                                                   simple_program_source):
        from repro.machine import WorkloadScaling, modeled_runtime
        module = self._module(standard_compiler, simple_program_source)
        scaling = WorkloadScaling(work_ratio=10.0, working_set_bytes=1 << 20)
        runs = [modeled_runtime(module, scaling, engine=engine).as_dict()
                for engine in ("compiled", "reference", "jit")]
        assert runs[0] == runs[1] == runs[2]
        assert runs[0]["total_s"] > 0
