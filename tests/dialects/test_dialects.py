"""Dialect-level unit tests: op construction, accessors, FIR types."""

import pytest

from repro.dialects import (FLANG_DIALECTS, STANDARD_DIALECTS, arith, fir,
                            hlfir, linalg, memref, omp, scf, vector)
from repro.ir import types as T
from repro.ir.core import OP_REGISTRY, Block


class TestRegistry:
    def test_many_ops_registered(self):
        assert len(OP_REGISTRY) > 150

    def test_dialect_partition(self):
        assert "fir" in FLANG_DIALECTS and "hlfir" in FLANG_DIALECTS
        assert "scf" in STANDARD_DIALECTS and "memref" in STANDARD_DIALECTS
        assert not (FLANG_DIALECTS & STANDARD_DIALECTS)


class TestFirTypes:
    def test_reference_and_box_printing(self):
        t = fir.ReferenceType(fir.BoxType(fir.HeapType(
            fir.SequenceType([T.DYNAMIC], T.f64))))
        assert t.mlir() == "!fir.ref<!fir.box<!fir.heap<!fir.array<?xf64>>>>"

    def test_sequence_static_shape(self):
        seq = fir.SequenceType([8, 4], T.f32)
        assert seq.has_static_shape() and seq.rank == 2
        assert fir.element_type_of(fir.ReferenceType(seq)) == T.f32

    def test_record_type_members(self):
        rec = fir.RecordType("point", [("x", T.f64), ("y", T.f64)])
        assert rec.member_type("y") == T.f64
        assert rec.member_index("x") == 0
        with pytest.raises(KeyError):
            rec.member_type("z")


class TestOpConstruction:
    def test_scf_for_accessors(self):
        lb = arith.ConstantOp(0, T.index)
        ub = arith.ConstantOp(10, T.index)
        step = arith.ConstantOp(1, T.index)
        loop = scf.ForOp(lb.result, ub.result, step.result)
        assert loop.lower_bound is lb.result
        assert loop.induction_variable.type == T.index
        assert loop.body.parent.parent is loop

    def test_scf_parallel_operand_partition(self):
        c = [arith.ConstantOp(i, T.index) for i in (0, 0, 8, 8, 1, 1)]
        par = scf.ParallelOp([c[0].result, c[1].result],
                             [c[2].result, c[3].result],
                             [c[4].result, c[5].result])
        assert par.rank == 2
        assert list(par.upper_bounds) == [c[2].result, c[3].result]
        assert len(par.induction_variables) == 2

    def test_memref_load_rank_check(self):
        alloc = memref.AllocaOp(T.MemRefType([4, 4], T.f64))
        idx = arith.ConstantOp(0, T.index)
        with pytest.raises(ValueError):
            memref.LoadOp(alloc.results[0], [idx.result])  # needs 2 indices

    def test_memref_alloc_dynamic_size_check(self):
        with pytest.raises(ValueError):
            memref.AllocOp(T.MemRefType([T.DYNAMIC], T.f64), [])

    def test_alloca_scope_single_block_verifier(self):
        scope = memref.AllocaScopeOp()
        scope.regions[0].add_block(Block())
        with pytest.raises(ValueError):
            scope.verify_()

    def test_fir_do_loop_and_iterate_while(self):
        lb = arith.ConstantOp(1, T.index)
        ub = arith.ConstantOp(8, T.index)
        st = arith.ConstantOp(1, T.index)
        ok = arith.ConstantOp(True, T.i1)
        loop = fir.DoLoopOp(lb.result, ub.result, st.result)
        assert loop.results[0].type == T.index
        iw = fir.IterateWhileOp(lb.result, ub.result, st.result, ok.result)
        assert iw.results[1].type == T.i1
        assert iw.body.args[1].type == T.i1

    def test_hlfir_declare_attrs(self):
        alloca = fir.AllocaOp(T.i32, bindc_name="i")
        declare = hlfir.DeclareOp(alloca.result, uniq_name="i",
                                  fortran_attrs=["intent_in", "allocatable"])
        assert declare.uniq_name == "i"
        assert declare.has_fortran_attr("allocatable")
        assert len(declare.results) == 2

    def test_linalg_reduce_dimensions(self):
        src = memref.AllocaOp(T.MemRefType([4, 4], T.f64))
        out = memref.AllocaOp(T.MemRefType([], T.f64))
        red = linalg.ReduceOp(src.results[0], out.results[0], [0, 1])
        assert red.dimensions == (0, 1)
        assert len(red.body.args) == 2

    def test_vector_reduction_kind_check(self):
        v = vector.BroadcastOp(T.VectorType([4], T.f64),
                               arith.ConstantOp(1.0, T.f64).result)
        with pytest.raises(ValueError):
            vector.ReductionOp("bogus", v.results[0])

    def test_cmp_predicates_validated(self):
        a = arith.ConstantOp(1, T.i32)
        with pytest.raises(ValueError):
            arith.CmpIOp("nonsense", a.result, a.result)

    def test_omp_wsloop_accessors(self):
        c = [arith.ConstantOp(i, T.index) for i in (0, 10, 1)]
        ws = omp.WsLoopOp([c[0].result], [c[1].result], [c[2].result])
        assert ws.rank == 1
        assert list(ws.steps) == [c[2].result]
