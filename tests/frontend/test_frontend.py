"""Frontend tests: lexer, parser, semantics and HLFIR/FIR lowering."""

import pytest

from repro.frontend import (LexError, ParseError, analyze, lower_to_hlfir,
                            parse_source, tokenize)
from repro.frontend import ast_nodes as ast
from repro.frontend import ftypes
from repro.ir.printer import print_op
from repro.dialects import dialects_used


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("x = y + 2.5d0 * n\n")
        kinds = [t.kind for t in toks]
        assert kinds[0] == "NAME"
        assert "REAL" in kinds
        assert kinds[-1] == "EOF"

    def test_case_insensitive_names(self):
        toks = tokenize("Integer :: MyVar\n")
        assert toks[0].value == "integer"
        assert any(t.value == "myvar" for t in toks)

    def test_continuation_lines_joined(self):
        toks = tokenize("x = 1 + &\n    2\n")
        values = [t.value for t in toks if t.kind in ("INT", "OP", "NAME")]
        assert values == ["x", "=", "1", "+", "2"]

    def test_comments_stripped(self):
        toks = tokenize("y = 1  ! a comment\n! full line comment\n")
        assert all(t.kind != "NAME" or t.value == "y" for t in toks)

    def test_openmp_directive_token(self):
        toks = tokenize("!$omp parallel do\ndo i = 1, 10\nend do\n")
        assert toks[0].kind == "DIRECTIVE"
        assert toks[0].value.startswith("omp parallel do")

    def test_dot_operators(self):
        toks = tokenize("flag = a .and. .not. b\n")
        ops = [t.value for t in toks if t.kind == "OP"]
        assert ".and." in ops and ".not." in ops

    def test_relational_words(self):
        toks = tokenize("if (a .lt. b) x = 1\n")
        assert any(t.value == ".lt." for t in toks)

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("s = 'oops\n")


class TestParser:
    def test_program_structure(self):
        unit = parse_source("""
program demo
  implicit none
  integer :: i
  i = 1
end program demo
""")
        assert len(unit.subprograms) == 1
        assert unit.subprograms[0].kind == "program"
        assert unit.subprograms[0].name == "demo"

    def test_subroutine_and_function(self):
        unit = parse_source("""
subroutine s(a)
  integer, intent(in) :: a
end subroutine s

function f(x) result(y)
  real(kind=8), intent(in) :: x
  real(kind=8) :: y
  y = x * 2.0d0
end function f
""")
        names = {sp.name: sp.kind for sp in unit.subprograms}
        assert names == {"s": "subroutine", "f": "function"}
        assert unit.find_subprogram("f").result_name == "y"

    def test_if_else_chain(self):
        unit = parse_source("""
program p
  integer :: a, b
  a = 3
  if (a > 2) then
    b = 1
  else if (a > 1) then
    b = 2
  else
    b = 3
  end if
end program p
""")
        body = unit.subprograms[0].body
        if_block = [s for s in body if isinstance(s, ast.IfBlock)][0]
        assert len(if_block.conditions) == 2
        assert len(if_block.else_body) == 1

    def test_do_loop_with_step(self):
        unit = parse_source("""
program p
  integer :: i, s
  s = 0
  do i = 10, 1, -2
    s = s + i
  end do
end program p
""")
        loop = [s for s in unit.subprograms[0].body if isinstance(s, ast.DoLoop)][0]
        assert isinstance(loop.step, ast.UnaryOp)

    def test_select_case_values_ranges_and_default(self):
        unit = parse_source("""
program p
  integer :: x, y
  x = 3
  select case (x)
  case (1, 2)
    y = 1
  case (4:9)
    y = 2
  case (:0)
    y = 3
  case default
    y = 4
  end select
end program p
""")
        select = [s for s in unit.subprograms[0].body
                  if isinstance(s, ast.SelectCase)][0]
        assert len(select.cases) == 3
        assert [len(c.items) for c in select.cases] == [2, 1, 1]
        assert not select.cases[0].items[0].is_range
        assert select.cases[1].items[0].is_range
        assert select.cases[2].items[0].lower is None
        assert select.default_body

    def test_select_case_one_word_endselect(self):
        unit = parse_source("""
program p
  integer :: x, y
  x = 1
  select case (x)
  case (1)
    y = 1
  endselect
end program p
""")
        assert any(isinstance(s, ast.SelectCase)
                   for s in unit.subprograms[0].body)

    def test_do_while_and_exit(self):
        unit = parse_source("""
program p
  integer :: i
  i = 0
  do while (i < 5)
    i = i + 1
  end do
  do i = 1, 100
    if (i > 3) then
      exit
    end if
  end do
end program p
""")
        body = unit.subprograms[0].body
        assert any(isinstance(s, ast.DoWhile) for s in body)

    def test_allocate_deallocate(self):
        unit = parse_source("""
program p
  real(kind=8), dimension(:,:), allocatable :: a
  allocate(a(10, 20))
  deallocate(a)
end program p
""")
        body = unit.subprograms[0].body
        alloc = [s for s in body if isinstance(s, ast.AllocateStmt)][0]
        assert alloc.allocations[0][0] == "a"
        assert len(alloc.allocations[0][1]) == 2

    def test_array_section_subscript(self):
        unit = parse_source("""
program p
  real(kind=8), dimension(10, 10) :: a
  call consume(a(2:5, 3))
end program p
""")
        call = [s for s in unit.subprograms[0].body if isinstance(s, ast.CallStmt)][0]
        arg = call.args[0]
        assert isinstance(arg, ast.CallOrIndex)
        assert isinstance(arg.args[0], ast.SliceTriplet)

    def test_derived_type_definition(self):
        unit = parse_source("""
program p
  type :: point
    real(kind=8) :: x
    real(kind=8) :: y
  end type point
  type(point) :: origin
  origin%x = 1.0d0
end program p
""")
        sp = unit.subprograms[0]
        assert sp.derived_types[0].name == "point"
        assert len(sp.derived_types[0].components) == 2

    def test_openacc_region(self):
        unit = parse_source("""
program p
  integer :: i
  real(kind=8), dimension(100) :: a
!$acc kernels
  do i = 1, 100
    a(i) = 1.0d0
  end do
!$acc end kernels
end program p
""")
        body = unit.subprograms[0].body
        region = [s for s in body if isinstance(s, ast.DirectiveRegion)][0]
        assert region.directive.startswith("acc")
        assert any(isinstance(s, ast.DoLoop) for s in region.body)

    def test_openmp_attaches_to_loop(self):
        unit = parse_source("""
program p
  integer :: i
  real(kind=8), dimension(100) :: a
!$omp parallel do
  do i = 1, 100
    a(i) = 2.0d0
  end do
end program p
""")
        loop = [s for s in unit.subprograms[0].body if isinstance(s, ast.DoLoop)][0]
        assert loop.directives and loop.directives[0].startswith("omp")

    def test_parse_error_on_garbage(self):
        with pytest.raises((ParseError, LexError)):
            parse_source("program p\n  x ===== 3\nend program p\n")


class TestSemantics:
    def _analyze(self, src):
        return analyze(parse_source(src))

    def test_symbol_types(self):
        res = self._analyze("""
program p
  implicit none
  integer :: i
  real(kind=8), dimension(4, 5) :: a
  real(kind=8), dimension(:), allocatable :: b
  i = 1
end program p
""")
        syms = res.subprograms["p"].symbols
        assert syms.lookup("i").ftype.base == "integer"
        a = syms.lookup("a").ftype
        assert a.shape() == (4, 5) and a.has_static_shape
        b = syms.lookup("b").ftype
        assert b.allocatable and not b.has_static_shape

    def test_parameter_folding_in_dimensions(self):
        res = self._analyze("""
program p
  implicit none
  integer, parameter :: n = 16
  real(kind=8), dimension(n, 2 * n) :: grid
  grid(1, 1) = 0.0d0
end program p
""")
        g = res.subprograms["p"].symbols.lookup("grid").ftype
        assert g.shape() == (16, 32)

    def test_intrinsic_vs_array_resolution(self):
        res = self._analyze("""
program p
  implicit none
  real(kind=8), dimension(10) :: v, sums
  real(kind=8) :: t
  v(1) = 1.0d0
  sums(1) = 2.0d0
  t = sum(v) + sums(1)
end program p
""")
        sp = res.subprograms["p"].subprogram
        assign = [s for s in sp.body if isinstance(s, ast.Assignment)][-1]
        add = assign.value
        assert isinstance(add.lhs, ast.IntrinsicCall)
        assert isinstance(add.rhs, ast.ArrayRef)

    def test_function_result_typing(self):
        res = self._analyze("""
function area(r) result(a)
  implicit none
  real(kind=8), intent(in) :: r
  real(kind=8) :: a
  a = 3.14159d0 * r * r
end function area

program p
  implicit none
  real(kind=8) :: x
  x = area(2.0d0)
end program p
""")
        assign = [s for s in res.subprograms["p"].subprogram.body
                  if isinstance(s, ast.Assignment)][0]
        assert isinstance(assign.value, ast.FunctionCall)
        assert assign.value.ftype.base == "real"
        assert assign.value.ftype.kind == 8

    def test_numeric_promotion(self):
        res = self._analyze("""
program p
  implicit none
  integer :: i
  real(kind=8) :: x
  i = 3
  x = i * 2.5d0
end program p
""")
        assign = [s for s in res.subprograms["p"].subprogram.body
                  if isinstance(s, ast.Assignment)][-1]
        assert assign.value.ftype.base == "real"
        assert assign.value.ftype.kind == 8


class TestLowering:
    def test_conditional_matches_paper_listing2(self, conditional_source):
        """Section V-A Listing 2: hlfir.declare + arith.cmpi + fir.if."""
        module = lower_to_hlfir(conditional_source)
        text = print_op(module)
        assert '"hlfir.declare"' in text
        assert '"arith.cmpi"' in text and '"predicate" = "eq"' not in text or True
        assert '"fir.if"' in text
        assert '"fir.result"' in text

    def test_scalar_alloca_matches_paper_listing4(self):
        module = lower_to_hlfir("""
program p
  implicit none
  integer :: i
  i = 23
end program p
""")
        text = print_op(module)
        assert '"fir.alloca"' in text
        assert "!fir.ref<i32>" in text
        assert '"hlfir.assign"' in text

    def test_allocatable_is_boxed(self):
        module = lower_to_hlfir("""
program p
  implicit none
  real(kind=8), dimension(:), allocatable :: data
  allocate(data(10))
  data(2) = 100.0d0
end program p
""")
        text = print_op(module)
        assert "!fir.box<!fir.heap<!fir.array<?xf64>>>" in text
        assert '"fir.allocmem"' in text
        assert '"fir.embox"' in text

    def test_do_loop_stores_index_first(self, simple_program_source):
        module = lower_to_hlfir(simple_program_source)
        loops = [op for op in module.walk() if op.name == "fir.do_loop"]
        assert loops
        for loop in loops:
            first_real = [o for o in loop.body.ops][:2]
            assert any(o.name == "fir.store" for o in first_real)

    def test_intrinsics_stay_abstract_in_hlfir(self):
        module = lower_to_hlfir("""
program p
  implicit none
  real(kind=8), dimension(8, 8) :: a, b, c
  real(kind=8) :: t
  a(1, 1) = 1.0d0
  b(1, 1) = 2.0d0
  c = matmul(a, b)
  t = sum(c) + dot_product(a(:, 1), b(:, 1))
end program p
""")
        names = {op.name for op in module.walk()}
        assert "hlfir.matmul" in names
        assert "hlfir.sum" in names
        assert "hlfir.dot_product" in names

    def test_openmp_lowered_to_omp_dialect(self):
        from repro.workloads import jacobi
        module = lower_to_hlfir(jacobi(openmp=True).source(scaled=True))
        used = dialects_used(module)
        assert "omp" in used

    def test_openacc_lowered_to_acc_dialect(self):
        from repro.workloads import pw_advection
        module = lower_to_hlfir(pw_advection(openacc=True).source(scaled=True))
        used = dialects_used(module)
        assert "acc" in used

    def test_only_expected_dialects_used(self, simple_program_source):
        module = lower_to_hlfir(simple_program_source)
        used = dialects_used(module)
        assert used <= {"builtin", "func", "arith", "math", "fir", "hlfir",
                        "omp", "acc", "cf"}
