"""Worklist canonicalizer / pattern-driver equivalence.

The worklist drivers (production) must produce IR **identical** to the
historical full-rewalk drivers (kept as references) — asserted by snapshot
comparison across every registered flow and a set of representative
workloads, plus directly on the pattern driver with a synthetic pattern set.
"""

import pytest

from repro.dialects import arith
from repro.flows import available_flows, get_flow
from repro.ir import (Block, Region, RewritePattern, apply_patterns_greedily,
                      create_operation)
from repro.ir import types as T
from repro.ir.printer import print_op
from repro.ir.rewriter import apply_patterns_rewalk
from repro.transforms.cleanup import CanonicalizePass
from repro.workloads import get_workload

WORKLOADS = ("ac", "jacobi", "dotproduct")


@pytest.fixture(autouse=True)
def _restore_strategy():
    yield
    CanonicalizePass.STRATEGY = "worklist"


class TestCanonicalizeWorklistEquivalence:
    @pytest.mark.parametrize("flow_name", available_flows())
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_flow_ir_identical_to_rewalk_driver(self, flow_name, workload):
        flow = get_flow(flow_name)
        w = get_workload(workload)
        CanonicalizePass.STRATEGY = "worklist"
        worklist_result = flow.run(w, collect_statistics=False)
        CanonicalizePass.STRATEGY = "rewalk"
        rewalk_result = flow.run(w, collect_statistics=False)
        assert worklist_result.error is None and rewalk_result.error is None
        assert print_op(worklist_result.module) == \
            print_op(rewalk_result.module)

    def test_worklist_folds_chains_the_rewalk_cap_would_fold(self):
        """A constant chain folds completely under both drivers."""
        from repro.dialects.builtin import ModuleOp
        from repro.dialects.func import FuncOp, ReturnOp

        def build():
            fn = FuncOp("main", T.FunctionType((), ()))
            block = fn.entry_block
            value = arith.ConstantOp(1, T.i64)
            block.add_op(value)
            last = value.result
            for step in range(12):
                const = arith.ConstantOp(step, T.i64)
                add = arith.AddIOp(last, const.result)
                block.add_ops([const, add])
                last = add.result
            sink = create_operation("test.sink", operands=[last])
            block.add_op(sink)
            block.add_op(ReturnOp([]))
            return ModuleOp([fn])

        CanonicalizePass.STRATEGY = "worklist"
        worklist_module = build()
        CanonicalizePass().run(worklist_module)
        CanonicalizePass.STRATEGY = "rewalk"
        rewalk_module = build()
        CanonicalizePass().run(rewalk_module)
        assert print_op(worklist_module) == print_op(rewalk_module)
        # the chain really collapsed: one surviving constant feeds the sink
        adds = [op for op in worklist_module.walk() if op.name == "arith.addi"]
        assert not adds


class _FoldConstantAdd(RewritePattern):
    ROOT_OP = "arith.addi"

    def match_and_rewrite(self, op, rewriter) -> bool:
        lhs = getattr(op.operands[0], "op", None)
        rhs = getattr(op.operands[1], "op", None)
        if lhs is None or rhs is None or lhs.name != "arith.constant" \
                or rhs.name != "arith.constant":
            return False
        folded = arith.ConstantOp(
            lhs.get_attr("value").value + rhs.get_attr("value").value,
            op.results[0].type)
        rewriter.replace_op(op, folded)
        return True


class TestPatternDriverEquivalence:
    def _chain_holder(self, bystanders: int = 0):
        block = Block()
        constants = [arith.ConstantOp(n, T.i32) for n in (1, 2, 3, 4, 5)]
        block.add_ops(constants)
        last = constants[0].result
        adds = []
        for const in constants[1:]:
            add = arith.AddIOp(last, const.result)
            adds.append(add)
            last = add.result
        block.add_ops(adds)
        block.add_op(create_operation("test.sink", operands=[last]))
        # unrelated ops the chain rewrites never touch: the rewalk driver
        # revisits them every sweep, the worklist driver only in round 1
        for _ in range(bystanders):
            block.add_op(create_operation("test.other"))
        holder = create_operation("builtin.module",
                                  regions=[Region([block])])
        return holder, block

    def test_worklist_and_rewalk_reach_identical_fixpoints(self):
        worklist_holder, worklist_block = self._chain_holder()
        rewalk_holder, rewalk_block = self._chain_holder()
        assert apply_patterns_greedily(worklist_holder, [_FoldConstantAdd()])
        assert apply_patterns_rewalk(rewalk_holder, [_FoldConstantAdd()])
        assert [op.name for op in worklist_block.ops] == \
            [op.name for op in rewalk_block.ops]
        final_worklist = worklist_block.ops[-2]
        final_rewalk = rewalk_block.ops[-2]
        assert final_worklist.get_attr("value").value == \
            final_rewalk.get_attr("value").value == 15

    def test_worklist_converges_in_fewer_visits_than_rewalk(self):
        """The worklist driver must not re-examine unaffected ops."""
        visits = {"worklist": 0, "rewalk": 0}

        class CountingFold(_FoldConstantAdd):
            ROOT_OP = None  # count every op visit, not just the addi roots

            def __init__(self, key):
                self.key = key

            def match_and_rewrite(self, op, rewriter) -> bool:
                visits[self.key] += 1
                if op.name != "arith.addi":
                    return False
                return super().match_and_rewrite(op, rewriter)

        worklist_holder, _ = self._chain_holder(bystanders=32)
        rewalk_holder, _ = self._chain_holder(bystanders=32)
        apply_patterns_greedily(worklist_holder, [CountingFold("worklist")])
        apply_patterns_rewalk(rewalk_holder, [CountingFold("rewalk")])
        assert visits["worklist"] < visits["rewalk"]
