"""Tests for the standard MLIR transformation passes (Listing 1)."""

import pytest

from repro.core import StandardMLIRCompiler, convert_fir_to_standard
from repro.core.pipelines import base_pipeline, to_llvm_pipeline
from repro.dialects import dialects_used
from repro.flang import FlangCompiler
from repro.ir import PassManager
from repro.ir.printer import print_op

from ..conftest import last_value, run_flang, run_ours


def standard_module(source):
    return convert_fir_to_standard(FlangCompiler().lower_to_hlfir(source))


SRC = """
program p
  implicit none
  integer, parameter :: n = 12
  real(kind=8), dimension(n) :: v
  real(kind=8) :: t
  integer :: i
  do i = 1, n
    v(i) = real(i, 8) * 3.0d0
  end do
  t = sum(v)
  if (t > 100.0d0) then
    t = t - 100.0d0
  end if
  print *, t
end program p
"""


class TestCleanupPasses:
    def test_canonicalize_folds_constants(self):
        module = standard_module(SRC)
        before = sum(1 for op in module.walk() if op.name == "arith.constant")
        PassManager.from_pipeline("builtin.module(canonicalize, cse)").run(module)
        after = sum(1 for op in module.walk() if op.name == "arith.constant")
        assert after <= before

    def test_cse_removes_duplicate_pure_ops(self):
        module = standard_module(SRC)
        PassManager.from_pipeline("builtin.module(cse)").run(module)
        # duplicated 'constant 1 : index' within one block must collapse
        for func in module.functions():
            for block in func.regions[0].blocks:
                ones = [op for op in block.ops if op.name == "arith.constant"
                        and op.get_attr("value").value == 1
                        and op.results[0].type.mlir() == "index"]
                assert len(ones) <= 1

    def test_licm_hoists_invariant_ops(self):
        module = standard_module(SRC)
        PassManager.from_pipeline(
            "builtin.module(loop-invariant-code-motion)").run(module)
        for op in module.walk():
            if op.name == "scf.for":
                body_names = [o.name for o in op.body.ops]
                assert "arith.constant" not in body_names

    def test_semantics_preserved_by_cleanups(self):
        module = standard_module(SRC)
        from repro.machine import Interpreter
        PassManager.from_pipeline(
            "builtin.module(canonicalize, cse, loop-invariant-code-motion)").run(module)
        interp = Interpreter(module)
        interp.run_main()
        assert float(interp.printed[-1]) == pytest.approx(
            sum(i * 3.0 for i in range(1, 13)) - 100.0)


class TestConversions:
    def test_linalg_to_loops(self):
        module = standard_module(SRC)
        PassManager.from_pipeline("builtin.module(convert-linalg-to-loops)").run(module)
        names = {op.name for op in module.walk()}
        assert not any(n.startswith("linalg.") for n in names)
        assert "scf.for" in names

    def test_scf_to_cf_flattens_structured_flow(self):
        module = standard_module(SRC)
        PassManager.from_pipeline(
            "builtin.module(convert-linalg-to-loops, convert-scf-to-cf)").run(module)
        names = {op.name for op in module.walk()}
        assert "scf.for" not in names and "scf.if" not in names
        assert "cf.br" in names and "cf.cond_br" in names

    def test_full_listing1_pipeline_reaches_llvm(self):
        module = standard_module(SRC)
        base_pipeline().run(module)
        to_llvm_pipeline().run(module)
        used = dialects_used(module)
        assert "scf" not in used and "memref" not in used and "affine" not in used
        assert "llvm" in used

    def test_scf_to_openmp(self):
        result = StandardMLIRCompiler(vector_width=0, parallelise=True).compile(SRC)
        names = {op.name for op in result.optimised_module.walk()}
        assert "omp.parallel" in names

    def test_fold_memref_alias_ops_on_subviews(self):
        src = """
subroutine total(v, t)
  implicit none
  real(kind=8), dimension(3), intent(in) :: v
  real(kind=8), intent(out) :: t
  t = v(1) + v(2) + v(3)
end subroutine total

program p
  implicit none
  real(kind=8), dimension(10) :: a
  real(kind=8) :: t
  integer :: i
  do i = 1, 10
    a(i) = real(i, 8)
  end do
  call total(a(4:6), t)
  print *, t
end program p
"""
        assert last_value(run_ours(src)) == pytest.approx(4.0 + 5.0 + 6.0)
        assert last_value(run_flang(src)) == pytest.approx(15.0)
