"""Tests for the standard MLIR transformation passes (Listing 1)."""

import pytest

from repro.core import StandardMLIRCompiler, convert_fir_to_standard
from repro.core.pipelines import base_pipeline, to_llvm_pipeline
from repro.dialects import arith, dialects_used, func as func_d, memref, scf
from repro.flang import FlangCompiler
from repro.ir import Block, PassManager
from repro.ir import types as T
from repro.ir.printer import print_op
from repro.machine import Interpreter
from repro.transforms.cleanup import (FoldMemrefAliasOpsPass,
                                      ForwardScalarStoresPass,
                                      LoopInvariantCodeMotionPass)

from ..conftest import last_value, run_flang, run_ours


def _interpret_printed(module):
    interp = Interpreter(module)
    interp.run_main()
    return interp.printed


def _run_pass_and_compare(source, pass_pipeline):
    """Execution equivalence: printed output identical before/after passes."""
    before = _interpret_printed(standard_module(source))
    module = standard_module(source)
    PassManager.from_pipeline(pass_pipeline).run(module)
    after = _interpret_printed(module)
    assert after == before, (before, after)
    return module


def standard_module(source):
    return convert_fir_to_standard(FlangCompiler().lower_to_hlfir(source))


SRC = """
program p
  implicit none
  integer, parameter :: n = 12
  real(kind=8), dimension(n) :: v
  real(kind=8) :: t
  integer :: i
  do i = 1, n
    v(i) = real(i, 8) * 3.0d0
  end do
  t = sum(v)
  if (t > 100.0d0) then
    t = t - 100.0d0
  end if
  print *, t
end program p
"""


class TestCleanupPasses:
    def test_canonicalize_folds_constants(self):
        module = standard_module(SRC)
        before = sum(1 for op in module.walk() if op.name == "arith.constant")
        PassManager.from_pipeline("builtin.module(canonicalize, cse)").run(module)
        after = sum(1 for op in module.walk() if op.name == "arith.constant")
        assert after <= before

    def test_cse_removes_duplicate_pure_ops(self):
        module = standard_module(SRC)
        PassManager.from_pipeline("builtin.module(cse)").run(module)
        # duplicated 'constant 1 : index' within one block must collapse
        for func in module.functions():
            for block in func.regions[0].blocks:
                ones = [op for op in block.ops if op.name == "arith.constant"
                        and op.get_attr("value").value == 1
                        and op.results[0].type.mlir() == "index"]
                assert len(ones) <= 1

    def test_licm_hoists_invariant_ops(self):
        module = standard_module(SRC)
        PassManager.from_pipeline(
            "builtin.module(loop-invariant-code-motion)").run(module)
        for op in module.walk():
            if op.name == "scf.for":
                body_names = [o.name for o in op.body.ops]
                assert "arith.constant" not in body_names

    def test_semantics_preserved_by_cleanups(self):
        module = standard_module(SRC)
        from repro.machine import Interpreter
        PassManager.from_pipeline(
            "builtin.module(canonicalize, cse, loop-invariant-code-motion)").run(module)
        interp = Interpreter(module)
        interp.run_main()
        assert float(interp.printed[-1]) == pytest.approx(
            sum(i * 3.0 for i in range(1, 13)) - 100.0)


def _loop_module(body_builder):
    """A func with one scf.for over [0, 8); ``body_builder(body, iv)``
    populates the loop body and returns ops of interest."""
    fn = func_d.FuncOp("main", T.FunctionType((), ()))
    entry = fn.entry_block
    lb = arith.ConstantOp(0, T.index)
    ub = arith.ConstantOp(8, T.index)
    step = arith.ConstantOp(1, T.index)
    entry.add_ops([lb, ub, step])
    loop = scf.ForOp(lb.result, ub.result, step.result)
    interesting = body_builder(loop.body, loop.body.args[0], entry)
    loop.body.add_op(scf.YieldOp())
    entry.add_op(loop)
    entry.add_op(func_d.ReturnOp())
    from repro.dialects.builtin import ModuleOp
    return ModuleOp([fn]), loop, interesting


class TestLoopInvariantCodeMotion:
    def test_invariant_pure_op_is_hoisted(self):
        def build(body, iv, entry):
            c1 = arith.ConstantOp(2, T.i32)
            c2 = arith.ConstantOp(3, T.i32)
            entry.add_ops([c1, c2])
            invariant = arith.AddIOp(c1.result, c2.result)
            body.add_op(invariant)
            sink = memref.AllocaOp(T.MemRefType([], T.i32))
            entry.add_op(sink)
            body.add_op(memref.StoreOp(invariant.result, sink.results[0], []))
            return invariant

        module, loop, invariant = _loop_module(build)
        LoopInvariantCodeMotionPass().run(module)
        assert invariant.parent is not loop.body
        assert invariant.parent is loop.parent

    def test_impure_ops_are_not_hoisted(self):
        """Stores are loop-invariant by operand analysis here, but impure:
        hoisting one would change how many times memory is written."""
        def build(body, iv, entry):
            cell = memref.AllocaOp(T.MemRefType([], T.i32))
            value = arith.ConstantOp(7, T.i32)
            entry.add_ops([cell, value])
            store = memref.StoreOp(value.result, cell.results[0], [])
            body.add_op(store)
            return store

        module, loop, store = _loop_module(build)
        LoopInvariantCodeMotionPass().run(module)
        assert store.parent is loop.body

    def test_induction_dependent_ops_are_not_hoisted(self):
        def build(body, iv, entry):
            scaled = arith.MulIOp(iv, iv)
            body.add_op(scaled)
            cell = memref.AllocaOp(T.MemRefType([], T.index))
            entry.add_op(cell)
            body.add_op(memref.StoreOp(scaled.result, cell.results[0], []))
            return scaled

        module, loop, scaled = _loop_module(build)
        LoopInvariantCodeMotionPass().run(module)
        assert scaled.parent is loop.body

    def test_execution_equivalence(self):
        _run_pass_and_compare(
            SRC, "builtin.module(loop-invariant-code-motion)")


class TestForwardScalarStores:
    def _cell_with_store_load(self, between=()):
        fn = func_d.FuncOp("main", T.FunctionType((), ()))
        entry = fn.entry_block
        cell = memref.AllocaOp(T.MemRefType([], T.i32))
        value = arith.ConstantOp(11, T.i32)
        entry.add_ops([cell, value])
        entry.add_op(memref.StoreOp(value.result, cell.results[0], []))
        for op in between:
            entry.add_op(op)
        load = memref.LoadOp(cell.results[0], [])
        entry.add_op(load)
        # keep the loaded value live in a way no cleanup can eliminate
        sink = func_d.CallOp("consume", [load.results[0]], [])
        entry.add_op(sink)
        entry.add_op(func_d.ReturnOp())
        from repro.dialects.builtin import ModuleOp
        return ModuleOp([fn]), value, load, sink

    def test_store_forwards_to_load(self):
        module, value, load, sink = self._cell_with_store_load()
        ForwardScalarStoresPass().run(module)
        assert load.parent is None          # the load was folded away
        assert sink.operands[0] is value.result

    def test_intervening_call_blocks_forwarding(self):
        """A call may write any scalar passed by reference: the tracked
        value must be invalidated, not forwarded across the call."""
        call = func_d.CallOp("opaque", [], [])
        module, value, load, _ = self._cell_with_store_load(between=[call])
        ForwardScalarStoresPass().run(module)
        assert load.parent is not None      # load survives

    def test_region_op_blocks_forwarding(self):
        cond = arith.ConstantOp(True, T.i1)
        branch = scf.IfOp(cond.result)
        branch.then_block.add_op(scf.YieldOp())
        branch.else_block.add_op(scf.YieldOp())
        module, value, load, _ = self._cell_with_store_load(
            between=[cond, branch])
        ForwardScalarStoresPass().run(module)
        assert load.parent is not None

    def test_array_store_does_not_invalidate_scalar(self):
        array = memref.AllocaOp(T.MemRefType([4], T.i32))
        index = arith.ConstantOp(0, T.index)
        elem = arith.ConstantOp(5, T.i32)
        store = memref.StoreOp(elem.result, array.results[0], [index.result])
        module, value, load, _ = self._cell_with_store_load(
            between=[array, index, elem, store])
        ForwardScalarStoresPass().run(module)
        assert load.parent is None          # rank>0 store cannot alias rank-0

    def test_execution_equivalence(self):
        _run_pass_and_compare(SRC, "builtin.module(forward-scalar-stores)")


class TestFoldMemrefAliasOpsUnitTests:
    def _subview_load(self, stride):
        fn = func_d.FuncOp("main", T.FunctionType((), ()))
        entry = fn.entry_block
        base = memref.AllocaOp(T.MemRefType([10], T.f64))
        offset = arith.ConstantOp(3, T.index)
        size = arith.ConstantOp(3, T.index)
        stride_c = arith.ConstantOp(stride, T.index)
        entry.add_ops([base, offset, size, stride_c])
        subview = memref.SubViewOp(base.results[0], [offset.result],
                                   [size.result], [stride_c.result])
        entry.add_op(subview)
        index = arith.ConstantOp(1, T.index)
        entry.add_op(index)
        load = memref.LoadOp(subview.results[0], [index.result])
        entry.add_op(load)
        entry.add_op(func_d.ReturnOp())
        from repro.dialects.builtin import ModuleOp
        return ModuleOp([fn]), base, subview, load

    def test_unit_stride_subview_is_folded(self):
        module, base, subview, load = self._subview_load(stride=1)
        FoldMemrefAliasOpsPass().run(module)
        assert load.operands[0] is base.results[0]
        # the rebased index is offset + index, materialised as an addi
        assert getattr(load.operands[1], "op").name == "arith.addi"

    def test_strided_subview_is_not_folded(self):
        """Folding a non-unit-stride view as a plain offset would read the
        wrong elements: the pass must leave it alone."""
        module, base, subview, load = self._subview_load(stride=2)
        FoldMemrefAliasOpsPass().run(module)
        assert load.operands[0] is subview.results[0]

    def test_execution_equivalence_on_section_call(self):
        src = """
subroutine total(v, t)
  implicit none
  real(kind=8), dimension(3), intent(in) :: v
  real(kind=8), intent(out) :: t
  t = v(1) + v(2) + v(3)
end subroutine total

program p
  implicit none
  real(kind=8), dimension(10) :: a
  real(kind=8) :: t
  integer :: i
  do i = 1, 10
    a(i) = real(i, 8)
  end do
  call total(a(4:6), t)
  print *, t
end program p
"""
        _run_pass_and_compare(src, "builtin.module(fold-memref-alias-ops)")


class TestConversions:
    def test_linalg_to_loops(self):
        module = standard_module(SRC)
        PassManager.from_pipeline("builtin.module(convert-linalg-to-loops)").run(module)
        names = {op.name for op in module.walk()}
        assert not any(n.startswith("linalg.") for n in names)
        assert "scf.for" in names

    def test_scf_to_cf_flattens_structured_flow(self):
        module = standard_module(SRC)
        PassManager.from_pipeline(
            "builtin.module(convert-linalg-to-loops, convert-scf-to-cf)").run(module)
        names = {op.name for op in module.walk()}
        assert "scf.for" not in names and "scf.if" not in names
        assert "cf.br" in names and "cf.cond_br" in names

    def test_full_listing1_pipeline_reaches_llvm(self):
        module = standard_module(SRC)
        base_pipeline().run(module)
        to_llvm_pipeline().run(module)
        used = dialects_used(module)
        assert "scf" not in used and "memref" not in used and "affine" not in used
        assert "llvm" in used

    def test_scf_to_openmp(self):
        result = StandardMLIRCompiler(vector_width=0, parallelise=True).compile(SRC)
        names = {op.name for op in result.optimised_module.walk()}
        assert "omp.parallel" in names

    def test_fold_memref_alias_ops_on_subviews(self):
        src = """
subroutine total(v, t)
  implicit none
  real(kind=8), dimension(3), intent(in) :: v
  real(kind=8), intent(out) :: t
  t = v(1) + v(2) + v(3)
end subroutine total

program p
  implicit none
  real(kind=8), dimension(10) :: a
  real(kind=8) :: t
  integer :: i
  do i = 1, 10
    a(i) = real(i, 8)
  end do
  call total(a(4:6), t)
  print *, t
end program p
"""
        assert last_value(run_ours(src)) == pytest.approx(4.0 + 5.0 + 6.0)
        assert last_value(run_flang(src)) == pytest.approx(15.0)
