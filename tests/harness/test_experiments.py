"""Tests for the experiment harness and compiler adapters (shape checks)."""

import math

import pytest

from repro.compilers import (CrayAdapter, FlangV20Adapter, GnuAdapter,
                             OurApproachAdapter)
from repro.harness import (figure3_vectorization, format_table, paper_data,
                           section4_profile, speedup, table2, table3, table4,
                           table5)
from repro.workloads import get_workload, jacobi


class TestAdapters:
    def test_measurement_fields(self):
        m = OurApproachAdapter().measure(get_workload("linpk"))
        assert m.compiler == "our-approach"
        assert m.runtime_s > 0
        assert m.breakdown.total_s == m.runtime_s
        assert m.stats.total_ops > 0

    def test_flang_openacc_reports_dnc(self):
        from repro.workloads import pw_advection
        m = FlangV20Adapter().measure(pw_advection(openacc=True), gpu=True)
        assert m.did_not_compile
        assert math.isnan(m.runtime_s)

    def test_reference_profiles_reorder_runtimes(self):
        w = get_workload("jacobi")
        flang = FlangV20Adapter().measure(w).runtime_s
        cray = CrayAdapter().measure(w).runtime_s
        gnu = GnuAdapter().measure(w).runtime_s
        assert cray < flang
        assert cray < gnu


class TestTables:
    def test_table2_shape_ours_beats_flang_on_stencils(self):
        table = table2(benchmarks=["jacobi", "pw-advection", "tra-adv"])
        gains = speedup(table, baseline="flang-v20", candidate="our-approach")
        assert all(g > 1.0 for g in gains.values()), gains
        # the paper reports up to ~3x across benchmarks and experiments
        assert max(gains.values()) > 1.3

    def test_table2_cray_remains_fastest_on_stencils(self):
        table = table2(benchmarks=["jacobi", "tra-adv"])
        for row in table.rows:
            assert row.measured["cray"] < row.measured["flang-v20"]

    def test_table3_linalg_beats_runtime_library(self):
        table = table3(benchmarks=["dotproduct", "sum"])
        for row in table.rows:
            assert row.measured["ours-serial"] <= row.measured["flang-v20"] * 1.05

    def test_table3_threading_helps_matmul_and_transpose(self):
        table = table3(benchmarks=["matmul"])
        row = table.row("matmul")
        assert row.measured["ours-threaded"] < row.measured["ours-serial"]

    def test_table4_speedups_increase_with_cores(self):
        table = table4(core_counts=(2, 8, 64))
        jac = [row.measured["ours-jacobi"] for row in table.rows]
        assert jac[0] < jac[1] < jac[2]
        # pw-advection saturates (memory bound): far from ideal at 64 cores
        pw64 = table.rows[-1].measured["ours-pw"]
        assert pw64 < 32

    def test_table4_jacobi_scales_better_than_pw_at_64(self):
        table = table4(core_counts=(64,))
        row = table.rows[0]
        assert row.measured["ours-jacobi"] > row.measured["ours-pw"]

    def test_table5_runtime_grows_with_grid_and_nvfortran_close(self):
        table = table5(grid_sizes=(134_000_000, 536_000_000))
        ours = [row.measured["our-approach"] for row in table.rows]
        assert ours[1] > ours[0]
        for row in table.rows:
            ratio = row.measured["our-approach"] / row.measured["nvfortran"]
            assert 0.4 < ratio < 2.5

    def test_figure3_vectorisation_improves_dotproduct(self):
        table = figure3_vectorization("dotproduct")
        row = table.rows[0]
        assert row.measured["vectorised"] <= row.measured["scalar"]

    def test_format_table_renders_paper_columns(self):
        table = table2(benchmarks=["linpk"])
        text = format_table(table)
        assert "linpk" in text and "(paper)" in text

    def test_section4_profile_matches_narrative(self):
        profiles = section4_profile("tfft")
        assert profiles["flang-v20"]["vectorised_fp_fraction"] == 0.0
        assert profiles["our-approach"]["total_instructions"] < \
            profiles["flang-v20"]["total_instructions"]


class TestPaperData:
    def test_tables_cover_every_benchmark(self):
        assert len(paper_data.TABLE1) == 20
        assert len(paper_data.TABLE2) == 8
        assert set(paper_data.TABLE3) == {"transpose", "matmul", "dotproduct", "sum"}
        assert set(paper_data.TABLE4) == {2, 4, 8, 16, 32, 64}
        assert len(paper_data.TABLE5) == 4

    def test_aermod_flang_v20_is_dnc(self):
        assert paper_data.TABLE1["aermod"]["flang-v20"] is None

    def test_paper_speedup_claim_up_to_3x(self):
        """The abstract claims up to 3x over Flang across the experiments."""
        best = max(paper_data.TABLE2[b]["flang-v20"] / paper_data.TABLE2[b]["our-approach"]
                   for b in paper_data.TABLE2)
        assert 2.0 < best < 3.5
