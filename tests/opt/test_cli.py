"""End-to-end tests for the ``python -m repro.opt`` CLI (in-process)."""

import pytest

from repro.opt import DEMO_SOURCE, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestFlowMode:
    def test_named_flow_on_a_workload_with_timing(self, capsys):
        code, out, err = run_cli(capsys, "--flow", "ours",
                                 "--workload", "jacobi", "--timing")
        assert code == 0
        assert "func.func" in out, "final IR must be printed"
        assert "Pass execution timing report" in out
        assert "verification: OK" in out

    def test_flow_options_are_validated(self, capsys):
        code, _, err = run_cli(capsys, "--flow", "ours",
                               "--option", "no_such_option=1")
        assert code == 2
        assert "no_such_option" in err

    def test_flow_option_changes_the_pipeline(self, capsys):
        code, out, _ = run_cli(capsys, "--flow", "ours", "--workload", "sum",
                               "--option", "vector_width=8", "--no-print-ir")
        assert code == 0
        assert "virtual-vector-size=8" in out

    def test_print_stages_names_every_snapshot(self, capsys):
        code, out, _ = run_cli(capsys, "--flow", "ours",
                               "--workload", "dotproduct", "--print-stages")
        assert code == 0
        for stage in ("hlfir", "standard", "optimised"):
            assert f"stage: {stage}" in out

    def test_flang_flow_runs(self, capsys):
        code, out, _ = run_cli(capsys, "--flow", "flang",
                               "--workload", "dotproduct")
        assert code == 0 and "fir" in out

    def test_capability_failure_is_reported(self, capsys):
        code, _, err = run_cli(capsys, "--flow", "flang",
                               "--workload", "pw-advection",
                               "--workload-arg", "openacc=true", "--gpu")
        assert code == 1
        assert "acc dialect" in err


class TestPipelineMode:
    def test_textual_pipeline_over_demo_kernel(self, capsys):
        code, out, err = run_cli(capsys, "--pipeline",
                                 "builtin.module(canonicalize,cse)")
        assert code == 0
        assert "demo kernel" in err  # note about the default input
        assert "func.func" in out
        assert "// pipeline: builtin.module(canonicalize,cse)" in out

    def test_pipeline_with_timing_and_nesting(self, capsys):
        code, out, _ = run_cli(capsys, "--workload", "jacobi", "--timing",
                               "--pipeline",
                               "builtin.module(func.func(canonicalize),cse)")
        assert code == 0
        assert "func.func(canonicalize)" in out
        assert "Pass execution timing report" in out

    def test_pipeline_from_source_file(self, capsys, tmp_path):
        src = tmp_path / "kernel.f90"
        src.write_text(DEMO_SOURCE)
        code, out, _ = run_cli(capsys, str(src), "--pipeline",
                               "builtin.module(canonicalize)")
        assert code == 0 and "func.func" in out

    def test_unknown_pass_names_the_pass(self, capsys):
        code, _, err = run_cli(capsys, "--pipeline",
                               "builtin.module(not-a-pass)")
        assert code != 0
        assert "not-a-pass" in err

    def test_output_file(self, capsys, tmp_path):
        out_file = tmp_path / "out.mlir"
        code, out, _ = run_cli(capsys, "--pipeline",
                               "builtin.module(cse)", "-o", str(out_file))
        assert code == 0
        assert "func.func" in out_file.read_text()

    def test_print_stages_respects_output_file(self, capsys, tmp_path):
        out_file = tmp_path / "stages.mlir"
        code, _, _ = run_cli(capsys, "--flow", "ours", "--workload", "sum",
                             "--print-stages", "-o", str(out_file))
        assert code == 0
        text = out_file.read_text()
        for stage in ("hlfir", "standard", "optimised"):
            assert f"stage: {stage}" in text

    def test_assignment_values_keep_spaces(self, capsys):
        from repro.opt import _parse_assignments
        assert _parse_assignments(["note=my run", "n=3", "flag=true"],
                                  "--option") == \
            {"note": "my run", "n": 3, "flag": True}
        with pytest.raises(SystemExit):
            _parse_assignments(["no-equals"], "--option")


class TestIntrospection:
    def test_list_flows(self, capsys):
        code, out, _ = run_cli(capsys, "--list-flows")
        assert code == 0
        assert "flang" in out and "ours" in out
        assert "vector_width" in out  # schemas are shown

    def test_list_passes(self, capsys):
        code, out, _ = run_cli(capsys, "--list-passes")
        assert code == 0
        assert "canonicalize" in out and "cse" in out

    def test_flow_and_pipeline_are_exclusive(self, capsys):
        code, _, err = run_cli(capsys, "--flow", "ours",
                               "--pipeline", "builtin.module(cse)")
        assert code == 2 and "mutually exclusive" in err

    def test_pipeline_mode_rejects_flow_only_flags(self, capsys):
        for flags in (["--option", "vector_width=8"], ["--threads", "4"],
                      ["--gpu"]):
            code, _, err = run_cli(capsys, "--pipeline",
                                   "builtin.module(cse)", *flags)
            assert code == 2
            assert "only apply to --flow" in err

    def test_unknown_flow_exits_with_alternatives(self, capsys):
        code, _, err = run_cli(capsys, "--flow", "nope")
        assert code == 2
        assert "flang" in err and "ours" in err
