"""Flow registry behaviour: registration, options schemas, capability
checks, uniform FlowResults, and the acceptance criterion that a newly
registered flow is cacheable and measurable with zero service/adapter edits."""

import math

import pytest

from repro.compilers import CompilerAdapter
from repro.flows import (CapabilityError, ExecutionContext, Flow, FlowError,
                         FlowOption, FlowResult, OptionError, OptionsSchema,
                         available_flows, get_flow, register_flow, registered)
from repro.flows.builtin import OursFlow
from repro.service import ArtifactCache, CompileJob, CompileService, run_job
from repro.service import use_service
from repro.workloads import get_workload


class TestRegistry:
    def test_builtin_flows_are_registered(self):
        assert set(available_flows()) >= {"flang", "ours"}

    def test_get_flow_unknown_names_alternatives(self):
        with pytest.raises(FlowError, match="flang.*ours|ours.*flang"):
            get_flow("definitely-not-a-flow")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(FlowError, match="already registered"):
            register_flow(OursFlow())

    def test_temporary_registration_cleans_up(self):
        class TmpFlow(Flow):
            name = "tmp-flow"

        with registered(TmpFlow):
            assert "tmp-flow" in available_flows()
        assert "tmp-flow" not in available_flows()

    def test_unnamed_flow_rejected(self):
        class Nameless(Flow):
            pass

        with pytest.raises(FlowError, match="no name"):
            register_flow(Nameless())

    def test_builtin_collision_fails_cleanly_without_poisoning_lookup(self):
        # even in a fresh process where no lookup has loaded the builtins
        # yet, registering over a builtin name must fail immediately and
        # leave the registry fully usable
        class Impostor(Flow):
            name = "flang"

        with pytest.raises(FlowError, match="already registered"):
            register_flow(Impostor())
        assert set(available_flows()) >= {"flang", "ours"}
        assert get_flow("ours") is not None


class TestOptionsSchema:
    schema = OptionsSchema(
        FlowOption("width", int, 4, "a width"),
        FlowOption("fast", bool, False),
        FlowOption("factor", float, 1.0),
    )

    def test_defaults_fill_in(self):
        assert self.schema.coerce({}) == {"width": 4, "fast": False,
                                          "factor": 1.0}

    def test_values_are_type_coerced(self):
        out = self.schema.coerce({"width": "8", "fast": "true",
                                  "factor": 2})
        assert out == {"width": 8, "fast": True, "factor": 2.0}
        assert isinstance(out["factor"], float)

    def test_dashes_normalise(self):
        assert self.schema.coerce({"width": 2})["width"] == 2

    def test_unknown_option_strict_raises_with_names(self):
        with pytest.raises(OptionError, match="width"):
            self.schema.coerce({"nope": 1})

    def test_unknown_option_lenient_drops(self):
        assert self.schema.coerce({"nope": 1}, strict=False) == \
            self.schema.defaults()

    def test_bad_type_raises(self):
        with pytest.raises(OptionError, match="width"):
            self.schema.coerce({"width": "many"})
        with pytest.raises(OptionError, match="fast"):
            self.schema.coerce({"fast": "maybe"})


class TestBuiltinFlows:
    def test_flang_rejects_openacc(self):
        from repro.workloads import pw_advection
        flow = get_flow("flang")
        with pytest.raises(Exception, match="acc dialect"):
            flow.run(pw_advection(openacc=True))

    def test_ours_normalises_derived_options(self):
        flow = get_flow("ours")
        workload = get_workload("dotproduct")
        opts = flow.normalise_options({}, workload, ExecutionContext(threads=8))
        assert opts["parallelise"] is True
        assert opts["vector_width"] == 4

    def test_ours_pipeline_is_nested_and_tunable(self):
        flow = get_flow("ours")
        workload = get_workload("dotproduct")
        opts = flow.normalise_options({"vector_width": 8}, workload,
                                      ExecutionContext())
        pm = flow.pipeline(opts)
        text = pm.describe()
        assert text.startswith("builtin.module(func.func(")
        assert "affine-super-vectorize{virtual-vector-size=8}" in text

    def test_flow_results_are_uniform(self):
        workload = get_workload("dotproduct")
        for name in ("flang", "ours"):
            result = get_flow(name).run(workload)
            assert isinstance(result, FlowResult)
            assert result.ok
            assert result.module is result.stages[result.stage_names[-1]] or \
                result.module is not None
            assert "hlfir" in result.stage_names
            assert result.timing is not None and result.timing.timings

    def test_flow_run_records_timing_report(self):
        result = get_flow("ours").run(get_workload("sum"))
        names = [t.pass_name for t in result.timing.timings]
        assert "canonicalize" in names
        assert result.pipeline.startswith("builtin.module(")


class NoOptFlow(Flow):
    """The acceptance-criterion flow: ours, with every optimisation off."""

    name = "ours-noopt"
    description = "standard flow with optimisation disabled"
    schema = OptionsSchema()

    def compile(self, workload, options, execution, **kw):
        from repro.core import StandardMLIRCompiler
        compiler = StandardMLIRCompiler(vector_width=0)
        return compiler.compile(workload.source(scaled=True))


class TestNewFlowNeedsNoServiceEdits:
    """Registering a flow must make it cacheable and measurable as-is."""

    def test_distinct_cache_keys(self):
        with registered(NoOptFlow):
            noopt = CompileJob("ours-noopt", "dotproduct").key()
            ours = CompileJob("ours", "dotproduct").key()
            flang = CompileJob("flang", "dotproduct").key()
        assert len({noopt, ours, flang}) == 3

    def test_service_executes_and_caches_the_new_flow(self):
        service = CompileService(ArtifactCache())
        with registered(NoOptFlow):
            first = service.execute(CompileJob("ours-noopt", "dotproduct"))
            second = service.execute(CompileJob("ours-noopt", "dotproduct"))
        assert first.ok and second.ok
        assert second.cached and service.recompilations == 1
        assert first.flow == "ours-noopt"

    def test_custom_flow_batches_stay_in_process(self):
        # the flow registry is per-process: a pool worker would not know
        # ours-noopt, so batch submission must execute it in-process and
        # still populate the submitter's key
        service = CompileService(ArtifactCache(), max_workers=4)
        with registered(NoOptFlow):
            job = CompileJob("ours-noopt", "dotproduct")
            report = service.submit([job, CompileJob("ours-noopt", "sum")])
            assert report.executed == 2
            assert report.pool_executed == 0
            assert not report.failures
            assert service.cache.contains(job.key())

    def test_harness_measurement_via_generic_adapter(self):
        workload = get_workload("dotproduct")
        service = CompileService(ArtifactCache())
        with registered(NoOptFlow), use_service(service):
            measurement = CompilerAdapter(flow="ours-noopt").measure(workload)
        assert measurement.compiled
        assert math.isfinite(measurement.runtime_s)

    def test_unknown_flow_is_a_cacheable_failure(self):
        service = CompileService(ArtifactCache())
        job = CompileJob("no-such-flow", "dotproduct")
        first = service.execute(job)
        second = service.execute(CompileJob("no-such-flow", "dotproduct"))
        assert not first.ok and not second.ok
        assert "no-such-flow" in first.error
        assert "flang" in first.error  # the error names the registered flows
        assert second.cached and service.recompilations == 1

    def test_flow_result_error_becomes_a_failure_artifact(self):
        # a flow that encodes failure in the result (instead of raising)
        # must not be cached as a success built from a partial stage
        class ErrFlow(Flow):
            name = "err-flow"

            def compile(self, workload, options, execution, **kw):
                from repro.flang import FlangCompiler
                return FlangCompiler().compile(workload.source(scaled=True))

        from repro.workloads import pw_advection
        with registered(ErrFlow):
            artifact = run_job(CompileJob("err-flow", "pw-advection",
                                          workload=pw_advection(openacc=True)))
        assert not artifact.ok
        assert "acc" in artifact.error and "dialect" in artifact.error

    def test_run_job_unknown_flow_artifact(self):
        artifact = run_job(CompileJob("no-such-flow", "dotproduct"))
        assert not artifact.ok
        assert artifact.key == CompileJob("no-such-flow",
                                          "dotproduct").safe_key()
        assert "unknown compiler flow" in artifact.error


class TestEngineNameSync:
    def test_flows_engines_match_interpreter_engine_names(self):
        """flows.ENGINES and machine's ENGINE_NAMES cannot import each other
        (cycle through the flang driver); this asserts they stay in sync,
        including the order — the first entry is the oracle's baseline."""
        from repro.flows import ENGINES
        from repro.machine.interpreter import ENGINE_NAMES
        assert tuple(ENGINES) == tuple(ENGINE_NAMES)
        assert ENGINES[0] == "compiled"
