"""Tests for the paper's optimisation passes (Section VI)."""

import pytest

from repro.core import StandardMLIRCompiler, convert_fir_to_standard
from repro.flang import FlangCompiler
from repro.ir.pass_manager import PassManager
from repro.ir.printer import print_op

from ..conftest import last_value, run_flang, run_ours


def optimised(source: str, **kwargs):
    return StandardMLIRCompiler(**kwargs).compile(source).optimised_module


ALLOCATABLE_STENCIL = """
program p
  implicit none
  integer, parameter :: n = 32
  real(kind=8), dimension(:,:), allocatable :: u, v
  real(kind=8) :: t
  integer :: i, j
  allocate(u(n, n), v(n, n))
  do j = 1, n
    do i = 1, n
      u(i, j) = real(i + j, 8)
    end do
  end do
  do j = 2, n - 1
    do i = 2, n - 1
      v(i, j) = 0.25d0 * (u(i - 1, j) + u(i + 1, j) + u(i, j - 1) + u(i, j + 1))
    end do
  end do
  t = sum(v)
  print *, t
end program p
"""


class TestStaticShapeRecovery:
    def test_dynamic_memrefs_become_static(self):
        module = optimised(ALLOCATABLE_STENCIL, vector_width=0)
        text = print_op(module)
        assert "memref<32x32xf64>" in text

    def test_reallocated_arrays_stay_dynamic(self):
        src = """
program p
  implicit none
  real(kind=8), dimension(:), allocatable :: x
  allocate(x(8))
  x(1) = 1.0d0
  deallocate(x)
  allocate(x(16))
  x(2) = 2.0d0
  print *, x(2)
end program p
"""
        module = optimised(src, vector_width=0)
        text = print_op(module)
        assert "memref<?xf64>" in text

    def test_semantics_preserved(self):
        assert last_value(run_flang(ALLOCATABLE_STENCIL)) == \
            pytest.approx(last_value(run_ours(ALLOCATABLE_STENCIL)))


class TestDescriptorLoadHoisting:
    def test_container_loads_hoisted_out_of_loops(self):
        module = optimised(ALLOCATABLE_STENCIL, vector_width=0)
        # inside every affine/scf loop body there should be no loads of the
        # outer memref-of-memref containers left
        for op in module.walk():
            if op.name in ("scf.for", "affine.for"):
                for inner in op.walk():
                    if inner.name == "memref.load":
                        source_type = inner.operands[0].type
                        if source_type.rank == 0:
                            assert not hasattr(source_type.element_type, "rank") or \
                                not isinstance(source_type.element_type,
                                               type(source_type)), \
                                "outer-memref dereference left inside a loop"


class TestVectorisation:
    def test_stencil_loop_is_vectorised(self):
        module = optimised(ALLOCATABLE_STENCIL, vector_width=4)
        names = {op.name for op in module.walk()}
        assert "vector.load" in names or "vector.store" in names

    def test_vector_width_respected(self):
        module = optimised(ALLOCATABLE_STENCIL, vector_width=4)
        text = print_op(module)
        assert "vector<4xf64>" in text

    def test_disabled_vectorisation_produces_no_vector_ops(self):
        module = optimised(ALLOCATABLE_STENCIL, vector_width=0)
        names = {op.name for op in module.walk()}
        assert not any(n.startswith("vector.") for n in names)

    def test_reduction_loop_uses_vector_reduction(self):
        src = """
program p
  implicit none
  integer, parameter :: n = 64
  real(kind=8), dimension(n) :: x, y
  real(kind=8) :: acc
  integer :: i
  do i = 1, n
    x(i) = real(i, 8)
    y(i) = 2.0d0
  end do
  acc = 0.0d0
  do i = 1, n
    acc = acc + x(i) * y(i)
  end do
  print *, acc
end program p
"""
        module = optimised(src, vector_width=4)
        names = {op.name for op in module.walk()}
        assert "vector.reduction" in names
        assert last_value(run_ours(src)) == pytest.approx(
            sum(i * 2.0 for i in range(1, 65)))

    def test_vectorised_results_match_scalar(self):
        scalar = last_value(run_ours(ALLOCATABLE_STENCIL, vector_width=0))
        vectorised = last_value(run_ours(ALLOCATABLE_STENCIL, vector_width=4))
        assert scalar == pytest.approx(vectorised)


class TestParallelisationAndFMA:
    def test_scf_parallel_and_openmp_lowering(self):
        module = optimised(ALLOCATABLE_STENCIL, vector_width=0, parallelise=True)
        names = {op.name for op in module.walk()}
        assert "omp.parallel" in names and "omp.wsloop" in names

    def test_reduction_loops_not_parallelised(self):
        """The paper's simple scf.parallel conversion skips reductions."""
        src = """
program p
  implicit none
  real(kind=8), dimension(64) :: x
  real(kind=8) :: acc
  integer :: i
  do i = 1, 64
    x(i) = 1.0d0
  end do
  acc = 0.0d0
  do i = 1, 64
    acc = acc + x(i)
  end do
  print *, acc
end program p
"""
        module = optimised(src, vector_width=0, parallelise=True)
        # the accumulation loop must stay serial: at least one scf.for remains
        parallel_bodies = [op for op in module.walk() if op.name == "omp.wsloop"]
        serial_loops = [op for op in module.walk() if op.name in ("scf.for", "affine.for")]
        assert serial_loops, "reduction loop was incorrectly parallelised"

    def test_fma_uplift(self):
        src = """
program p
  implicit none
  real(kind=8), dimension(32) :: x, y
  real(kind=8) :: alpha
  integer :: i
  alpha = 1.5d0
  do i = 1, 32
    x(i) = real(i, 8)
    y(i) = 2.0d0
  end do
  do i = 1, 32
    y(i) = y(i) + alpha * x(i)
  end do
  print *, y(32)
end program p
"""
        module = optimised(src, vector_width=0)
        names = {op.name for op in module.walk()}
        assert "math.fma" in names

    def test_tiling_marks_loops(self):
        from repro.workloads import get_workload
        w = get_workload("matmul")
        module = optimised(w.source(scaled=True), vector_width=0, tile=True)
        tiled = [op for op in module.walk()
                 if op.name in ("affine.for", "scf.for") and op.get_attr("tiled")]
        assert tiled


class TestGPULowering:
    def test_acc_kernels_become_gpu_launch(self):
        from repro.workloads import pw_advection
        src = pw_advection(openacc=True).source(scaled=True)
        module = optimised(src, vector_width=0, gpu=True)
        names = {op.name for op in module.walk()}
        assert "gpu.launch" in names
        assert "gpu.host_register" in names
        assert not any(n.startswith("acc.") for n in names)

    def test_gpu_results_match_cpu(self):
        from repro.workloads import pw_advection
        cpu_src = pw_advection(openacc=False).source(scaled=True)
        gpu_src = pw_advection(openacc=True).source(scaled=True)
        assert last_value(run_ours(cpu_src)) == pytest.approx(
            last_value(run_ours(gpu_src, gpu=True)))

    def test_flang_raises_internal_error_on_openacc(self):
        """Section VI-C: Flang v18 ICEs with a missing
        LLVMTranslationDialectInterface when OpenACC is used."""
        from repro.flang import FlangCodegenError
        from repro.workloads import pw_advection
        src = pw_advection(openacc=True).source(scaled=True)
        result = FlangCompiler().compile(src, stop_at="llvm")
        assert not result.succeeded
        assert "LLVMTranslationDialectInterface" in result.error
