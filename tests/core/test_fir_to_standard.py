"""Tests for the paper's core contribution: the HLFIR/FIR -> standard MLIR
mapping (Section V) and its supporting passes."""

import pytest

from repro.core import (StandardMLIRCompiler, convert_fir_to_standard,
                        fixup_branches, wrap_in_alloca_scope)
from repro.dialects import cf, dialects_used, fir, tmpbr, uses_only_standard_dialects
from repro.dialects import func as func_d
from repro.dialects.builtin import ModuleOp
from repro.flang import FlangCompiler
from repro.ir import Block, Region
from repro.ir import types as T
from repro.ir.printer import print_op
from repro.machine import Interpreter

from ..conftest import last_value, run_flang, run_ours


def lower(source: str) -> ModuleOp:
    hlfir = FlangCompiler().lower_to_hlfir(source)
    return convert_fir_to_standard(hlfir)


class TestControlStructures:
    def test_conditional_matches_paper_listing3(self, conditional_source):
        """Listing 3: intent(in) scalar passed by value, scf.if with yields."""
        module = lower(conditional_source)
        text = print_op(module)
        assert '"scf.if"' in text
        assert '"scf.yield"' in text
        assert "fir." not in text and "hlfir." not in text
        solver = module.lookup_symbol("_QPrun_solver")
        # the intent(in) argument becomes a plain i32, by value
        assert solver.function_type.inputs[0] == T.i32

    def test_forward_do_loop_becomes_scf_for(self, simple_program_source):
        module = lower(simple_program_source)
        names = {op.name for op in module.walk()}
        assert "scf.for" in names
        assert "fir.do_loop" not in names

    def test_negative_step_loop_reverses_bounds(self):
        src = """
program p
  implicit none
  integer :: i
  real(kind=8), dimension(16) :: v
  real(kind=8) :: t
  do i = 1, 16
    v(i) = real(i, 8)
  end do
  t = 0.0d0
  do i = 16, 1, -1
    t = t + v(i) * real(i, 8)
  end do
  print *, t
end program p
"""
        module = lower(src)
        assert uses_only_standard_dialects(module)
        # semantics preserved: both flows agree
        assert last_value(run_flang(src)) == pytest.approx(last_value(run_ours(src)))

    def test_unknown_step_sign_emits_runtime_check(self):
        src = """
subroutine strided(n, s, v, total)
  implicit none
  integer, intent(in) :: n, s
  real(kind=8), dimension(n), intent(in) :: v
  real(kind=8), intent(out) :: total
  integer :: i
  total = 0.0d0
  do i = 1, n, s
    total = total + v(i)
  end do
end subroutine strided
"""
        module = lower(src)
        text = print_op(module)
        # a runtime scf.if selects between the forward and reversed loops
        assert text.count('"scf.for"') >= 2
        assert '"scf.if"' in text

    def test_do_while_becomes_scf_while(self):
        src = """
program p
  implicit none
  integer :: i
  i = 1
  do while (i < 10)
    i = i * 2
  end do
  print *, i
end program p
"""
        module = lower(src)
        names = {op.name for op in module.walk()}
        assert "scf.while" in names
        assert "fir.iterate_while" not in names
        assert last_value(run_flang(src)) == last_value(run_ours(src)) == 16.0

    def test_exit_preserves_do_variable(self):
        """F2018 11.1.7.4.3: the do-variable keeps its value at the moment
        of EXIT, not the loop's normal-completion value."""
        src = """
program p
  implicit none
  integer :: i
  do i = 1, 10
    if (i == 3) then
      exit
    end if
  end do
  print *, i
end program p
"""
        assert last_value(run_flang(src)) == last_value(run_ours(src)) == 3.0

    def test_i64_reductions_outside_i32_range(self):
        """Reduction sentinels follow the element width: i64 maxval/minval
        below i32 range must not return the i32 sentinel (both the linalg
        init and the vectorised accumulator paths)."""
        src = """
program p
  implicit none
  integer(kind=8) :: m, big(8)
  integer :: i
  m = 100000
  m = m * 100000 * (-3)
  do i = 1, 8
    big(i) = m - i
  end do
  print *, maxval(big), minval(big)
end program p
"""
        for interp in (run_flang(src), run_ours(src),
                       run_ours(src, vector_width=0)):
            values = [float(tok) for tok in interp.printed[-1].split()]
            assert values == [-30000000001.0, -30000000008.0]

    def test_exit_loop_preserves_semantics(self):
        """EXIT from inside a nested IF block desugars to a flag-guarded
        loop in semantics, giving exact Fortran semantics on every flow."""
        src = """
program p
  implicit none
  integer :: i, found
  real(kind=8), dimension(50) :: v
  do i = 1, 50
    v(i) = real(i, 8)
  end do
  found = 0
  do i = 1, 50
    if (v(i) > 20.5d0) then
      found = i
      exit
    end if
  end do
  print *, found
end program p
"""
        assert last_value(run_flang(src)) == last_value(run_ours(src)) == 21.0

    def test_branch_fixup_rewrites_tmpbr(self):
        """The intermediate branch dialect of Section V-A is replaced by cf."""
        func = func_d.FuncOp("f", T.FunctionType([], []))
        entry = func.entry_block
        second = Block()
        func.body.add_block(second)
        entry.add_op(tmpbr.BrOp(1))
        second.add_op(func_d.ReturnOp())
        rewritten = fixup_branches(func)
        assert rewritten == 1
        assert entry.terminator.name == "cf.br"
        assert entry.terminator.successors[0] is second


class TestMemoryMapping:
    def test_scalar_becomes_rank0_memref(self):
        module = lower("""
program p
  implicit none
  integer :: i
  i = 23
  print *, i
end program p
""")
        text = print_op(module)
        assert "memref<i32>" in text
        assert '"memref.alloca"' in text
        assert '"memref.store"' in text

    def test_allocatable_becomes_memref_of_memref(self):
        """Listing 7: outer stack memref containing the heap-allocated memref."""
        module = lower("""
program p
  implicit none
  integer, dimension(:), allocatable :: data
  allocate(data(10))
  data(2) = 100
end program p
""")
        text = print_op(module)
        assert "memref<memref<?xi32>>" in text
        assert '"memref.alloc"' in text
        assert '"memref.dealloc"' not in text  # no deallocate statement

    def test_one_based_index_rebasing(self):
        """Listing 7 lines 6-11: subtraction of the lower bound before access."""
        module = lower("""
program p
  implicit none
  integer, dimension(:), allocatable :: data
  allocate(data(10))
  data(2) = 100
end program p
""")
        text = print_op(module)
        assert '"arith.subi"' in text

    def test_static_array_uses_static_memref(self, simple_program_source):
        module = lower(simple_program_source)
        text = print_op(module)
        assert "memref<8x8xf64>" in text

    def test_explicit_shape_dummy_becomes_dynamic_memref(self):
        module = lower("""
subroutine fill(n, v)
  implicit none
  integer, intent(in) :: n
  real(kind=8), dimension(n), intent(inout) :: v
  integer :: i
  do i = 1, n
    v(i) = 1.0d0
  end do
end subroutine fill
""")
        fn = module.lookup_symbol("_QPfill")
        assert fn.function_type.inputs[0] == T.i32
        arg1 = fn.function_type.inputs[1]
        assert isinstance(arg1, T.MemRefType) and not arg1.has_static_shape()

    def test_array_section_becomes_subview(self):
        module = lower("""
subroutine consume(v, t)
  implicit none
  real(kind=8), dimension(4), intent(in) :: v
  real(kind=8), intent(out) :: t
  t = v(1) + v(4)
end subroutine consume

program p
  implicit none
  real(kind=8), dimension(10, 10) :: a
  real(kind=8) :: t
  a(3, 5) = 7.0d0
  call consume(a(2:5, 5), t)
  print *, t
end program p
""")
        names = {op.name for op in module.walk()}
        assert "memref.subview" in names

    def test_deallocate_becomes_memref_dealloc(self):
        module = lower("""
program p
  implicit none
  real(kind=8), dimension(:), allocatable :: x
  allocate(x(4))
  deallocate(x)
end program p
""")
        names = {op.name for op in module.walk()}
        assert "memref.dealloc" in names

    def test_derived_type_split_into_member_memrefs(self):
        module = lower("""
program p
  implicit none
  type :: config
    integer :: steps
    real(kind=8) :: dt
  end type config
  type(config) :: c
  c%steps = 10
  c%dt = 0.5d0
  print *, c%dt
end program p
""")
        text = print_op(module)
        # one memref per member, no fir record types remaining
        assert text.count('"memref.alloca"') >= 2
        assert "fir.type" not in text

    def test_alloca_scope_wrapping(self):
        module = lower("""
program p
  implicit none
  real(kind=8), dimension(8) :: v
  v(1) = 1.0d0
end program p
""")
        func = module.functions()[0]
        assert wrap_in_alloca_scope(func)
        names = [op.name for op in func.entry_block.ops]
        assert names[0] == "memref.alloca_scope"


class TestIntrinsicsToLinalg:
    def test_sum_lowered_per_listing8(self):
        """Listing 8: 0-d output memref initialised then linalg.reduce."""
        module = lower("""
program p
  implicit none
  real(kind=8), dimension(16) :: v
  real(kind=8) :: t
  v(1) = 3.0d0
  t = sum(v)
  print *, t
end program p
""")
        text = print_op(module)
        assert '"linalg.reduce"' in text
        assert '"linalg.yield"' in text
        assert "memref<f64>" in text

    def test_matmul_transpose_dotproduct_lowered_to_linalg(self):
        module = lower("""
program p
  implicit none
  real(kind=8), dimension(8, 8) :: a, b, c, d
  real(kind=8), dimension(8) :: x, y
  real(kind=8) :: t
  a(1, 1) = 1.0d0
  b(1, 1) = 2.0d0
  x(1) = 1.0d0
  y(1) = 4.0d0
  c = matmul(a, b)
  d = transpose(c)
  t = dot_product(x, y) + maxval(d)
  print *, t
end program p
""")
        names = {op.name for op in module.walk()}
        assert {"linalg.matmul", "linalg.transpose", "linalg.dot",
                "linalg.reduce"} <= names
        assert not any(n.startswith("hlfir.") for n in names)

    def test_intrinsic_results_match_flang_runtime(self):
        src = """
program p
  implicit none
  integer, parameter :: n = 12
  real(kind=8), dimension(n, n) :: a, b, c
  real(kind=8), dimension(n) :: x, y
  real(kind=8) :: t
  integer :: i, j
  do j = 1, n
    do i = 1, n
      a(i, j) = 1.0d0 / real(i + j, 8)
      b(i, j) = real(i - j, 8) * 0.25d0
    end do
  end do
  do i = 1, n
    x(i) = real(i, 8)
    y(i) = 1.0d0 / real(i, 8)
  end do
  c = matmul(a, b)
  t = sum(c) + dot_product(x, y) + maxval(a) + minval(b) + product(x(1:3))
  print *, t
end program p
"""
        assert last_value(run_flang(src)) == pytest.approx(last_value(run_ours(src)),
                                                           rel=1e-10)


class TestWholeFlow:
    def test_no_flang_dialects_remain(self, simple_program_source):
        module = lower(simple_program_source)
        assert uses_only_standard_dialects(module)

    def test_compiler_driver_stages(self, simple_program_source):
        result = StandardMLIRCompiler(vector_width=4).compile(simple_program_source)
        assert "hlfir" in dialects_used(result.hlfir_module)
        assert result.is_standard_only
        assert "affine" in dialects_used(result.optimised_module) or \
               "scf" in dialects_used(result.optimised_module)
        assert result.pipeline_description.startswith("builtin.module(")

    def test_llvm_lowering_leaves_only_llvm_and_structure(self, simple_program_source):
        result = StandardMLIRCompiler(vector_width=0,
                                      lower_to_llvm=True).compile(simple_program_source)
        used = dialects_used(result.llvm_module)
        assert "memref" not in used
        assert "scf" not in used
        assert "llvm" in used
