"""Shared fixtures for the test suite."""

import pytest

from repro.core import StandardMLIRCompiler, convert_fir_to_standard
from repro.flang import FlangCompiler
from repro.machine import Interpreter


SIMPLE_PROGRAM = """
program main
  implicit none
  integer, parameter :: n = 8
  real(kind=8), dimension(n, n) :: a
  real(kind=8), dimension(:), allocatable :: b
  real(kind=8) :: total
  integer :: i, j
  allocate(b(n))
  total = 0.0d0
  do j = 1, n
    do i = 1, n
      a(i, j) = real(i + j, 8)
    end do
  end do
  do i = 1, n
    b(i) = a(i, 1) * 2.0d0
    total = total + b(i)
  end do
  total = total + sum(a)
  print *, total
end program main
"""

CONDITIONAL_SUBROUTINE = """
subroutine run_solver(i, out)
  implicit none
  integer, intent(in) :: i
  integer, intent(out) :: out
  if (i == 50) then
    out = 1
  else
    out = 2
  end if
end subroutine run_solver

program main
  implicit none
  integer :: r1, r2
  call run_solver(50, r1)
  call run_solver(7, r2)
  print *, r1, r2
end program main
"""


@pytest.fixture(scope="session")
def flang_compiler():
    return FlangCompiler()


@pytest.fixture(scope="session")
def standard_compiler():
    return StandardMLIRCompiler(vector_width=4)


@pytest.fixture(scope="session")
def simple_program_source():
    return SIMPLE_PROGRAM


@pytest.fixture(scope="session")
def conditional_source():
    return CONDITIONAL_SUBROUTINE


def run_flang(source: str):
    """Compile with the baseline flow (FIR level) and interpret."""
    result = FlangCompiler().compile(source, stop_at="fir")
    interp = Interpreter(result.fir_module)
    interp.run_main()
    return interp


def run_ours(source: str, **kwargs):
    """Compile with the standard-MLIR flow and interpret the optimised IR."""
    result = StandardMLIRCompiler(vector_width=kwargs.pop("vector_width", 4),
                                  **kwargs).compile(source)
    interp = Interpreter(result.optimised_module)
    interp.run_main()
    return interp


def last_value(interp) -> float:
    assert interp.printed, "program produced no output"
    return float(interp.printed[-1].split()[-1])
