"""Function-granular incremental compilation: invalidation and migration.

The two load-bearing guarantees:

* **minimal invalidation** — mutate one function of a two-function module
  and exactly that function recompiles; every other function is spliced
  from the store, and the final module is bit-identical to a cold compile
  of the mutated source (ISSUE satellite c);
* **schema migration** — artifacts persisted under an older
  ``KEY_SCHEMA_VERSION`` read back as clean misses, never as corrupt hits
  (ISSUE satellite b).
"""

import pytest

from repro.core.fir_to_standard import convert_fir_to_standard
from repro.core.pipelines import standard_flow_pipeline
from repro.flang import FlangCompiler
from repro.ir import pipeline_settings, print_op
from repro.service.cache import ArtifactCache
from repro.service.incremental import FunctionArtifactStore
from repro.service.jobs import CompileJob, run_job

F1 = """
subroutine inc_one(n)
  implicit none
  integer, intent(in) :: n
  integer :: i
  real(kind=8), dimension(40) :: a
  do i = 1, 40
    a(i) = a(i) + 1.0d0
  end do
end subroutine inc_one
"""

F2 = """
subroutine scale_two(n)
  implicit none
  integer, intent(in) :: n
  integer :: i
  real(kind=8), dimension(40) :: b, c
  do i = 1, 40
    c(i) = b(i) * 2.0d0
  end do
end subroutine scale_two
"""

F2_EDITED = """
subroutine scale_two(n)
  implicit none
  integer, intent(in) :: n
  integer :: i
  real(kind=8), dimension(40) :: b, c
  do i = 1, 40
    c(i) = b(i) * 2.0d0 + 0.5d0
  end do
end subroutine scale_two
"""

MAIN = """
program driver
  implicit none
  real(kind=8), dimension(40) :: a
  real(kind=8) :: s
  integer :: i
  do i = 1, 40
    a(i) = 1.0d0
  end do
  call inc_one(40)
  call scale_two(40)
  s = 0.0d0
  do i = 1, 40
    s = s + a(i)
  end do
  print *, s
end program driver
"""


def _standard_module(source):
    return convert_fir_to_standard(FlangCompiler().lower_to_hlfir(source))


def _compile(source, store):
    module = _standard_module(source)
    pm = standard_flow_pipeline()
    with pipeline_settings(function_cache=store):
        pm.run(module)
    return module


def test_mutating_one_function_recompiles_exactly_one():
    store = FunctionArtifactStore()
    cold = _compile(F1 + F2, store)
    assert store.counters.misses == 2 and store.counters.stores == 2

    # same source again: every function splices from the store
    warm = _compile(F1 + F2, store)
    assert store.counters.memory_hits == 2
    assert store.counters.misses == 2          # unchanged
    assert print_op(warm) == print_op(cold)

    # edit one function: exactly one recompile (one new miss, one hit)
    incremental = _compile(F1 + F2_EDITED, store)
    assert store.counters.memory_hits == 3
    assert store.counters.misses == 3
    assert store.counters.stores == 3

    # bit-identical to a from-scratch compile of the edited source
    cold_edited = _compile(F1 + F2_EDITED, FunctionArtifactStore())
    assert print_op(incremental) == print_op(cold_edited)


def test_incremental_result_executes_identically():
    from repro.machine import Interpreter

    store = FunctionArtifactStore()
    _compile(F1 + F2 + MAIN, store)                # warm the store
    incremental = _compile(F1 + F2_EDITED + MAIN, store)
    assert store.counters.memory_hits == 2         # inc_one + driver spliced
    cold = _compile(F1 + F2_EDITED + MAIN, FunctionArtifactStore())

    runs = []
    for module in (incremental, cold):
        interp = Interpreter(module)
        interp.run_main()
        runs.append((interp.stats, tuple(interp.printed)))
    assert runs[0] == runs[1]


def test_disabled_cache_never_touches_store():
    store = FunctionArtifactStore()
    _compile(F1 + F2, store)
    lookups_before = store.counters.lookups
    module = _standard_module(F1 + F2)
    with pipeline_settings(function_cache=None):
        standard_flow_pipeline().run(module)
    assert store.counters.lookups == lookups_before


def test_run_job_feeds_and_reuses_process_store():
    from repro.service.incremental import get_function_store

    store = get_function_store()
    run_job(CompileJob("ours", "dotproduct"))
    hits_before = store.counters.memory_hits
    artifact = run_job(CompileJob("ours", "dotproduct"))
    assert artifact.ok
    assert store.counters.memory_hits > hits_before

    # incremental=False must bypass the store entirely
    lookups_before = store.counters.lookups
    bypass = run_job(CompileJob("ours", "dotproduct", incremental=False))
    assert bypass.ok and bypass.module_text == artifact.module_text
    assert store.counters.lookups == lookups_before


def test_incremental_flag_does_not_change_cache_key():
    a = CompileJob("ours", "dotproduct", incremental=True)
    b = CompileJob("ours", "dotproduct", incremental=False)
    assert a.key() == b.key()
    assert CompileJob.from_spec(b.spec()).incremental is False


# ---------------------------------------------------------------------------
# persistence + schema migration
# ---------------------------------------------------------------------------


def test_persistent_store_serves_across_processes_simulation(tmp_path):
    # two stores sharing one sharded cache directory model two daemon
    # generations: the second (fresh memory) must hit on disk
    cache = ArtifactCache(cache_dir=str(tmp_path))
    first = FunctionArtifactStore(cache=cache)
    cold = _compile(F1 + F2, first)

    second = FunctionArtifactStore(cache=ArtifactCache(cache_dir=str(tmp_path)))
    warm = _compile(F1 + F2, second)
    assert second.counters.disk_hits == 2
    assert second.counters.misses == 0
    assert print_op(warm) == print_op(cold)


def test_schema_bump_turns_old_artifacts_into_clean_misses(tmp_path, monkeypatch):
    # artifacts written under the previous schema version must neither hit
    # nor corrupt a store running the current one
    import repro.service.jobs as jobs_mod

    cache = ArtifactCache(cache_dir=str(tmp_path))
    monkeypatch.setattr(jobs_mod, "KEY_SCHEMA_VERSION",
                        jobs_mod.KEY_SCHEMA_VERSION - 1)
    old = FunctionArtifactStore(cache=cache)
    _compile(F1 + F2, old)
    assert old.counters.stores == 2

    monkeypatch.undo()
    migrated = FunctionArtifactStore(cache=ArtifactCache(cache_dir=str(tmp_path)))
    result = _compile(F1 + F2, migrated)
    assert migrated.counters.disk_hits == 0
    assert migrated.counters.misses == 2
    assert migrated.counters.stores == 2
    assert print_op(result) == \
        print_op(_compile(F1 + F2, FunctionArtifactStore()))


def test_corrupt_disk_payload_is_a_miss_not_an_error(tmp_path):
    cache = ArtifactCache(cache_dir=str(tmp_path))
    store = FunctionArtifactStore(cache=cache)
    cold = _compile(F1 + F2, store)

    # vandalise every persisted function payload (the pickle bytes are
    # base64 under the "function" key; garbling the stream head makes
    # unpickling fail while the JSON stays well-formed)
    for shard in tmp_path.rglob("*.json"):
        shard.write_text(shard.read_text().replace('"function":"',
                                                   '"function":"corrupt'))
    fresh = FunctionArtifactStore(cache=ArtifactCache(cache_dir=str(tmp_path)))
    result = _compile(F1 + F2, fresh)
    assert fresh.counters.disk_hits == 0
    assert fresh.counters.misses == 2
    assert print_op(result) == print_op(cold)


def test_lru_eviction_bounds_live_tier():
    store = FunctionArtifactStore(memory_entries=1)
    _compile(F1 + F2, store)
    assert len(store) == 1
