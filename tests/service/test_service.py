"""CompileService behaviour: hit/miss accounting, disk persistence, batch
deduplication and the zero-recompilation guarantee for warm table runs."""

import math
import subprocess
import sys
from pathlib import Path

from repro.harness import experiments
from repro.service import (ArtifactCache, CompileJob, CompileService,
                           ServiceError, enumerate_jobs, jobs_for, run_job,
                           run_tables, use_service)
from repro.workloads import jacobi

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_service(tmp_path=None, **kwargs):
    cache_dir = str(tmp_path / "cache") if tmp_path is not None else None
    return CompileService(ArtifactCache(cache_dir=cache_dir), **kwargs)


class TestExecute:
    def test_miss_then_hit(self):
        service = make_service()
        job = CompileJob("ours", "dotproduct")
        first = service.execute(job)
        second = service.execute(CompileJob("ours", "dotproduct"))
        assert first.ok and second.ok
        assert not first.cached and second.cached
        assert service.recompilations == 1
        assert service.counters()["memory_hits"] == 1
        assert second.stats.total_ops == first.stats.total_ops
        assert second.printed == first.printed

    def test_artifact_records_stage_ir(self):
        artifact = make_service().execute(CompileJob("ours", "sum"))
        assert "func.func" in artifact.module_text

    def test_deterministic_failures_are_cached(self):
        service = make_service()
        job_kwargs = dict(workload_kwargs=(("openacc", True),), gpu=True)
        first = service.execute(CompileJob("flang", "pw-advection", **job_kwargs))
        second = service.execute(CompileJob("flang", "pw-advection", **job_kwargs))
        assert not first.ok and not second.ok
        assert "FlangCodegenError" in second.error
        assert second.cached and service.recompilations == 1
        try:
            second.raise_for_failure()
        except ServiceError as exc:
            assert "acc dialect" in str(exc)
        else:
            raise AssertionError("raise_for_failure did not raise")


class TestPersistence:
    def test_disk_cache_survives_service_instances(self, tmp_path):
        cold = make_service(tmp_path)
        cold.execute(CompileJob("ours", "dotproduct"))
        assert cold.recompilations == 1

        warm = make_service(tmp_path)
        artifact = warm.execute(CompileJob("ours", "dotproduct"))
        assert artifact.cached
        assert warm.recompilations == 0
        assert warm.counters()["disk_hits"] == 1

    def test_warm_stats_reproduce_cold_runtimes(self, tmp_path):
        # the modeled runtime is a pure function of the cached stats, so a
        # disk round trip must reproduce it exactly
        cold = make_service(tmp_path)
        with use_service(cold):
            cold_runtime = experiments.figure3_vectorization("dotproduct")
        warm = make_service(tmp_path)
        with use_service(warm):
            warm_runtime = experiments.figure3_vectorization("dotproduct")
        assert warm.recompilations == 0
        assert cold_runtime.rows[0].measured == warm_runtime.rows[0].measured

    def test_corrupt_disk_entry_is_a_miss_not_an_error(self, tmp_path):
        service = make_service(tmp_path)
        job = CompileJob("ours", "dotproduct")
        service.execute(job)
        for shard in (tmp_path / "cache" / "shards").glob("*.json"):
            shard.write_text("{truncated")
        service.cache.clear_memory()
        artifact = service.execute(CompileJob("ours", "dotproduct"))
        assert artifact.ok and service.recompilations == 2


class TestBatch:
    def test_submit_dedupes_and_counts(self):
        service = make_service()
        jobs = [CompileJob("ours", "dotproduct"),
                CompileJob("ours", "dotproduct"),      # duplicate
                CompileJob("flang", "dotproduct"),
                # dedupes: flang's schema drops the foreign option
                CompileJob("flang", "dotproduct", options={"vector_width": 8})]
        report = service.submit(jobs, max_workers=1)
        assert report.submitted == 4
        assert report.unique == 2
        assert report.executed == 2
        report2 = service.submit(jobs, max_workers=1)
        assert report2.cache_hits == 2 and report2.executed == 0
        assert service.recompilations == 2

    def test_submit_preserves_attached_variant_workloads(self):
        # a job whose attached workload is not reproducible from its spec
        # (OpenMP variant, no workload_kwargs) must not be shipped to the
        # pool as the plain registry workload: the batch has to populate
        # the key the submitter computed
        service = make_service()
        job = CompileJob("flang", "jacobi", workload=jacobi(openmp=True))
        report = service.submit([job, CompileJob("flang", "jacobi")],
                                max_workers=4)
        assert report.executed == 2
        assert service.cache.contains(job.key())
        again = service.execute(
            CompileJob("flang", "jacobi", workload=jacobi(openmp=True)))
        assert again.cached

    def test_unresolvable_job_fails_the_job_not_the_batch(self):
        service = make_service()
        report = service.submit([CompileJob("ours", "no-such-workload"),
                                 CompileJob("ours", "dotproduct")],
                                max_workers=1)
        assert report.executed == 2
        assert len(report.failures) == 1
        assert "no-such-workload" in report.failures[0][1] or \
            "KeyError" in report.failures[0][1]
        artifact = run_job(CompileJob("ours", "no-such-workload"))
        assert not artifact.ok and "KeyError" in artifact.error

    def test_pool_fanout_matches_in_process_results(self, tmp_path):
        jobs = jobs_for("table3", benchmarks=["dotproduct", "sum"])
        pooled = make_service(tmp_path, max_workers=4)
        report = pooled.submit(jobs)
        assert report.executed == report.unique > 0
        serial = make_service()
        for job in jobs_for("table3", benchmarks=["dotproduct", "sum"]):
            mine = serial.execute(job)
            theirs = pooled.execute(job)
            assert theirs.cached
            assert mine.stats.summary() == theirs.stats.summary()
            assert mine.printed == theirs.printed


class TestWarmTables:
    def test_same_table_twice_recompiles_nothing(self):
        service = make_service()
        with use_service(service):
            first = experiments.table3(benchmarks=["dotproduct", "transpose"])
            compiles = service.recompilations
            assert compiles > 0
            second = experiments.table3(benchmarks=["dotproduct", "transpose"])
        assert service.recompilations == compiles, \
            "second run must be served entirely from the cache"
        for label, row in first.measured_matrix().items():
            for column, value in row.items():
                other = second.measured_matrix()[label][column]
                assert value == other or (math.isnan(value)
                                          and math.isnan(other))

    def test_adapter_instances_share_the_cache(self):
        # table3 constructs a fresh OurApproachAdapter per workload; the
        # old per-adapter _StatsCache recomputed identical (workload, flow)
        # executions — the shared service must not
        service = make_service()
        with use_service(service):
            experiments.figure3_vectorization("dotproduct")
            compiles = service.recompilations
            experiments.figure3_vectorization("dotproduct")
        assert service.recompilations == compiles

    def test_run_tables_batch_prewarms_the_table_measurements(self, tmp_path):
        service = make_service(tmp_path)
        result = run_tables(tables=["figure3"], service=service, max_workers=1)
        assert result["batch"].executed == 3
        assert service.recompilations == 3, \
            "regenerating the table must be pure cache hits after the batch"
        row = result["tables"]["figure3"].rows[0]
        assert all(math.isfinite(v) for v in row.measured.values())

    def test_enumerate_jobs_covers_all_tables(self):
        jobs = enumerate_jobs()
        assert len(jobs) > 20
        flows = {job.flow for job in jobs}
        assert flows == {"ours", "flang"}


class TestCli:
    def test_run_tables_cli_cold_and_warm(self, tmp_path):
        cmd = [sys.executable, "-m", "repro.service", "run-tables",
               "--tables", "figure3", "--jobs", "2", "--quiet",
               "--cache-dir", str(tmp_path / "cache"),
               "--summary", str(tmp_path / "summary.json")]
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        cold = subprocess.run(cmd, capture_output=True, text=True, env=env,
                              cwd=str(REPO_ROOT), check=True)
        assert "3 compiled" in cold.stdout
        warm = subprocess.run(cmd, capture_output=True, text=True, env=env,
                              cwd=str(REPO_ROOT), check=True)
        assert "3 cache hits" in warm.stdout
        assert "0 recompilations" in warm.stdout
        assert (tmp_path / "summary.json").exists()
