"""Compilation daemon: socket round trips, request coalescing, transparent
client fallback, and the bit-equality guarantee between daemon-served and
in-process artifacts."""

import asyncio
import json
import os
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.service import ArtifactCache, CompileJob, CompileService, run_job
from repro.service import faults
from repro.service.client import (NO_DAEMON_ENV, SOCKET_ENV, DaemonClient,
                                  DaemonProtocolError, DaemonUnavailable,
                                  discover_client, maybe_daemon_service)
from repro.service.daemon import (CompileDaemon, DaemonError,
                                  parse_socket_spec)
from repro.service.jobs import KEY_SCHEMA_VERSION

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def no_ambient_daemon(monkeypatch, tmp_path):
    """Discovery must see this test's daemon (or none), never a real one."""
    monkeypatch.delenv(SOCKET_ENV, raising=False)
    monkeypatch.delenv(NO_DAEMON_ENV, raising=False)
    monkeypatch.setattr("repro.service.client.default_socket_path",
                        lambda: str(tmp_path / "no-daemon-here.sock"))


@pytest.fixture
def live_daemon(tmp_path, no_ambient_daemon):
    """A real daemon serving a unix socket from a background thread."""
    socket_path = str(tmp_path / "daemon.sock")
    service = CompileService(ArtifactCache())
    daemon = CompileDaemon(service, socket_path)
    ready = threading.Event()

    async def main():
        await daemon.start()
        ready.set()
        await daemon.serve_until_shutdown()

    thread = threading.Thread(target=lambda: asyncio.run(main()),
                              daemon=True)
    thread.start()
    assert ready.wait(10), "daemon did not come up"
    yield socket_path, service, daemon
    if thread.is_alive():
        try:
            with DaemonClient(socket_path) as client:
                client.shutdown()
        except (DaemonUnavailable, OSError):
            pass
        thread.join(10)
    assert not thread.is_alive()


class TestSocketSpecs:
    def test_unix_and_tcp_specs(self):
        assert parse_socket_spec("/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_socket_spec("tcp:127.0.0.1:7777") == \
            ("tcp", ("127.0.0.1", 7777))

    @pytest.mark.parametrize("spec", ["tcp:", "tcp:host", "tcp:host:notnum"])
    def test_bad_tcp_specs_are_rejected(self, spec):
        with pytest.raises(DaemonError):
            parse_socket_spec(spec)


class TestRoundTrip:
    def test_ping_execute_metrics_shutdown(self, live_daemon):
        socket_path, _service, _daemon = live_daemon
        with DaemonClient(socket_path) as client:
            pong = client.ping()
            assert pong["pong"] and pong["pid"] == os.getpid()
            assert pong["schema"] == KEY_SCHEMA_VERSION

            spec = CompileJob("ours", "dotproduct").spec()
            cold, cached_cold = client.execute(spec)
            warm, cached_warm = client.execute(spec)
            assert cold["ok"] and not cached_cold
            assert warm["ok"] and cached_warm
            assert cold == warm

            metrics = client.metrics()
            assert metrics["compiled"] == 1
            assert metrics["cache_hits"] == 1
            assert metrics["hit_rate"] == 0.5
            assert metrics["latency_s"]["ours"]["count"] == 1
            # >= 1: a cold process also writes function-stage payloads
            # through the process-wide store, so the exact count depends on
            # which tests ran before this one
            assert metrics["cache"]["stores"] >= 1
            assert metrics["cache"]["memory_hits"] >= 1

            response = client.shutdown()
            assert response["pid"] == os.getpid()

    def test_daemon_artifact_is_bit_identical_to_in_process(self,
                                                            live_daemon):
        socket_path, _service, _daemon = live_daemon
        job = CompileJob("flang", "sum")
        with DaemonClient(socket_path) as client:
            remote, _ = client.execute(job.spec())
        local = run_job(CompileJob("flang", "sum")).to_payload()
        assert json.dumps(remote, sort_keys=True) == \
            json.dumps(local, sort_keys=True)

    def test_compile_batch_reports_and_orders(self, live_daemon):
        socket_path, _service, _daemon = live_daemon
        specs = [CompileJob("ours", "sum").spec(),
                 CompileJob("ours", "dotproduct").spec(),
                 CompileJob("ours", "sum").spec()]   # intra-batch duplicate
        with DaemonClient(socket_path) as client:
            response = client.compile_batch(specs)
        report = response["report"]
        assert report["submitted"] == 3 and report["unique"] == 2
        assert report["compiled"] == 2 and report["hits"] == 0
        artifacts = response["artifacts"]
        assert [a["workload"] for a in artifacts] == \
            ["sum", "dotproduct", "sum"]
        assert artifacts[0] == artifacts[2]


class TestCoalescing:
    def test_identical_concurrent_jobs_compile_once(self, no_ambient_daemon,
                                                    tmp_path):
        service = CompileService(ArtifactCache())
        daemon = CompileDaemon(service, str(tmp_path / "unused.sock"))
        spec = CompileJob("ours", "dotproduct").spec()

        async def drive():
            daemon._loop = asyncio.get_running_loop()
            return await asyncio.gather(
                *(daemon._compile_specs([spec]) for _ in range(4)))

        results = asyncio.run(drive())
        assert service.recompilations == 1, \
            "four concurrent identical submissions must cost one compile"
        sources = [src for _, (src,), _ in results]
        assert sources.count("compiled") == 1
        # a late submission may find the artifact already cached (the
        # executor can finish the compile between task scheduling slices);
        # "coalesced" and "hit" both mean "no second compile"
        assert all(src in ("coalesced", "hit") for src in sources
                   if src != "compiled")
        assert daemon.metrics.coalesced + daemon.metrics.cache_hits == 3
        assert daemon.metrics.compiled == 1
        payloads = [json.dumps(p, sort_keys=True)
                    for (p,), _, _ in results]
        assert len(set(payloads)) == 1, \
            "every waiter must receive the one compiled artifact"

    def test_coalesced_over_the_socket(self, live_daemon):
        socket_path, service, daemon = live_daemon
        spec = CompileJob("ours", "transpose").spec()

        def one_client(out, index):
            with DaemonClient(socket_path) as client:
                out[index] = client.execute(spec)

        results = [None] * 4
        threads = [threading.Thread(target=one_client, args=(results, i))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert service.recompilations == 1
        payloads = {json.dumps(p, sort_keys=True) for p, _ in results}
        assert len(payloads) == 1
        assert daemon.metrics.compiled == 1
        assert daemon.metrics.cache_hits + daemon.metrics.coalesced == 3


class TestTransparentFallback:
    def test_no_daemon_anywhere_means_none(self, no_ambient_daemon):
        assert discover_client() is None
        assert maybe_daemon_service() is None

    def test_kill_switch_ignores_a_live_daemon(self, live_daemon,
                                               monkeypatch):
        socket_path, _service, _daemon = live_daemon
        monkeypatch.setenv(SOCKET_ENV, socket_path)
        assert discover_client() is not None
        monkeypatch.setenv(NO_DAEMON_ENV, "1")
        assert discover_client() is None

    def test_stale_socket_error_is_actionable(self, no_ambient_daemon,
                                              tmp_path):
        stale = str(tmp_path / "stale.sock")
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.bind(stale)
        probe.close()   # socket file left behind, nobody listening
        with pytest.raises(DaemonUnavailable) as excinfo:
            discover_client(stale, require=True)
        message = str(excinfo.value)
        assert "stale" in message
        assert f"serve --socket {stale}" in message
        # transparent discovery logs and falls back instead of raising
        assert discover_client(stale) is None

    def test_serve_reclaims_a_stale_socket(self, tmp_path):
        stale = str(tmp_path / "stale.sock")
        leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        leftover.bind(stale)
        leftover.close()
        CompileDaemon._claim_unix_socket(stale)
        assert not os.path.exists(stale)

    def test_serve_refuses_a_live_socket(self, tmp_path):
        taken = str(tmp_path / "taken.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(taken)
        listener.listen(1)
        try:
            with pytest.raises(DaemonError) as excinfo:
                CompileDaemon._claim_unix_socket(taken)
            assert "shutdown" in str(excinfo.value)
        finally:
            listener.close()


class TestDaemonBackedService:
    def test_execute_routes_through_daemon_bit_identically(self,
                                                           live_daemon):
        socket_path, daemon_service, _daemon = live_daemon
        service = maybe_daemon_service(socket_path)
        assert service is not None
        artifact = service.execute(CompileJob("ours", "dotproduct"))
        assert artifact.ok
        assert service.daemon_jobs == 1
        assert daemon_service.recompilations == 1
        assert service.recompilations == 0, \
            "the client process itself must not compile"
        # a repeat is a local memory hit, not another socket round trip
        again = service.execute(CompileJob("ours", "dotproduct"))
        assert again.cached and service.daemon_jobs == 1
        local = run_job(CompileJob("ours", "dotproduct"))
        assert json.dumps(artifact.to_payload(), sort_keys=True) == \
            json.dumps(local.to_payload(), sort_keys=True)
        service.client.close()

    def test_submit_counts_daemon_work_as_batch_hits(self, live_daemon):
        socket_path, _daemon_service, _daemon = live_daemon
        service = maybe_daemon_service(socket_path)
        jobs = [CompileJob("ours", "sum"), CompileJob("flang", "sum")]
        cold = service.submit(jobs)
        assert cold.executed == 2 and cold.cache_hits == 0
        warm = service.submit([CompileJob("ours", "sum"),
                               CompileJob("flang", "sum")])
        assert warm.executed == 0 and warm.cache_hits == 2
        assert service.counters()["daemon_jobs"] == 4
        service.client.close()

    def test_degrades_in_process_when_daemon_dies(self, live_daemon):
        socket_path, _daemon_service, _daemon = live_daemon
        service = maybe_daemon_service(socket_path)
        assert service is not None
        with DaemonClient(socket_path) as admin:
            admin.shutdown()
        artifact = service.execute(CompileJob("ours", "sum"))
        assert artifact.ok
        assert service.client is None, "service must drop the dead daemon"
        assert service.recompilations == 1
        assert service.daemon_metrics() is None


class TestWireFaultTolerance:
    """Socket-level robustness: short reads, retries, injected drops."""

    def test_short_read_is_a_clean_retryable_error(self, no_ambient_daemon,
                                                   tmp_path):
        """A response torn by mid-line EOF must surface as a
        :class:`DaemonUnavailable` subclass, never a JSONDecodeError."""
        path = str(tmp_path / "torn.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(1)

        def half_answer():
            conn, _ = listener.accept()
            conn.recv(1 << 16)
            conn.sendall(b'{"id": 1, "ok": true, "pong": tr')  # no newline
            conn.close()

        server = threading.Thread(target=half_answer, daemon=True)
        server.start()
        client = DaemonClient(path, max_attempts=1)
        with pytest.raises(DaemonUnavailable) as excinfo:
            client.ping(timeout=5.0)
        assert isinstance(excinfo.value, DaemonProtocolError)
        assert "truncated" in str(excinfo.value)
        client.close()
        listener.close()
        server.join(5)

    def test_client_retries_through_injected_drops(self, live_daemon):
        """Attempt-0 send and receive drops must be absorbed by the retry
        loop; the caller sees one successful round trip."""
        socket_path, _service, _daemon = live_daemon
        plan = faults.FaultPlan.from_spec(
            "seed=7;client.send.drop:p=1,key=execute,attempt=0;"
            "client.recv.drop:p=1,key=metrics,attempt=0")
        with faults.install(plan, export=False):
            with DaemonClient(socket_path) as client:
                payload, _ = client.execute(
                    CompileJob("ours", "dotproduct").spec())
                assert payload["ok"]
                metrics = client.metrics()
                assert "self_heal" in metrics
                assert client.retries >= 2
                assert client.reconnects >= 1

    def test_daemon_response_drop_is_survived(self, live_daemon):
        """The daemon aborting a connection mid-response looks like a torn
        read; the client's retry on a fresh connection must succeed."""
        socket_path, _service, _daemon = live_daemon
        plan = faults.FaultPlan.from_spec(
            "seed=7;daemon.response.drop:p=1,key=ping:1")
        # export=True: the daemon thread only sees the plan via $REPRO_FAULTS
        with faults.install(plan, export=True):
            with DaemonClient(socket_path) as client:
                pong = client.ping()
                assert pong["pong"]
                assert client.retries >= 1

    def test_exhausted_retries_raise_unavailable(self, live_daemon):
        socket_path, _service, _daemon = live_daemon
        plan = faults.FaultPlan.from_spec(
            "seed=7;client.send.drop:p=1,key=metrics")   # every attempt
        with faults.install(plan, export=False):
            client = DaemonClient(socket_path, max_attempts=2)
            with pytest.raises(DaemonUnavailable):
                client.metrics()
            assert client.retries == 1   # attempts - 1
            client.close()

    def test_metrics_surface_self_heal_counters(self, live_daemon):
        socket_path, _service, _daemon = live_daemon
        with DaemonClient(socket_path) as client:
            metrics = client.metrics()
        for counter in ("retries", "timeouts", "pool_crashes",
                        "quarantined", "daemon_corrupt_payloads"):
            assert counter in metrics["self_heal"]

    def test_socket_replaced_mid_probe_is_not_unlinked(self, tmp_path,
                                                       monkeypatch):
        """TOCTOU guard: if a daemon claims the path between the failed
        probe and the unlink, the (now live) socket file must survive."""
        import repro.service.client as client_mod
        path = str(tmp_path / "racing.sock")
        stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stale.bind(path)
        stale.close()   # stale file: nobody listening
        real_socket = socket.socket
        replacements = []

        class RacingSocket(real_socket):
            def connect(self, address):
                try:
                    return super().connect(address)
                except OSError:
                    # simulate a daemon starting up mid-probe: the path is
                    # re-bound to a brand-new socket file (new inode)
                    os.unlink(address)
                    replacement = real_socket(socket.AF_UNIX,
                                              socket.SOCK_STREAM)
                    replacement.bind(address)
                    replacements.append(replacement)
                    raise

        monkeypatch.setattr(client_mod.socket, "socket", RacingSocket)
        try:
            assert client_mod._remove_stale_socket(path) is False
            assert os.path.exists(path), \
                "the replacement socket must not be unlinked"
        finally:
            for replacement in replacements:
                replacement.close()

    def test_stale_socket_is_unlinked_and_discovery_falls_back(
            self, no_ambient_daemon, tmp_path, monkeypatch):
        stale = str(tmp_path / "stale.sock")
        leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        leftover.bind(stale)
        leftover.close()   # unclean exit: file left, nobody listening
        monkeypatch.setenv(SOCKET_ENV, stale)
        assert discover_client() is None
        assert not os.path.exists(stale), \
            "discovery must clean up the stale socket it found"

    def test_degrades_mid_batch_under_injected_socket_drops(self,
                                                            live_daemon):
        """Every compile_batch attempt dropped: the daemon-backed service
        must finish the batch fully in-process, with no failures."""
        socket_path, _service, _daemon = live_daemon
        service = maybe_daemon_service(socket_path)
        assert service is not None
        plan = faults.FaultPlan.from_spec(
            "seed=7;client.send.drop:p=1,key=compile_batch")
        with faults.install(plan, export=False):
            report = service.submit([CompileJob("ours", "sum"),
                                     CompileJob("ours", "dotproduct")])
        assert not report.failures
        assert report.executed == 2
        assert service.client is None, "service must degrade after retries"
        counters = service.counters()
        assert counters["daemon_degraded"] == 1
        assert counters["daemon_retries"] >= 1
        assert counters["daemon_jobs"] == 0


class TestCli:
    CLI_ENV = {"PYTHONPATH": str(REPO_ROOT / "src"),
               "PATH": "/usr/bin:/bin"}

    def test_ping_without_daemon_is_an_actionable_error(self, tmp_path):
        missing = str(tmp_path / "nobody.sock")
        result = subprocess.run(
            [sys.executable, "-m", "repro.service", "ping",
             "--socket", missing],
            capture_output=True, text=True, env=self.CLI_ENV,
            cwd=str(REPO_ROOT))
        assert result.returncode == 2
        assert "serve --socket" in result.stderr

    def test_serve_rejects_bad_byte_budget(self, tmp_path):
        result = subprocess.run(
            [sys.executable, "-m", "repro.service", "serve",
             "--socket", str(tmp_path / "x.sock"), "--byte-budget", "12Q"],
            capture_output=True, text=True, env=self.CLI_ENV,
            cwd=str(REPO_ROOT))
        assert result.returncode == 2
        assert "--byte-budget" in result.stderr

    def test_help_lists_daemon_subcommands(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.service", "--help"],
            capture_output=True, text=True, env=self.CLI_ENV,
            cwd=str(REPO_ROOT), check=True)
        for command in ("run-tables", "serve", "ping", "metrics",
                        "shutdown"):
            assert command in result.stdout
