"""Self-healing compilation: crash recovery, watchdog timeouts, poison-job
quarantine, and corrupt-payload-as-miss at every store layer."""

import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.service import ArtifactCache, CompileJob, CompileService
from repro.service import faults
from repro.service import scheduler as scheduler_mod
from repro.service.faults import FaultPlan
from repro.service.scheduler import (DEFAULT_JOB_ATTEMPTS,
                                     DEFAULT_JOB_TIMEOUT, JOB_ATTEMPTS_ENV,
                                     JOB_TIMEOUT_ENV)
from repro.service.sharded import ShardedStore

JOBS = [CompileJob("ours", "sum"), CompileJob("ours", "dotproduct")]


class TestSelfHealingPool:
    def test_worker_crash_on_first_attempt_recovers(self):
        """os._exit in a worker breaks the whole pool; the scheduler must
        rebuild it, requeue the casualties, and finish the batch clean."""
        plan = FaultPlan.from_spec(
            "seed=1;worker.crash:p=1,key=ours/dotproduct,attempt=0")
        with faults.install(plan):
            service = CompileService(ArtifactCache(), max_workers=2)
            report = service.submit(JOBS)
        assert not report.failures
        counters = service.self_heal_counters()
        assert counters["pool_crashes"] >= 1
        # the innocent sibling is also requeued when the pool breaks
        assert counters["retries"] >= 1
        assert counters["quarantined"] == 0
        assert service.execute(CompileJob("ours", "dotproduct")).ok

    def test_always_crashing_job_is_quarantined(self):
        """A job that kills its worker on every attempt must land as a
        cached poison artifact; batch-mates complete normally."""
        plan = FaultPlan.from_spec("seed=1;worker.crash:p=1,key=ours/sum")
        with faults.install(plan):
            service = CompileService(ArtifactCache(), max_workers=2)
            report = service.submit(JOBS)
        counters = service.self_heal_counters()
        assert counters["quarantined"] == 1
        assert len(report.failures) == 1
        workload, error = report.failures[0]
        assert workload == "sum" and "quarantined" in error
        payload = service.cache.get(CompileJob("ours", "sum").safe_key())
        assert payload["poisoned"] and not payload["ok"]
        # the poison artifact fails fast from the cache — no more crashes
        artifact = service.execute(CompileJob("ours", "sum"))
        assert not artifact.ok and artifact.cached
        # the innocent batch-mate made it
        assert service.execute(CompileJob("ours", "dotproduct")).ok

    def test_watchdog_kills_and_requeues_hung_workers(self):
        plan = FaultPlan.from_spec(
            "seed=1;worker.hang:p=1,key=ours/sum,attempt=0,delay=60")
        with faults.install(plan):
            service = CompileService(ArtifactCache(), max_workers=2,
                                     job_timeout=2.0)
            started = time.monotonic()
            report = service.submit(JOBS)
            elapsed = time.monotonic() - started
        assert not report.failures
        counters = service.self_heal_counters()
        assert counters["timeouts"] >= 1
        assert elapsed < 30, "watchdog must not wait for the 60s sleep"
        assert service.execute(CompileJob("ours", "sum")).ok

    def test_timeout_quarantine_does_not_poison_the_disk_store(
            self, tmp_path):
        """A job quarantined for *timeouts* (maybe just an overloaded
        machine) fails fast in this process only; the shared disk store
        stays clean so the next process re-attempts from scratch."""
        plan = FaultPlan.from_spec(
            "seed=1;worker.hang:p=1,key=ours/sum,attempt=*,delay=60")
        with faults.install(plan):
            service = CompileService(ArtifactCache(cache_dir=str(tmp_path)),
                                     max_workers=2, job_timeout=1.0,
                                     max_attempts=2)
            report = service.submit(JOBS)
        assert service.self_heal_counters()["quarantined"] == 1
        assert len(report.failures) == 1
        key = CompileJob("ours", "sum").safe_key()
        # in-process: the transient poison serves from the memory tier
        artifact = service.execute(CompileJob("ours", "sum"))
        assert not artifact.ok and artifact.cached
        # on disk: nothing was persisted under the quarantined key
        assert service.cache.store.get(key) is None
        # a fresh process (no fault plan) compiles the job normally
        fresh = CompileService(ArtifactCache(cache_dir=str(tmp_path)))
        assert fresh.execute(CompileJob("ours", "sum")).ok

    def test_crash_quarantine_is_durable_across_processes(self, tmp_path):
        """Deterministic worker-killers *do* earn a persistent poison
        artifact: a later process fails fast instead of re-crashing."""
        plan = FaultPlan.from_spec("seed=1;worker.crash:p=1,key=ours/sum")
        with faults.install(plan):
            service = CompileService(ArtifactCache(cache_dir=str(tmp_path)),
                                     max_workers=2)
            service.submit(JOBS)
        assert service.self_heal_counters()["quarantined"] == 1
        fresh = CompileService(ArtifactCache(cache_dir=str(tmp_path)))
        artifact = fresh.execute(CompileJob("ours", "sum"))
        assert not artifact.ok and artifact.cached
        assert fresh.recompilations == 0

    def test_worker_crash_during_submission_recovers(self, monkeypatch):
        """BrokenProcessPool raised synchronously by pool.submit() (worker
        died in the initializer) must rebuild the generation, not abort
        the batch."""
        real_pool = scheduler_mod.ProcessPoolExecutor
        state = {"broken": True}

        class FlakySubmitPool(real_pool):
            def submit(self, *args, **kwargs):
                if state.pop("broken", None):
                    raise BrokenProcessPool(
                        "worker died during submission")
                return super().submit(*args, **kwargs)

        monkeypatch.setattr(scheduler_mod, "ProcessPoolExecutor",
                            FlakySubmitPool)
        service = CompileService(ArtifactCache(), max_workers=2)
        report = service.submit(JOBS)
        assert not report.failures
        counters = service.self_heal_counters()
        assert counters["pool_crashes"] >= 1
        assert counters["retries"] >= len(JOBS)
        assert counters["quarantined"] == 0

    def test_env_knobs_configure_timeout_and_attempts(self, monkeypatch):
        monkeypatch.setenv(JOB_TIMEOUT_ENV, "5.5")
        monkeypatch.setenv(JOB_ATTEMPTS_ENV, "7")
        service = CompileService(ArtifactCache())
        assert service.job_timeout == 5.5
        assert service.max_attempts == 7
        monkeypatch.setenv(JOB_TIMEOUT_ENV, "junk")
        monkeypatch.setenv(JOB_ATTEMPTS_ENV, "junk")
        service = CompileService(ArtifactCache())
        assert service.job_timeout == DEFAULT_JOB_TIMEOUT
        assert service.max_attempts == DEFAULT_JOB_ATTEMPTS

    def test_counters_ride_the_service_counter_dict(self):
        service = CompileService(ArtifactCache())
        counters = service.counters()
        for name in ("retries", "timeouts", "pool_crashes", "quarantined",
                     "corrupt_payloads"):
            assert counters[name] == 0


class TestCorruptPayloadsAreMisses:
    def test_torn_shard_write_is_survived(self, tmp_path):
        """A truncated shard file (torn write) must read back as empty and
        be overwritten by the next store — never an error."""
        plan = FaultPlan.from_spec("seed=1;sharded.write.torn:p=1")
        store = ShardedStore(str(tmp_path))
        with faults.install(plan, export=False):
            store.put("deadbeef" * 8, {"ok": True})
        clean = ShardedStore(str(tmp_path))
        assert clean.get("deadbeef" * 8) is None

    def test_crc_mismatch_is_a_counted_miss(self, tmp_path):
        plan = FaultPlan.from_spec("seed=1;sharded.payload.corrupt:p=1")
        store = ShardedStore(str(tmp_path))
        store.put("deadbeef" * 8, {"ok": True, "stats": {"ops": 3}})
        with faults.install(plan, export=False):
            assert store.get("deadbeef" * 8) is None
        assert store.corrupt_entries >= 1
        # untampered read still verifies
        assert store.get("deadbeef" * 8) == {"ok": True, "stats": {"ops": 3}}

    def test_injected_read_error_degrades_to_empty_shard(self, tmp_path):
        plan = FaultPlan.from_spec("seed=1;sharded.read.error:p=1")
        store = ShardedStore(str(tmp_path))
        store.put("deadbeef" * 8, {"ok": True})
        with faults.install(plan, export=False):
            assert ShardedStore(str(tmp_path)).get("deadbeef" * 8) is None

    def test_corrupt_cached_artifact_recompiles(self, tmp_path):
        """End to end: a disk payload mangled above the checksum layer is a
        counted miss at the scheduler, and the job recompiles."""
        job = CompileJob("ours", "sum")
        warm = CompileService(ArtifactCache(cache_dir=str(tmp_path)))
        assert warm.execute(job).ok
        plan = FaultPlan.from_spec("seed=1;cache.payload.corrupt:p=1")
        with faults.install(plan, export=False):
            cold = CompileService(ArtifactCache(cache_dir=str(tmp_path)))
            artifact = cold.execute(job)
        assert artifact.ok and not artifact.cached
        assert cold.recompilations == 1
        assert cold.self_heal_counters()["corrupt_payloads"] >= 1

    def test_corrupt_cached_payload_is_a_submit_miss(self, tmp_path):
        """submit() must classify hits with a *validating* read: an entry
        whose payload fails deserialisation is a hit to contains() but None
        to every get(), so contains()-based hit detection would skip the
        recompile and then produce no artifact at all — permanently."""
        warm = CompileService(ArtifactCache(cache_dir=str(tmp_path)))
        assert not warm.submit(JOBS).failures
        plan = FaultPlan.from_spec("seed=1;cache.payload.corrupt:p=1")
        with faults.install(plan, export=False):
            cold = CompileService(ArtifactCache(cache_dir=str(tmp_path)))
            report = cold.submit(JOBS)
        assert report.cache_hits == 0
        assert report.executed == len(JOBS)
        assert not report.failures
        assert cold.self_heal_counters()["corrupt_payloads"] >= len(JOBS)
        # the recompile overwrote the corrupt entries: a clean reader hits
        clean = CompileService(ArtifactCache(cache_dir=str(tmp_path)))
        fresh_report = clean.submit(JOBS)
        assert fresh_report.cache_hits == len(JOBS)
        assert fresh_report.executed == 0

    def test_pre_crc_entries_are_still_readable(self, tmp_path):
        """Entries written before the checksum field existed (no ``"c"``)
        are accepted unverified — the upgrade is backward compatible."""
        store = ShardedStore(str(tmp_path))
        store.put("deadbeef" * 8, {"ok": True})
        import json
        shard = next((tmp_path / "shards").glob("*.json"))
        data = json.loads(shard.read_text())
        for entry in data["entries"].values():
            entry.pop("c", None)
        shard.write_text(json.dumps(data))
        clean = ShardedStore(str(tmp_path))
        assert clean.get("deadbeef" * 8) == {"ok": True}
