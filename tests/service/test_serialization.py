"""ExecutionStats must survive the cache round trip bit-identically: the
cost model consumes the raw counts, so any drift would move modeled
runtimes."""

import json
from collections import Counter

import numpy as np

from repro.machine import ExecutionStats
from repro.service import CompileJob, run_job, stats_from_dict, stats_to_dict


def make_stats() -> ExecutionStats:
    stats = ExecutionStats()
    stats.bump("serial", "arith.addf", 3.0)
    stats.bump("serial", "memref.load", 0.125)       # exact binary fraction
    stats.bump("parallel", "arith.mulf", 1e-17)      # needs full precision
    stats.bump("parallel", "vector.fma", 7)
    stats.counts["gpu"]["gpu.launch"] = np.float64(2.5)
    stats.counts["serial"]["affine.load"] = np.int64(41)
    stats.parallel_loop_iterations = 1024
    stats.parallel_regions = 3
    stats.gpu_kernel_launches = 2
    stats.gpu_threads = 65536
    stats.runtime_calls = Counter({"_FortranASumReal8": 5})
    stats.runtime_elements = Counter({"_FortranASumReal8": 4096})
    return stats


def assert_identical(a: ExecutionStats, b: ExecutionStats):
    assert a.summary() == b.summary()
    for ctx in a.counts:
        for cat, value in a.counts[ctx].items():
            assert repr(float(b.counts[ctx][cat])) == repr(float(value))
    assert a.runtime_calls == b.runtime_calls
    assert a.runtime_elements == b.runtime_elements
    assert a.parallel_loop_iterations == b.parallel_loop_iterations
    assert a.parallel_regions == b.parallel_regions
    assert a.gpu_kernel_launches == b.gpu_kernel_launches
    assert a.gpu_threads == b.gpu_threads
    assert a.total_ops == b.total_ops


class TestStatsRoundTrip:
    def test_in_memory_round_trip(self):
        stats = make_stats()
        assert_identical(stats, stats_from_dict(stats_to_dict(stats)))

    def test_json_text_round_trip(self):
        stats = make_stats()
        text = json.dumps(stats_to_dict(stats))
        assert_identical(stats, stats_from_dict(json.loads(text)))

    def test_round_trip_is_a_fixed_point(self):
        payload = stats_to_dict(make_stats())
        again = stats_to_dict(stats_from_dict(json.loads(json.dumps(payload))))
        assert json.dumps(payload, sort_keys=True) == \
            json.dumps(again, sort_keys=True)

    def test_real_interpreter_stats_round_trip(self):
        artifact = run_job(CompileJob("ours", "dotproduct"))
        assert artifact.ok
        restored = stats_from_dict(
            json.loads(json.dumps(stats_to_dict(artifact.stats))))
        assert_identical(artifact.stats, restored)

    def test_restored_stats_keep_defaultdict_behaviour(self):
        restored = stats_from_dict(stats_to_dict(make_stats()))
        restored.bump("fresh-context", "arith.addf")   # must not raise
        assert restored.counts["fresh-context"]["arith.addf"] == 1
