"""Deterministic fault injection: spec round trips, decision determinism,
arming semantics, and the documented site surface."""

from pathlib import Path

import pytest

import repro
from repro.service import faults
from repro.service.faults import (FAULTS_ENV, KNOWN_SITES, FaultInjected,
                                  FaultPlan, FaultRule, FaultSpecError)

SRC_ROOT = Path(repro.__file__).resolve().parent


class TestSpecRoundTrip:
    def test_parse_full_spec(self):
        plan = FaultPlan.from_spec(
            "seed=42;worker.crash:p=1,key=jacobi,attempt=0;"
            "sharded.write.torn:p=0.1")
        assert plan.seed == 42
        assert plan.rules == (
            FaultRule("worker.crash", p=1.0, key="jacobi", attempt=0),
            FaultRule("sharded.write.torn", p=0.1))

    def test_round_trip_is_stable(self):
        spec = ("seed=7;worker.hang:p=0.5,key=x,attempt=2,delay=1.5;"
                "cache.payload.corrupt:p=1")
        plan = FaultPlan.from_spec(spec)
        assert FaultPlan.from_spec(plan.to_spec()) == FaultPlan.from_spec(spec)

    def test_attempt_wildcard_and_empty_chunks(self):
        plan = FaultPlan.from_spec(";;seed=1;worker.crash:attempt=*,p=1;;")
        assert plan.rules[0].attempt is None

    @pytest.mark.parametrize("bad", [
        "seed=x", "worker.crash:p=nope", "worker.crash:frob=1",
        "worker.crash:pea", ":p=1",
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_spec(bad)


class TestDecisions:
    def test_decisions_are_deterministic_functions_of_the_seed(self):
        plan_a = FaultPlan.from_spec("seed=5;sharded.write.torn:p=0.5")
        plan_b = FaultPlan.from_spec("seed=5;sharded.write.torn:p=0.5")
        keys = [f"key-{i}" for i in range(64)]
        decide = lambda plan: [plan.decide("sharded.write.torn", key=k)
                               is not None for k in keys]
        assert decide(plan_a) == decide(plan_b)
        fired = sum(decide(plan_a))
        assert 0 < fired < len(keys), "p=0.5 must fire sometimes, not always"

    def test_different_seeds_make_different_decisions(self):
        keys = [f"key-{i}" for i in range(64)]
        outcomes = {
            seed: tuple(
                FaultPlan.from_spec(f"seed={seed};worker.crash:p=0.5")
                .decide("worker.crash", key=k) is not None for k in keys)
            for seed in (1, 2)}
        assert outcomes[1] != outcomes[2]

    def test_attempt_scoping_lets_the_retry_through(self):
        plan = FaultPlan.from_spec("seed=1;worker.crash:p=1,key=j,attempt=0")
        assert plan.decide("worker.crash", key="job", attempt=0) is not None
        assert plan.decide("worker.crash", key="job", attempt=1) is None

    def test_site_patterns_are_globs(self):
        plan = FaultPlan.from_spec("seed=1;sharded.*:p=1")
        assert plan.decide("sharded.read.error") is not None
        assert plan.decide("worker.crash") is None

    def test_fired_counts_are_diagnostic_only(self):
        plan = FaultPlan.from_spec("seed=1;worker.crash:p=1")
        plan.decide("worker.crash", key="a")
        assert plan.fired == {"worker.crash": 1}


class TestArming:
    def test_disarmed_sites_are_noops(self):
        assert faults.check("worker.crash", key="anything") is None
        assert faults.corrupt_payload("cache.payload.corrupt",
                                      {"ok": True}) == {"ok": True}

    def test_install_arms_and_restores(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        plan = FaultPlan.from_spec("seed=1;sharded.read.error:p=1")
        with faults.install(plan):
            import os
            assert os.environ[FAULTS_ENV] == plan.to_spec()
            with pytest.raises(FaultInjected):
                faults.maybe_raise("sharded.read.error")
        import os
        assert FAULTS_ENV not in os.environ
        assert faults.check("sharded.read.error") is None

    def test_env_only_arming_works(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "seed=1;jit.payload.corrupt:p=1")
        faults.rearm_from_env()
        assert faults.check("jit.payload.corrupt") is not None
        monkeypatch.delenv(FAULTS_ENV)
        assert faults.check("jit.payload.corrupt") is None

    def test_corrupt_payload_mangles_detectably(self):
        plan = FaultPlan.from_spec("seed=1;cache.payload.corrupt:p=1")
        with faults.install(plan, export=False):
            assert faults.corrupt_payload("cache.payload.corrupt",
                                          {"ok": True}) == \
                {"__fault__": "cache.payload.corrupt"}
            assert faults.corrupt_payload("cache.payload.corrupt",
                                          "x" * 10) == "x" * 5
            assert faults.corrupt_payload("cache.payload.corrupt",
                                          None) is None


class TestChaosPlans:
    def test_random_plans_are_replayable_and_recoverable(self):
        for seed in range(8):
            plan = FaultPlan.random(seed)
            assert plan == FaultPlan.random(seed)
            assert FaultPlan.from_spec(plan.to_spec()) == plan
            assert len(plan.rules) >= 3
            for rule in plan.rules:
                if rule.site in ("worker.crash", "worker.hang"):
                    assert rule.attempt == 0, \
                        "chaos crashes/hangs must spare the retry"

    def test_every_known_site_is_wired_into_the_source(self):
        text = "\n".join(p.read_text()
                         for p in sorted(SRC_ROOT.rglob("*.py")))
        for site in KNOWN_SITES:
            assert f'"{site}"' in text, \
                f"documented site {site} is not referenced anywhere"
