"""Cache-key correctness: every input that changes the artifact changes the
key, everything that doesn't deduplicates to one key."""

import pytest

from repro.service import CompileJob
from repro.workloads import get_workload, jacobi, pw_advection


def key(options=None, **kwargs):
    kwargs.setdefault("flow", "ours")
    kwargs.setdefault("workload_name", "dotproduct")
    return CompileJob(options=options or {}, **kwargs).key()


class TestPipelineOptionKeys:
    def test_identical_jobs_share_a_key(self):
        assert key() == key()

    @pytest.mark.parametrize("variant", [
        {"options": {"vector_width": 0}}, {"options": {"vector_width": 8}},
        {"options": {"tile": True}}, {"options": {"tile_size": 16}},
        {"options": {"unroll": 4}}, {"threads": 64}, {"gpu": True},
        {"flow": "flang"},
    ])
    def test_option_changes_change_the_key(self, variant):
        assert key(**variant) != key()

    def test_default_options_are_explicit_defaults(self):
        # sparse options normalise through the flow schema, so spelling a
        # default out changes nothing
        assert key(options={"vector_width": 4}) == key()
        assert key(options={"tile": False, "unroll": 0}) == key()

    def test_option_order_is_irrelevant(self):
        assert key(options={"tile": True, "unroll": 4}) == \
            key(options={"unroll": 4, "tile": True})

    def test_thread_counts_bucket_to_one_parallel_artifact(self):
        # stats depend on parallel-vs-serial, not on the core count
        assert key(threads=2) == key(threads=64)
        assert key(threads=1) != key(threads=2)

    def test_flang_flow_ignores_standard_pipeline_options(self):
        # vector_width/tile/unroll are not in the flang flow's schema, so
        # jobs differing only there deduplicate to one flang artifact
        assert key(flow="flang", options={"vector_width": 0}) == \
            key(flow="flang", options={"vector_width": 8})
        assert key(flow="flang", options={"tile": True}) == key(flow="flang")

    def test_unknown_flow_key_does_not_raise_via_safe_key(self):
        job = CompileJob("no-such-flow", "dotproduct")
        with pytest.raises(Exception):
            job.key()
        assert job.safe_key() == CompileJob("no-such-flow",
                                            "dotproduct").safe_key()
        assert job.safe_key() != CompileJob("no-such-flow", "sum").safe_key()


class TestWorkloadVariantKeys:
    def test_distinct_workloads_distinct_keys(self):
        assert key(workload_name="sum") != key(workload_name="dotproduct")

    def test_openmp_variant_changes_the_key(self):
        base = CompileJob("ours", "jacobi", workload=jacobi()).key()
        omp = CompileJob("ours", "jacobi",
                         workload=jacobi(openmp=True)).key()
        assert base != omp

    def test_openacc_variant_changes_the_key(self):
        base = CompileJob("ours", "pw-advection",
                          workload=pw_advection()).key()
        acc = CompileJob("ours", "pw-advection",
                         workload=pw_advection(openacc=True)).key()
        assert base != acc

    def test_grid_cells_variant_changes_the_key(self):
        small = CompileJob("ours", "pw-advection", gpu=True,
                           workload=pw_advection(openacc=True,
                                                 grid_cells=134_000_000)).key()
        large = CompileJob("ours", "pw-advection", gpu=True,
                           workload=pw_advection(openacc=True,
                                                 grid_cells=536_000_000)).key()
        assert small != large

    def test_attached_and_registry_workloads_agree(self):
        # the pool worker resolves the workload via the registry; the key it
        # computes must match the key the submitting side computed
        attached = CompileJob(
            "ours", "jacobi", workload_kwargs=(("openmp", True),),
            workload=jacobi(openmp=True)).key()
        resolved = CompileJob(
            "ours", "jacobi", workload_kwargs=(("openmp", True),)).key()
        assert attached == resolved

    def test_spec_round_trip_preserves_the_key(self):
        job = CompileJob("ours", "pw-advection",
                         workload_kwargs=(("openacc", True),
                                          ("grid_cells", 134_000_000)),
                         gpu=True, options={"vector_width": 8})
        assert CompileJob.from_spec(job.spec()).key() == job.key()

    def test_spec_round_trip_preserves_options(self):
        job = CompileJob("ours", "dotproduct",
                         options={"tile": True, "tile_size": 16, "unroll": 2})
        back = CompileJob.from_spec(job.spec())
        assert back.options_dict() == job.options_dict()
        assert back.key() == job.key()


class TestKeyMaterial:
    def test_material_names_schema_flow_and_source_hash(self):
        material = CompileJob("ours", "dotproduct").key_material()
        assert material["schema"] >= 2
        assert material["flow"] == "ours"
        assert material["workload"]["source_sha256"] == \
            get_workload("dotproduct").source_hash()
        assert material["pipeline"]["vector_width"] == 4

    def test_material_pipeline_is_flow_normalised(self):
        # derived options (parallelise, gpu) come from the execution context
        # and the workload, via the flow's normalisation hook
        serial = CompileJob("ours", "dotproduct").key_material()
        threaded = CompileJob("ours", "dotproduct", threads=8).key_material()
        assert serial["pipeline"]["parallelise"] is False
        assert threaded["pipeline"]["parallelise"] is True
        acc = CompileJob("ours", "pw-advection",
                         workload=pw_advection(openacc=True)).key_material()
        assert acc["pipeline"]["gpu"] is True
