"""Cache-key correctness: every input that changes the artifact changes the
key, everything that doesn't deduplicates to one key."""

import pytest

from repro.service import CompileJob
from repro.workloads import get_workload, jacobi, pw_advection


def key(**kwargs):
    kwargs.setdefault("flow", "ours")
    kwargs.setdefault("workload_name", "dotproduct")
    return CompileJob(**kwargs).key()


class TestPipelineOptionKeys:
    def test_identical_jobs_share_a_key(self):
        assert key() == key()

    @pytest.mark.parametrize("variant", [
        {"vector_width": 0}, {"vector_width": 8}, {"tile": True},
        {"unroll": 4}, {"threads": 64}, {"gpu": True}, {"flow": "flang"},
    ])
    def test_option_changes_change_the_key(self, variant):
        assert key(**variant) != key()

    def test_thread_counts_bucket_to_one_parallel_artifact(self):
        # stats depend on parallel-vs-serial, not on the core count
        assert key(threads=2) == key(threads=64)
        assert key(threads=1) != key(threads=2)

    def test_flang_flow_ignores_standard_pipeline_options(self):
        # vector_width/tile/unroll never reach the flang pipeline, so jobs
        # differing only there deduplicate to one flang artifact
        assert key(flow="flang", vector_width=0) == key(flow="flang",
                                                        vector_width=8)
        assert key(flow="flang", tile=True) == key(flow="flang")


class TestWorkloadVariantKeys:
    def test_distinct_workloads_distinct_keys(self):
        assert key(workload_name="sum") != key(workload_name="dotproduct")

    def test_openmp_variant_changes_the_key(self):
        base = CompileJob("ours", "jacobi", workload=jacobi()).key()
        omp = CompileJob("ours", "jacobi",
                         workload=jacobi(openmp=True)).key()
        assert base != omp

    def test_openacc_variant_changes_the_key(self):
        base = CompileJob("ours", "pw-advection",
                          workload=pw_advection()).key()
        acc = CompileJob("ours", "pw-advection",
                         workload=pw_advection(openacc=True)).key()
        assert base != acc

    def test_grid_cells_variant_changes_the_key(self):
        small = CompileJob("ours", "pw-advection", gpu=True,
                           workload=pw_advection(openacc=True,
                                                 grid_cells=134_000_000)).key()
        large = CompileJob("ours", "pw-advection", gpu=True,
                           workload=pw_advection(openacc=True,
                                                 grid_cells=536_000_000)).key()
        assert small != large

    def test_attached_and_registry_workloads_agree(self):
        # the pool worker resolves the workload via the registry; the key it
        # computes must match the key the submitting side computed
        attached = CompileJob(
            "ours", "jacobi", workload_kwargs=(("openmp", True),),
            workload=jacobi(openmp=True)).key()
        resolved = CompileJob(
            "ours", "jacobi", workload_kwargs=(("openmp", True),)).key()
        assert attached == resolved

    def test_spec_round_trip_preserves_the_key(self):
        job = CompileJob("ours", "pw-advection",
                         workload_kwargs=(("openacc", True),
                                          ("grid_cells", 134_000_000)),
                         gpu=True, vector_width=8)
        assert CompileJob.from_spec(job.spec()).key() == job.key()


class TestKeyMaterial:
    def test_material_names_schema_flow_and_source_hash(self):
        material = CompileJob("ours", "dotproduct").key_material()
        assert material["schema"] >= 1
        assert material["flow"] == "ours"
        assert material["workload"]["source_sha256"] == \
            get_workload("dotproduct").source_hash()
        assert material["pipeline"]["vector_width"] == 4
