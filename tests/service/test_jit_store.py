"""Service-side jit translation store: addressing, wiring, kill-switch.

The translation *payloads* and their verification live in
``repro.machine.jit`` (covered by ``tests/machine/test_jit_persistence``);
this module tests the service glue: the content address keeps jit
translations disjoint from the other artifact families in the shared
sharded store, :func:`install_jit_store` only wires persistent caches (and
honours ``REPRO_NO_JIT_CACHE``), :meth:`CompileService.jit_counters`
surfaces the accounting, and ``repro.conformance run``'s fallback service
persists through ``$REPRO_CACHE_DIR`` like a daemon would.
"""

import argparse

import pytest

from repro.machine import jit as machine_jit
from repro.service.cache import ArtifactCache
from repro.service.jit_store import (NO_JIT_CACHE_ENV, JitTranslationStore,
                                     _address, install_jit_store,
                                     jit_cache_disabled)
from repro.service.scheduler import CompileService


@pytest.fixture(autouse=True)
def _isolated_translation_store():
    saved = machine_jit.get_translation_store()
    machine_jit.set_translation_store(None)
    yield
    machine_jit.set_translation_store(saved)
    machine_jit.clear_translation_cache()


class TestAddressing:
    def test_disjoint_from_function_stage_artifacts(self):
        # the three artifact families share one sharded store; identical
        # fingerprint strings must never collide across kinds
        from repro.service.incremental import _address as fn_address
        fingerprint = "feed" * 16
        assert _address(fingerprint) != fn_address(fingerprint)
        assert _address(fingerprint) != fingerprint

    def test_schema_version_is_address_material(self, monkeypatch):
        from repro.service import jobs
        fingerprint = "beef" * 16
        before = _address(fingerprint)
        monkeypatch.setattr(jobs, "KEY_SCHEMA_VERSION",
                            jobs.KEY_SCHEMA_VERSION + 1)
        assert _address(fingerprint) != before

    def test_distinct_fingerprints_distinct_addresses(self):
        assert _address("a" * 64) != _address("b" * 64)


class TestStoreProtocol:
    def test_roundtrip(self, tmp_path):
        store = JitTranslationStore(ArtifactCache(cache_dir=str(tmp_path)))
        payload = {"format": 1, "source": "def _jit_block(env): pass\n",
                   "nops": 3}
        fingerprint = "c0de" * 16
        assert store.lookup(fingerprint) is None
        assert not store.contains(fingerprint)
        store.store(fingerprint, payload)
        assert store.contains(fingerprint)
        assert store.lookup(fingerprint) == payload

    def test_corrupt_payload_is_a_miss_not_an_error(self, tmp_path):
        cache = ArtifactCache(cache_dir=str(tmp_path))
        store = JitTranslationStore(cache)
        fingerprint = "bad0" * 16
        cache.put(_address(fingerprint), {"format": 1, "nops": 3})  # no source
        assert store.lookup(fingerprint) is None


class TestInstall:
    def test_memory_only_cache_stays_process_local(self):
        # no disk tier -> lookups would cost overhead for zero
        # cross-process benefit
        assert install_jit_store(ArtifactCache()) is None
        assert machine_jit.get_translation_store() is None

    def test_none_cache_stays_process_local(self):
        assert install_jit_store(None) is None

    def test_persistent_cache_installs_store(self, tmp_path):
        cache = ArtifactCache(cache_dir=str(tmp_path))
        store = install_jit_store(cache)
        assert isinstance(store, JitTranslationStore)
        assert machine_jit.get_translation_store() is store
        assert store.cache is cache

    def test_kill_switch_env(self, tmp_path, monkeypatch):
        cache = ArtifactCache(cache_dir=str(tmp_path))
        monkeypatch.setenv(NO_JIT_CACHE_ENV, "1")
        assert jit_cache_disabled()
        assert install_jit_store(cache) is None
        assert machine_jit.get_translation_store() is None

        monkeypatch.setenv(NO_JIT_CACHE_ENV, "0")    # explicit off = on
        assert not jit_cache_disabled()
        assert install_jit_store(cache) is not None


class TestServiceCounters:
    def test_jit_counters_shape_and_worker_merge(self, tmp_path):
        service = CompileService(ArtifactCache(cache_dir=str(tmp_path)))
        assert service.jit_store is not None
        counters = service.jit_counters()
        for field in ("memory_hits", "disk_hits", "misses", "stores",
                      "hits", "lookups", "hit_rate"):
            assert field in counters

        # pool workers report their process-local deltas back; they must
        # show up in the service-level totals
        with service._lock:
            service._worker_jit_counters["disk_hits"] += 5
            service._worker_jit_counters["misses"] += 5
        merged = service.jit_counters()
        assert merged["disk_hits"] == counters["disk_hits"] + 5
        assert merged["lookups"] >= counters["lookups"] + 10

    def test_memory_only_service_has_no_jit_store(self):
        assert CompileService(ArtifactCache()).jit_store is None


class TestConformanceServiceBinding:
    def test_sweep_fallback_binds_to_cache_dir_env(self, tmp_path,
                                                   monkeypatch):
        # ISSUE satellite: `repro.conformance run` must persist artifacts
        # through the sharded store instead of a silent memory-only cache
        from repro.conformance.__main__ import _sweep_service
        from repro.service import CACHE_DIR_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "store"))
        args = argparse.Namespace(no_daemon=True, jobs=1, socket=None)
        service = _sweep_service(args)
        assert service.cache.persistent
        assert str(service.cache.cache_dir) == str(tmp_path / "store")
        assert service.jit_store is not None
        assert service.jit_store.cache is service.cache

    def test_sweep_persists_function_artifacts(self, tmp_path, monkeypatch):
        from repro.conformance.oracle import run_sweep
        from repro.service import CACHE_DIR_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "store"))
        from repro.conformance.__main__ import _sweep_service
        args = argparse.Namespace(no_daemon=True, jobs=1, socket=None)
        service = _sweep_service(args)
        report = run_sweep([3], engines=["compiled", "jit"], service=service)
        assert report.seeds == [3]
        # compiles flowed through the persistent store: function-stage
        # artifacts survive for the next process
        assert service.function_store.counters.as_dict()["stores"] > 0
        shards = list((tmp_path / "store" / "shards").glob("*.json"))
        assert shards, "sweep stored nothing in the sharded disk store"
