"""Sharded disk store: layout, durability, migration, LRU byte budget."""

import json

import pytest

from repro.service.cache import ArtifactCache
from repro.service.sharded import (SHARDED_FORMAT, ShardedStore,
                                   parse_byte_size)


def payload_for(key, size=0):
    return {"key": key, "ok": True, "module_text": "x" * size}


KEY_A = "aa" + "0" * 62
KEY_A2 = "aa" + "1" * 62   # same shard as KEY_A
KEY_B = "bb" + "0" * 62


class TestLayout:
    def test_keys_fan_out_by_hash_prefix(self, tmp_path):
        store = ShardedStore(str(tmp_path))
        store.put(KEY_A, payload_for(KEY_A))
        store.put(KEY_A2, payload_for(KEY_A2))
        store.put(KEY_B, payload_for(KEY_B))
        assert (tmp_path / "shards" / "aa.json").exists()
        assert (tmp_path / "shards" / "bb.json").exists()
        blob = json.loads((tmp_path / "shards" / "aa.json").read_text())
        assert set(blob["entries"]) == {KEY_A, KEY_A2}
        assert store.get(KEY_A2) == payload_for(KEY_A2)
        assert (tmp_path / "CACHE_FORMAT").read_text().strip() == \
            str(SHARDED_FORMAT)

    def test_store_reopens_across_instances(self, tmp_path):
        ShardedStore(str(tmp_path)).put(KEY_A, payload_for(KEY_A))
        again = ShardedStore(str(tmp_path))
        assert again.contains(KEY_A)
        assert again.get(KEY_A) == payload_for(KEY_A)
        assert again.total_bytes() > 0


class TestDurability:
    def test_corrupt_shard_is_a_miss_then_recovered(self, tmp_path):
        store = ShardedStore(str(tmp_path))
        store.put(KEY_A, payload_for(KEY_A))
        (tmp_path / "shards" / "aa.json").write_text('{"entries": truncated')
        assert store.get(KEY_A) is None
        assert not store.contains(KEY_A)
        assert store.corrupt_shards > 0
        # the next store into the shard overwrites the wreckage wholesale
        store.put(KEY_A2, payload_for(KEY_A2))
        assert store.get(KEY_A2) == payload_for(KEY_A2)

    def test_corrupt_shard_only_affects_its_prefix(self, tmp_path):
        store = ShardedStore(str(tmp_path))
        store.put(KEY_A, payload_for(KEY_A))
        store.put(KEY_B, payload_for(KEY_B))
        (tmp_path / "shards" / "aa.json").write_text("not json at all")
        assert store.get(KEY_A) is None
        assert store.get(KEY_B) == payload_for(KEY_B)


class TestMigration:
    def legacy_store(self, tmp_path, keys):
        (tmp_path / "CACHE_FORMAT").write_text("1\n")
        for key in keys:
            obj_dir = tmp_path / "objects" / key[:2]
            obj_dir.mkdir(parents=True, exist_ok=True)
            (obj_dir / f"{key}.json").write_text(
                json.dumps(payload_for(key)))

    def test_legacy_objects_tree_is_split_into_shards(self, tmp_path):
        self.legacy_store(tmp_path, [KEY_A, KEY_A2, KEY_B])
        store = ShardedStore(str(tmp_path))
        for key in (KEY_A, KEY_A2, KEY_B):
            assert store.get(key) == payload_for(key)
        assert not (tmp_path / "objects").exists()
        assert (tmp_path / "shards" / "aa.json").exists()
        assert (tmp_path / "CACHE_FORMAT").read_text().strip() == \
            str(SHARDED_FORMAT)

    def test_unreadable_legacy_entries_are_dropped_not_fatal(self, tmp_path):
        self.legacy_store(tmp_path, [KEY_A])
        bad = tmp_path / "objects" / "bb"
        bad.mkdir(parents=True)
        (bad / f"{KEY_B}.json").write_text("{broken")
        store = ShardedStore(str(tmp_path))
        assert store.get(KEY_A) == payload_for(KEY_A)
        assert store.get(KEY_B) is None

    def test_migrated_store_serves_through_artifact_cache(self, tmp_path):
        self.legacy_store(tmp_path, [KEY_A])
        cache = ArtifactCache(cache_dir=str(tmp_path))
        assert cache.get(KEY_A) == payload_for(KEY_A)
        assert cache.counters.disk_hits == 1


class TestEviction:
    def test_byte_budget_evicts_least_recently_used(self, tmp_path):
        # measure what one entry costs on disk, then budget for six of the
        # eight entries below: exactly two evictions, in LRU order
        probe = ShardedStore(str(tmp_path / "probe"))
        probe.put(KEY_A, payload_for(KEY_A, size=1000))
        per_entry = probe.total_bytes()
        budget = 6 * per_entry + per_entry // 2
        store = ShardedStore(str(tmp_path / "store"), byte_budget=budget)
        keys = [f"{i:02x}" + "f" * 62 for i in range(8)]
        for key in keys[:4]:
            store.put(key, payload_for(key, size=1000))
        # touch the very first key so it is the *most* recently used
        assert store.get(keys[0]) is not None
        for key in keys[4:]:
            store.put(key, payload_for(key, size=1000))
        assert store.total_bytes() <= budget
        assert store.evictions == 2
        assert store.contains(keys[0]), \
            "recently-read entry must survive eviction"
        assert store.contains(keys[-1]), \
            "the newest entry must survive eviction"
        assert not store.contains(keys[1]), \
            "the oldest untouched entry goes first"
        assert not store.contains(keys[2]), \
            "the second-oldest untouched entry goes next"

    def test_zero_budget_disables_eviction(self, tmp_path):
        store = ShardedStore(str(tmp_path), byte_budget=0)
        for i in range(6):
            key = f"{i:02x}" + "e" * 62
            store.put(key, payload_for(key, size=2000))
        assert store.evictions == 0

    def test_cache_stats_surface_disk_accounting(self, tmp_path):
        cache = ArtifactCache(cache_dir=str(tmp_path), byte_budget=4000)
        for i in range(6):
            key = f"{i:02x}" + "d" * 62
            cache.put(key, payload_for(key, size=1500))
        stats = cache.stats()
        assert stats["evictions"] > 0
        assert 0 < stats["disk_bytes"] <= 4000
        assert stats["byte_budget"] == 4000


class TestByteSize:
    @pytest.mark.parametrize("text,expected", [
        ("0", 0), ("123", 123), ("4K", 4096), ("2M", 2 * 1024 ** 2),
        ("1G", 1024 ** 3), (" 64M ", 64 * 1024 ** 2)])
    def test_parse(self, text, expected):
        assert parse_byte_size(text) == expected

    @pytest.mark.parametrize("text", ["", "x", "-1", "12Q"])
    def test_rejects(self, text):
        with pytest.raises(ValueError):
            parse_byte_size(text)
