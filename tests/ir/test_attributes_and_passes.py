"""Attributes, affine expressions, pass manager and rewriter tests
(including hypothesis property tests on core invariants)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dialects import arith
from repro.dialects.builtin import ModuleOp
from repro.ir import (Block, PassManager, RewritePattern, PatternRewriter,
                      apply_patterns_greedily, parse_pipeline)
from repro.ir import types as T
from repro.ir.attributes import (AffineExpr, AffineMapAttr, ArrayAttr,
                                 BoolAttr, FloatAttr, IntegerAttr, StringAttr)
from repro.ir.pass_manager import PassError, available_passes
import repro.transforms  # noqa: F401  (registers passes)
import repro.core  # noqa: F401


class TestAttributes:
    def test_integer_attr_equality_and_hash(self):
        assert IntegerAttr(3, T.i32) == IntegerAttr(3, T.i32)
        assert IntegerAttr(3, T.i32) != IntegerAttr(3, T.i64)
        assert hash(IntegerAttr(3)) == hash(IntegerAttr(3))

    def test_string_and_bool_attrs(self):
        assert StringAttr("x").mlir() == '"x"'
        assert BoolAttr(True).mlir() == "true"

    def test_array_attr_iteration(self):
        arr = ArrayAttr([IntegerAttr(1), IntegerAttr(2)])
        assert len(arr) == 2
        assert [a.value for a in arr] == [1, 2]

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_integer_attr_value_roundtrip(self, a, b):
        assert IntegerAttr(a).value == a
        assert (IntegerAttr(a) == IntegerAttr(b)) == (a == b)


class TestTypes:
    def test_memref_type_shape_queries(self):
        t = T.MemRefType([4, T.DYNAMIC], T.f64)
        assert t.rank == 2
        assert not t.has_static_shape()
        assert t.num_dynamic_dims() == 1
        assert "?" in t.mlir()

    def test_static_memref_num_elements(self):
        t = T.MemRefType([8, 8], T.f32)
        assert t.num_elements() == 64

    def test_vector_type_rejects_dynamic(self):
        with pytest.raises(ValueError):
            T.VectorType([T.DYNAMIC], T.f64)

    def test_function_type_mlir(self):
        ft = T.FunctionType([T.i32], [T.f64])
        assert ft.mlir() == "(i32) -> f64"

    @given(st.lists(st.integers(1, 64), min_size=0, max_size=4))
    def test_memref_equality_is_structural(self, shape):
        assert T.MemRefType(shape, T.f64) == T.MemRefType(list(shape), T.f64)


class TestAffineExpr:
    @given(st.integers(-100, 100), st.integers(-100, 100), st.integers(-100, 100))
    def test_affine_add_mul_evaluation(self, d0, d1, c):
        expr = AffineExpr.dim(0) + AffineExpr.dim(1) * c
        assert expr.evaluate([d0, d1]) == d0 + d1 * c

    @given(st.integers(0, 1000), st.integers(1, 64))
    def test_floordiv_matches_python(self, a, b):
        expr = AffineExpr.dim(0).floordiv(b)
        assert expr.evaluate([a]) == a // b

    def test_identity_map(self):
        amap = AffineMapAttr.identity(3)
        assert amap.evaluate([5, 6, 7]) == (5, 6, 7)

    def test_constant_map(self):
        amap = AffineMapAttr.constant_map(42)
        assert amap.evaluate([]) == (42,)


class TestPassInfrastructure:
    def test_parse_pipeline_listing1(self):
        from repro.core.pipelines import BASE_PIPELINE
        entries = parse_pipeline(BASE_PIPELINE)
        names = [n for n, _ in entries]
        assert names[0] == "canonicalize"
        assert "convert-scf-to-cf" in names
        assert ("convert-cf-to-llvm", {"index_bitwidth": 64}) in entries

    def test_every_listing1_pass_is_registered(self):
        from repro.core.pipelines import BASE_PIPELINE
        registered = set(available_passes())
        for name, _ in parse_pipeline(BASE_PIPELINE):
            assert name in registered, f"pass {name} not registered"

    def test_unknown_pass_raises(self):
        with pytest.raises(PassError):
            PassManager.from_pipeline("builtin.module(not-a-real-pass)")

    def test_pass_manager_describe_round_trip(self):
        pm = PassManager.from_pipeline("builtin.module(canonicalize, cse)")
        assert "canonicalize" in pm.describe()
        assert "cse" in pm.describe()


class TestRewriter:
    def test_greedy_pattern_application(self):
        class FoldAddZero(RewritePattern):
            ROOT_OP = "arith.addi"

            def match_and_rewrite(self, op, rewriter: PatternRewriter) -> bool:
                rhs = getattr(op.operands[1], "op", None)
                if rhs is not None and rhs.name == "arith.constant" and \
                        rhs.get_attr("value").value == 0:
                    rewriter.replace_op_with_values(op, [op.operands[0]])
                    return True
                return False

        module = ModuleOp()
        block = Block()
        c = arith.ConstantOp(7, T.i32)
        zero = arith.ConstantOp(0, T.i32)
        add = arith.AddIOp(c.result, zero.result)
        use = arith.MulIOp(add.result, c.result)
        block.add_ops([c, zero, add, use])
        module.body.add_op(
            __import__("repro.dialects.func", fromlist=["FuncOp"]).FuncOp(
                "f", T.FunctionType([], [])))
        module.functions()[0].entry_block.add_ops([])
        # apply over a wrapper op holding the block
        from repro.ir import Region, create_operation
        holder = create_operation("builtin.module", regions=[Region([block])])
        changed = apply_patterns_greedily(holder, [FoldAddZero()])
        assert changed
        assert use.operands[0] is c.result
