"""Structural fingerprinting: the addressing scheme of incremental compiles.

The contract under test: two functions fingerprint equal iff a
deterministic pass pipeline treats them identically.  Clones and
identically-rebuilt IR must collide; any semantic difference (op names,
attributes, operand wiring, types) and any salt change must not; purely
cosmetic state (uid counters, value name hints) must be invisible.
"""

import pytest

from repro.core.fir_to_standard import convert_fir_to_standard
from repro.flang import FlangCompiler
from repro.ir import StringAttr, structural_fingerprint

TWO_FUNCS = """
subroutine f1(n)
  implicit none
  integer, intent(in) :: n
  integer :: i
  real(kind=8), dimension(32) :: a, b
  do i = 1, 32
    b(i) = a(i) * 2.0d0
  end do
end subroutine f1

subroutine f2(n)
  implicit none
  integer, intent(in) :: n
  integer :: i
  real(kind=8), dimension(32) :: c
  do i = 1, 32
    c(i) = c(i) + 1.0d0
  end do
end subroutine f2
"""


def _compile_module(source=TWO_FUNCS):
    return convert_fir_to_standard(FlangCompiler().lower_to_hlfir(source))


def _funcs(module):
    return [op for op in module.regions[0].blocks[0].ops
            if op.name == "func.func"]


def test_clone_fingerprints_identically():
    module = _compile_module()
    for func in _funcs(module):
        assert structural_fingerprint(func) == \
            structural_fingerprint(func.clone())


def test_rebuilt_frontend_run_fingerprints_identically():
    # a fresh frontend run allocates entirely different uids and objects
    a, b = _compile_module(), _compile_module()
    for fa, fb in zip(_funcs(a), _funcs(b)):
        assert structural_fingerprint(fa) == structural_fingerprint(fb)


def test_different_functions_differ():
    f1, f2 = _funcs(_compile_module())
    assert structural_fingerprint(f1) != structural_fingerprint(f2)


def test_attribute_change_changes_fingerprint():
    func = _funcs(_compile_module())[0]
    before = structural_fingerprint(func)
    func.attributes["sym_name"] = StringAttr('"renamed"')
    assert structural_fingerprint(func) != before


def test_salt_changes_fingerprint():
    func = _funcs(_compile_module())[0]
    assert structural_fingerprint(func, salt="func.func(canonicalize)") != \
        structural_fingerprint(func, salt="func.func(canonicalize,cse)")
    assert structural_fingerprint(func, salt="x") == \
        structural_fingerprint(func, salt="x")


def test_name_hints_are_cosmetic():
    module = _compile_module()
    func = _funcs(module)[0]
    before = structural_fingerprint(func)
    for op in func.walk():
        for result in op.results:
            result.name_hint = "renamed_hint"
    assert structural_fingerprint(func) == before


def test_uid_renumbering_is_invisible():
    from repro.ir import dumps_op, loads_op
    func = _funcs(_compile_module())[0].clone()
    restored = loads_op(dumps_op(func))
    assert structural_fingerprint(restored) == structural_fingerprint(func)


def test_operand_wiring_matters():
    # swap the operands of a commutative-looking op: the *structure*
    # changed, so the fingerprint must too (passes may not treat the
    # orders identically)
    module = _compile_module()
    func = _funcs(module)[0]
    target = None
    for op in func.walk():
        if op.name == "arith.mulf" and op.operands[0] is not op.operands[1]:
            target = op
            break
    if target is None:
        pytest.skip("no binary mulf with distinct operands in this kernel")
    before = structural_fingerprint(func)
    a, b = target.operands
    target.set_operand(0, b)
    target.set_operand(1, a)
    assert structural_fingerprint(func) != before
