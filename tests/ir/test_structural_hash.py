"""Structural fingerprinting: the addressing scheme of incremental compiles.

The contract under test: two functions fingerprint equal iff a
deterministic pass pipeline treats them identically.  Clones and
identically-rebuilt IR must collide; any semantic difference (op names,
attributes, operand wiring, types) and any salt change must not; purely
cosmetic state (uid counters, value name hints) must be invisible.
"""

import pytest

from repro.core.fir_to_standard import convert_fir_to_standard
from repro.flang import FlangCompiler
from repro.ir import StringAttr, structural_fingerprint
from repro.ir.structural_hash import fingerprint_block

TWO_FUNCS = """
subroutine f1(n)
  implicit none
  integer, intent(in) :: n
  integer :: i
  real(kind=8), dimension(32) :: a, b
  do i = 1, 32
    b(i) = a(i) * 2.0d0
  end do
end subroutine f1

subroutine f2(n)
  implicit none
  integer, intent(in) :: n
  integer :: i
  real(kind=8), dimension(32) :: c
  do i = 1, 32
    c(i) = c(i) + 1.0d0
  end do
end subroutine f2
"""


def _compile_module(source=TWO_FUNCS):
    return convert_fir_to_standard(FlangCompiler().lower_to_hlfir(source))


def _funcs(module):
    return [op for op in module.regions[0].blocks[0].ops
            if op.name == "func.func"]


def test_clone_fingerprints_identically():
    module = _compile_module()
    for func in _funcs(module):
        assert structural_fingerprint(func) == \
            structural_fingerprint(func.clone())


def test_rebuilt_frontend_run_fingerprints_identically():
    # a fresh frontend run allocates entirely different uids and objects
    a, b = _compile_module(), _compile_module()
    for fa, fb in zip(_funcs(a), _funcs(b)):
        assert structural_fingerprint(fa) == structural_fingerprint(fb)


def test_different_functions_differ():
    f1, f2 = _funcs(_compile_module())
    assert structural_fingerprint(f1) != structural_fingerprint(f2)


def test_attribute_change_changes_fingerprint():
    func = _funcs(_compile_module())[0]
    before = structural_fingerprint(func)
    func.attributes["sym_name"] = StringAttr('"renamed"')
    assert structural_fingerprint(func) != before


def test_salt_changes_fingerprint():
    func = _funcs(_compile_module())[0]
    assert structural_fingerprint(func, salt="func.func(canonicalize)") != \
        structural_fingerprint(func, salt="func.func(canonicalize,cse)")
    assert structural_fingerprint(func, salt="x") == \
        structural_fingerprint(func, salt="x")


def test_name_hints_are_cosmetic():
    module = _compile_module()
    func = _funcs(module)[0]
    before = structural_fingerprint(func)
    for op in func.walk():
        for result in op.results:
            result.name_hint = "renamed_hint"
    assert structural_fingerprint(func) == before


def test_uid_renumbering_is_invisible():
    from repro.ir import dumps_op, loads_op
    func = _funcs(_compile_module())[0].clone()
    restored = loads_op(dumps_op(func))
    assert structural_fingerprint(restored) == structural_fingerprint(func)


def test_operand_wiring_matters():
    # swap the operands of a commutative-looking op: the *structure*
    # changed, so the fingerprint must too (passes may not treat the
    # orders identically)
    module = _compile_module()
    func = _funcs(module)[0]
    target = None
    for op in func.walk():
        if op.name == "arith.mulf" and op.operands[0] is not op.operands[1]:
            target = op
            break
    if target is None:
        pytest.skip("no binary mulf with distinct operands in this kernel")
    before = structural_fingerprint(func)
    a, b = target.operands
    target.set_operand(0, b)
    target.set_operand(1, a)
    assert structural_fingerprint(func) != before


# ---------------------------------------------------------------------------
# Block fingerprints: the persistent jit translation cache's address
# ---------------------------------------------------------------------------

def _entry_blocks(module):
    return [func.regions[0].blocks[0] for func in _funcs(module)]


class TestBlockFingerprint:
    def test_rebuilt_frontend_run_collides(self):
        # fresh uids, fresh objects — only structure survives, and the
        # persistent cache's cross-process addressing depends on it
        a, b = _compile_module(), _compile_module()
        for ba, bb in zip(_entry_blocks(a), _entry_blocks(b)):
            assert fingerprint_block(ba) == fingerprint_block(bb)

    def test_different_blocks_differ(self):
        b1, b2 = _entry_blocks(_compile_module())
        assert fingerprint_block(b1) != fingerprint_block(b2)

    def test_salt_separates(self):
        block = _entry_blocks(_compile_module())[0]
        assert fingerprint_block(block, salt="stride1") != \
            fingerprint_block(block, salt="stride4096")

    def test_block_and_function_hashes_are_distinct_schemes(self):
        func = _funcs(_compile_module())[0]
        block = func.regions[0].blocks[0]
        assert fingerprint_block(block) != structural_fingerprint(func)

    def test_external_constant_value_is_codegen_material(self):
        # the jit emitter specializes loop code on statically known
        # externally defined constants (e.g. a do-loop step's sign), so
        # two blocks differing only in such a constant's *value* must
        # address different translations
        from repro.dialects import arith, scf
        from repro.ir import Block
        from repro.ir import types as T

        def nest(step_value):
            # bounds defined in a *dominating* block, loop in the
            # fingerprinted one — the step reaches the emitter as an
            # externally defined constant
            defs = Block()
            lo = arith.ConstantOp(0, T.index)
            hi = arith.ConstantOp(8, T.index)
            st = arith.ConstantOp(step_value, T.index)
            defs.add_ops([lo, hi, st])
            entry = Block()
            loop = scf.ForOp(lo.result, hi.result, st.result)
            entry.add_op(loop)
            loop.regions[0].blocks[0].add_op(scf.YieldOp())
            return entry

        assert fingerprint_block(nest(1)) != fingerprint_block(nest(2))
        assert fingerprint_block(nest(2)) == fingerprint_block(nest(2))

    def test_remote_uses_are_codegen_material(self):
        # a value consumed outside the fingerprinted tree must stay
        # env-resident in generated code; consuming it or not changes
        # the translation, so it must change the address
        from repro.dialects import arith
        from repro.ir import Block
        from repro.ir import types as T

        def block_with_leak(leak):
            block = Block()
            c = arith.ConstantOp(3, T.i32)
            add = arith.AddIOp(c.result, c.result)
            block.add_ops([c, add])
            consumer = arith.AddIOp(add.result, add.result)
            if leak:
                # consumer lives OUTSIDE the fingerprinted block
                Block().add_op(consumer)
            else:
                block.add_op(consumer)
            return block, consumer

        leaked, _ = block_with_leak(True)
        local, consumer = block_with_leak(False)
        # compare against the local block with its consumer removed, so
        # both blocks hold the same two ops and differ only in whether
        # `add` has a remote use
        consumer.erase()
        assert fingerprint_block(leaked) != fingerprint_block(local)
