"""Parallel func.func pass scheduling: bit-identical to serial, by contract.

Every mode the scheduler can pick — serial, thread pool (instrumented
runs), process pool (ISSUE tentpole) — must produce the same final IR
text and the same :class:`PassTimingReport` structure (pass names,
anchors, IR op counts; wall times naturally differ) as a plain serial
run.  Also covers the serialization layer the process mode rides on.
"""

import pytest

from repro.core.fir_to_standard import convert_fir_to_standard
from repro.flang import FlangCompiler
from repro.ir import (PassManager, dumps_op, loads_op, pipeline_settings,
                      print_op)
from repro.ir.pass_manager import PassInstrumentation, PassTimingReport

MULTI_FUNC = """
subroutine pa(n)
  implicit none
  integer, intent(in) :: n
  integer :: i
  real(kind=8), dimension(48) :: u, v
  do i = 1, 48
    v(i) = u(i) * 3.0d0 + 1.0d0
  end do
end subroutine pa

subroutine pb(n)
  implicit none
  integer, intent(in) :: n
  integer :: i
  real(kind=8), dimension(48) :: w
  do i = 2, 47
    w(i) = 0.5d0 * (w(i-1) + w(i+1))
  end do
end subroutine pb

subroutine pc(n)
  implicit none
  integer, intent(in) :: n
  integer :: i
  real(kind=8) :: acc
  real(kind=8), dimension(48) :: x, y
  acc = 0.0d0
  do i = 1, 48
    acc = acc + x(i) * y(i)
  end do
end subroutine pc
"""

PIPELINE = ("builtin.module(func.func(canonicalize,cse,"
            "forward-scalar-stores,canonicalize,cse,"
            "loop-invariant-code-motion))")


def _module():
    return convert_fir_to_standard(
        FlangCompiler().lower_to_hlfir(MULTI_FUNC))


def _timing_structure(report):
    return [(t.pass_name, t.anchor, t.ops_before, t.ops_after)
            for t in report.timings]


def _run(jobs, collect=True, instrumentation=()):
    module = _module()
    pm = PassManager.from_pipeline(PIPELINE, collect_statistics=collect)
    for instr in instrumentation:
        pm.add_instrumentation(instr)
    with pipeline_settings(jobs=jobs, function_cache=None):
        pm.run(module)
    return print_op(module), pm.last_report


def test_parallel_ir_and_timing_structure_match_serial():
    serial_text, serial_report = _run(jobs=1)
    parallel_text, parallel_report = _run(jobs=3)
    assert parallel_text == serial_text
    assert _timing_structure(parallel_report) == \
        _timing_structure(serial_report)
    assert parallel_report.pipeline == serial_report.pipeline


class _Counting(PassInstrumentation):
    def __init__(self):
        self.before = 0
        self.after = 0

    def before_pass(self, pass_, op):
        self.before += 1

    def after_pass(self, pass_, op, timing):
        self.after += 1


def test_instrumented_parallel_matches_serial():
    # instrumentation hooks force the thread path (hooks must observe every
    # pass execution); output must still be bit-identical and the hooks
    # must fire once per (pass, function)
    serial_counter = _Counting()
    serial_text, _ = _run(jobs=1, instrumentation=[serial_counter])
    parallel_counter = _Counting()
    parallel_text, _ = _run(jobs=3, instrumentation=[parallel_counter])
    assert parallel_text == serial_text
    assert parallel_counter.before == serial_counter.before
    assert parallel_counter.after == serial_counter.after


def test_no_statistics_parallel_matches_serial():
    serial_text, _ = _run(jobs=1, collect=False)
    parallel_text, _ = _run(jobs=4, collect=False)
    assert parallel_text == serial_text


def test_merge_is_associative_and_order_preserving():
    _, r1 = _run(jobs=1)
    _, r2 = _run(jobs=1)
    _, r3 = _run(jobs=1)
    left = PassTimingReport.merge([PassTimingReport.merge([r1, r2]), r3])
    right = PassTimingReport.merge([r1, PassTimingReport.merge([r2, r3])])
    assert _timing_structure(left) == _timing_structure(right)
    assert _timing_structure(left)[:len(r1.timings)] == _timing_structure(r1)


def test_pickle_roundtrip_preserves_ir_and_renumbers_uids():
    module = _module()
    funcs = [op for op in module.regions[0].blocks[0].ops
             if op.name == "func.func"]
    func = funcs[0]
    restored = loads_op(dumps_op(func))
    assert print_op(restored) == print_op(func)
    # fresh uids: no op or block may collide with the still-live original
    old_ops = {op._uid for op in func.walk()}
    new_ops = {op._uid for op in restored.walk()}
    assert not (old_ops & new_ops)
    old_blocks = {b._uid for op in func.walk()
                  for r in op.regions for b in r.blocks}
    new_blocks = {b._uid for op in restored.walk()
                  for r in op.regions for b in r.blocks}
    assert not (old_blocks & new_blocks)
    # the dump did not detach the original from its module
    assert func.parent is not None


def test_attached_op_dump_does_not_capture_module():
    module = _module()
    func = [op for op in module.regions[0].blocks[0].ops
            if op.name == "func.func"][0]
    restored = loads_op(dumps_op(func))
    assert restored.parent is None


def test_pipeline_settings_scope_and_inheritance():
    from repro.ir import current_settings
    assert current_settings().jobs == 1
    with pipeline_settings(jobs=4):
        assert current_settings().jobs == 4
        with pipeline_settings(function_cache=None):
            # jobs inherited, cache explicitly disabled
            assert current_settings().jobs == 4
            assert current_settings().function_cache is None
    assert current_settings().jobs == 1


def test_standard_flow_pipeline_is_one_function_nest():
    from repro.core.pipelines import standard_flow_pipeline
    text = standard_flow_pipeline(parallelise=True).describe()
    assert text.startswith("builtin.module(func.func(")
    # nothing runs outside the nest: exactly one top-level entry
    inner = text[len("builtin.module("):-1]
    assert inner.startswith("func.func(") and inner.endswith(")")
    assert "convert-scf-to-openmp" in inner
