"""Unit tests for the IR core: values, operations, blocks, regions."""

import pytest

from repro.dialects import arith, func as func_d, scf
from repro.dialects.builtin import ModuleOp
from repro.ir import (Block, IRError, Region, VerificationError,
                      create_operation, print_op, verify_operation)
from repro.ir import types as T
from repro.ir.attributes import IntegerAttr


def make_add_block():
    block = Block()
    c1 = arith.ConstantOp(1, T.i32)
    c2 = arith.ConstantOp(2, T.i32)
    add = arith.AddIOp(c1.result, c2.result)
    block.add_ops([c1, c2, add])
    return block, c1, c2, add


class TestValuesAndUses:
    def test_operation_results_register_uses(self):
        _, c1, c2, add = make_add_block()
        assert c1.result.num_uses == 1
        assert c2.result.num_uses == 1
        assert add.result.num_uses == 0

    def test_replace_all_uses_with(self):
        block, c1, c2, add = make_add_block()
        c3 = arith.ConstantOp(5, T.i32)
        block.insert_op_at(0, c3)
        c1.result.replace_all_uses_with(c3.result)
        assert c1.result.num_uses == 0
        assert add.operands[0] is c3.result

    def test_set_operand_updates_use_lists(self):
        _, c1, c2, add = make_add_block()
        add.set_operand(1, c1.result)
        assert c2.result.num_uses == 0
        assert c1.result.num_uses == 2

    def test_erase_with_live_uses_raises(self):
        _, c1, _, _ = make_add_block()
        with pytest.raises(IRError):
            c1.erase()

    def test_erase_unused_op(self):
        block, *_ , add = make_add_block()
        add.erase()
        assert add not in block.ops


class TestBlocksAndRegions:
    def test_block_argument_types(self):
        block = Block(arg_types=[T.i32, T.f64])
        assert [a.type for a in block.args] == [T.i32, T.f64]
        assert block.args[0].index == 0

    def test_insert_before_and_after(self):
        block, c1, c2, add = make_add_block()
        c3 = arith.ConstantOp(3, T.i32)
        block.insert_before(add, c3)
        assert block.ops.index(c3) == block.ops.index(add) - 1

    def test_terminator_detection(self):
        block = Block()
        block.add_op(func_d.ReturnOp())
        assert block.terminator is not None
        assert block.terminator.name == "func.return"

    def test_region_entry_block(self):
        region = Region([Block(), Block()])
        assert region.entry_block is region.blocks[0]
        with pytest.raises(IRError):
            _ = region.block  # more than one block

    def test_parent_links(self):
        module = ModuleOp()
        fn = func_d.FuncOp("f", T.FunctionType([], []))
        module.add(fn)
        assert fn.parent is module.body
        assert fn.parent_op() is module


class TestCloning:
    def test_clone_preserves_structure(self):
        fn = func_d.FuncOp("f", T.FunctionType([T.i32], []))
        block = fn.entry_block
        c = arith.ConstantOp(4, T.i32)
        add = arith.AddIOp(block.args[0], c.result)
        block.add_ops([c, add, func_d.ReturnOp()])
        clone = fn.clone()
        assert clone is not fn
        assert len(clone.entry_block.ops) == 3
        # cloned ops reference cloned values, not the originals
        cloned_add = clone.entry_block.ops[1]
        assert cloned_add.operands[0] is clone.entry_block.args[0]
        assert cloned_add.operands[0] is not block.args[0]

    def test_clone_remaps_nested_regions(self):
        cond = arith.ConstantOp(True, T.i1)
        if_op = scf.IfOp(cond.result)
        inner = arith.ConstantOp(7, T.i32)
        if_op.then_block.add_op(inner)
        if_op.then_block.add_op(scf.YieldOp())
        if_op.else_block.add_op(scf.YieldOp())
        clone = if_op.clone()
        assert clone.then_block is not if_op.then_block
        assert len(clone.then_block.ops) == 2


class TestWalkAndVerify:
    def test_walk_visits_nested_ops(self, simple_program_source, flang_compiler):
        module = flang_compiler.lower_to_hlfir(simple_program_source)
        names = [op.name for op in module.walk()]
        assert "builtin.module" in names
        assert "fir.do_loop" in names
        assert "hlfir.declare" in names

    def test_verifier_accepts_valid_module(self, conditional_source, flang_compiler):
        module = flang_compiler.lower_to_hlfir(conditional_source)
        verify_operation(module)

    def test_verifier_rejects_use_before_def(self):
        block = Block()
        c = arith.ConstantOp(1, T.i32)
        add = arith.AddIOp(c.result, c.result)
        # insert the add before its operand definition
        block.add_op(add)
        block.add_op(c)
        module = create_operation("builtin.module", regions=[Region([block])])
        with pytest.raises(VerificationError):
            verify_operation(module)

    def test_printer_round_trips_op_names(self):
        block, *_ = make_add_block()
        module = create_operation("builtin.module", regions=[Region([block])])
        text = print_op(module)
        assert '"arith.addi"' in text
        assert text.count("arith.constant") == 2

    def test_create_operation_uses_registered_class(self):
        op = create_operation("arith.constant", result_types=[T.i32],
                              attributes={"value": IntegerAttr(3, T.i32)})
        assert isinstance(op, arith.ConstantOp)
