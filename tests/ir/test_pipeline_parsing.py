"""Pipeline-string parsing, describe/parse round-tripping, op-anchored
nesting, and the per-run timing statistics of the PassManager."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dialects.builtin import ModuleOp
from repro.ir import PassManager, parse_pipeline
from repro.ir.pass_manager import (IRDumpInstrumentation, PassError,
                                   PassInstrumentation, PassTimingReport,
                                   format_options, ir_size)
import repro.transforms  # noqa: F401  (registers passes)
import repro.core  # noqa: F401


class TestOptionParsing:
    def parse(self, text):
        entries = parse_pipeline(text)
        assert len(entries) == 1
        return entries[0][1]

    def test_integer_and_bool_options(self):
        opts = self.parse("cse{width=64 fast=true slow=false}")
        assert opts == {"width": 64, "fast": True, "slow": False}

    def test_float_options_are_floats(self):
        opts = self.parse("cse{factor=3.5 tiny=.25 exp=1e-3}")
        assert opts == {"factor": 3.5, "tiny": 0.25, "exp": 1e-3}
        assert isinstance(opts["factor"], float)

    def test_quoted_string_values(self):
        opts = self.parse('cse{name="hello world" other=\'a,b=c\'}')
        assert opts == {"name": "hello world", "other": "a,b=c"}

    def test_quoted_escapes(self):
        opts = self.parse(r'cse{v="say \"hi\" \\ back"}')
        assert opts == {"v": 'say "hi" \\ back'}

    def test_quoted_numeric_string_stays_a_string(self):
        opts = self.parse('cse{v="3.5"}')
        assert opts == {"v": "3.5"} and isinstance(opts["v"], str)

    def test_bare_flag_means_true(self):
        assert self.parse("cse{enable}") == {"enable": True}

    def test_dashes_normalise_to_underscores(self):
        assert self.parse("cse{index-bitwidth=64}") == {"index_bitwidth": 64}

    def test_nested_brace_group_values(self):
        opts = self.parse("cse{inner={a=1 b={c=2}} x=3}")
        assert opts == {"inner": "{a=1 b={c=2}}", "x": 3}

    def test_unterminated_quote_raises(self):
        with pytest.raises(PassError, match="unterminated"):
            self.parse('cse{v="oops}')

    def test_unbalanced_braces_raise(self):
        with pytest.raises(PassError, match="braces"):
            parse_pipeline("cse{inner={a=1}")


class TestPipelineParsing:
    def test_whitespace_and_newlines(self):
        entries = parse_pipeline(
            "builtin.module(  canonicalize ,\n   cse  ,\tlower-affine )")
        assert [n for n, _ in entries] == ["canonicalize", "cse",
                                           "lower-affine"]

    def test_empty_entries_are_skipped(self):
        entries = parse_pipeline("builtin.module(canonicalize,,cse,)")
        assert [n for n, _ in entries] == ["canonicalize", "cse"]

    def test_empty_pipeline(self):
        assert parse_pipeline("builtin.module()") == []
        assert parse_pipeline("") == []

    def test_unknown_pass_error_names_the_pass(self):
        with pytest.raises(PassError, match="not-a-real-pass"):
            PassManager.from_pipeline("builtin.module(not-a-real-pass)")

    def test_trailing_garbage_raises(self):
        with pytest.raises(PassError, match="expected ','"):
            parse_pipeline("builtin.module(cse) nonsense")
        with pytest.raises(PassError, match="expected ','"):
            parse_pipeline("builtin.module(canonicalize cse)")

    def test_unbalanced_parens_raise(self):
        with pytest.raises(PassError):
            parse_pipeline("builtin.module(cse")
        with pytest.raises(PassError):
            parse_pipeline("cse)")

    def test_nested_anchor_entries(self):
        entries = parse_pipeline(
            "builtin.module(func.func(canonicalize, cse), lower-affine)")
        assert entries[0][0] == "func.func"
        assert [n for n, _ in entries[0][1]] == ["canonicalize", "cse"]
        assert entries[1] == ("lower-affine", {})

    def test_nested_anchor_with_options(self):
        entries = parse_pipeline(
            "builtin.module(func.func(affine-loop-unroll{unroll-factor=2}))")
        ((anchor, nested),) = entries
        assert anchor == "func.func"
        assert nested == [("affine-loop-unroll", {"unroll_factor": 2})]


OPTION_VALUES = st.one_of(
    st.booleans(),
    st.integers(-10**9, 10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(min_size=0, max_size=12),
)
OPTION_NAMES = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)


class TestDescribeRoundTrip:
    def round_trip(self, pm):
        text = pm.describe()
        rebuilt = PassManager.from_pipeline(text)
        assert rebuilt.describe() == text
        return rebuilt

    def test_flat_round_trip(self):
        pm = PassManager.from_pipeline(
            "builtin.module(canonicalize, cse, "
            "convert-cf-to-llvm{index-bitwidth=64})")
        self.round_trip(pm)

    def test_nested_round_trip(self):
        pm = PassManager()
        pm.nest("func.func").add("canonicalize").add("cse")
        pm.add("lower-affine")
        rebuilt = self.round_trip(pm)
        assert isinstance(rebuilt.passes[0], PassManager)
        assert rebuilt.passes[0].anchor == "func.func"

    def test_listing1_round_trips(self):
        from repro.core.pipelines import BASE_PIPELINE
        pm = PassManager.from_pipeline(BASE_PIPELINE)
        assert parse_pipeline(pm.describe()) == parse_pipeline(BASE_PIPELINE)

    @settings(max_examples=60, deadline=None)
    @given(st.dictionaries(OPTION_NAMES, OPTION_VALUES, max_size=4))
    def test_options_round_trip_exactly(self, options):
        # property: any typed option dict survives describe() -> parse
        pm = PassManager()
        pm.add("cse", **options)
        entries = parse_pipeline(pm.describe())
        assert entries == [("cse", options)]

    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(OPTION_NAMES, OPTION_VALUES, max_size=3),
           st.booleans())
    def test_nested_pipelines_round_trip(self, options, nest_first):
        pm = PassManager()
        if nest_first:
            pm.nest("func.func").add("canonicalize", **options)
            pm.add("cse")
        else:
            pm.add("cse", **options)
            pm.nest("func.func").add("canonicalize")
        text = pm.describe()
        assert PassManager.from_pipeline(text).describe() == text

    def test_format_options_quotes_ambiguous_strings(self):
        text = format_options({"a": "true", "b": "3.5", "c": "x y"})
        assert parse_pipeline(f"cse{text}")[0][1] == \
            {"a": "true", "b": "3.5", "c": "x y"}

    def test_non_finite_floats_round_trip(self):
        options = {"hi": float("inf"), "lo": float("-inf")}
        parsed = parse_pipeline(f"cse{format_options(options)}")[0][1]
        assert parsed == options
        # ...and the *string* "inf" stays a string
        parsed = parse_pipeline(f"cse{format_options({'v': 'inf'})}")[0][1]
        assert parsed == {"v": "inf"} and isinstance(parsed["v"], str)


class TestRunStatistics:
    def run_pm(self, pm):
        return pm.run(ModuleOp(name="m"))

    def test_statistics_reset_per_run(self):
        pm = PassManager.from_pipeline("builtin.module(canonicalize, cse)")
        module = ModuleOp(name="m")
        pm.run(module)
        first = list(pm.statistics)
        pm.run(module)
        assert len(pm.statistics) == len(first) == 2, \
            "statistics must not accumulate across run() calls"

    def test_timing_report_structure(self):
        pm = PassManager.from_pipeline("builtin.module(canonicalize, cse)")
        pm.run(ModuleOp(name="m"))
        report = pm.last_report
        assert isinstance(report, PassTimingReport)
        assert [t.pass_name for t in report.timings] == ["canonicalize", "cse"]
        assert report.total_s == sum(t.wall_s for t in report.timings)
        assert all(t.ir_delta == t.ops_after - t.ops_before
                   for t in report.timings)
        assert "Pass execution timing report" in report.render()

    def test_timing_report_fresh_per_run(self):
        pm = PassManager.from_pipeline("builtin.module(cse)")
        pm.run(ModuleOp(name="m"))
        first = pm.last_report
        pm.run(ModuleOp(name="m"))
        assert pm.last_report is not first
        assert len(pm.last_report.timings) == 1

    def test_nested_passes_report_their_anchor(self):
        module = ModuleOp(name="m")
        pm = PassManager.from_pipeline(
            "builtin.module(func.func(canonicalize))")
        pm.run(module)
        assert pm.last_report.timings == ()  # no func.func ops -> no runs

    def test_instrumentation_hooks_fire(self):
        calls = []

        class Recorder(PassInstrumentation):
            def before_pass(self, pass_, op):
                calls.append(("before", pass_.NAME))

            def after_pass(self, pass_, op, timing):
                calls.append(("after", pass_.NAME, timing.pass_name))

        pm = PassManager.from_pipeline("builtin.module(canonicalize, cse)")
        pm.add_instrumentation(Recorder())
        pm.run(ModuleOp(name="m"))
        assert calls == [("before", "canonicalize"),
                         ("after", "canonicalize", "canonicalize"),
                         ("before", "cse"), ("after", "cse", "cse")]

    def test_nested_child_instrumentation_fires_via_parent_run(self):
        from repro.core.driver import StandardMLIRCompiler
        calls = []

        class Recorder(PassInstrumentation):
            def after_pass(self, pass_, op, timing):
                calls.append((timing.anchor, pass_.NAME))

        pm = PassManager()
        pm.nest("func.func").add("canonicalize") \
          .add_instrumentation(Recorder())
        module = StandardMLIRCompiler().compile(
            "subroutine s(x)\n  real(kind=8), intent(out) :: x\n"
            "  x = 1.0d0\nend subroutine s").standard_module
        pm.run(module)
        assert calls and all(anchor == "func.func" for anchor, _ in calls)

    def test_ir_dump_instrumentation_writes_ir(self):
        import io
        stream = io.StringIO()
        pm = PassManager.from_pipeline("builtin.module(cse)")
        pm.add_instrumentation(IRDumpInstrumentation(before=True, after=True,
                                                     stream=stream))
        pm.run(ModuleOp(name="m"))
        text = stream.getvalue()
        assert "IR dump before cse" in text and "IR dump after cse" in text
        assert "builtin.module" in text

    def test_ir_size_counts_nested_ops(self):
        module = ModuleOp(name="m")
        assert ir_size(module) == 1
