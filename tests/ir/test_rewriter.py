"""Greedy pattern-driver and region-surgery tests for ``repro.ir.rewriter``.

Covers the driver guarantees the transformation passes rely on: fixpoint
convergence, the max-iteration guard on non-converging pattern sets,
``was_erased`` safety when one rewrite erases ops that are still in the walk
snapshot, and use-chain integrity of ``inline_block_before`` /
``inline_region_before``.
"""

import pytest

from repro.dialects import arith
from repro.ir import (Block, PatternRewriter, Region, RewritePattern,
                      apply_patterns_greedily, create_operation)
from repro.ir import types as T
from repro.ir.core import IRError


def _holder(*ops):
    """A module-like op holding one block with ``ops``."""
    block = Block()
    block.add_ops(list(ops))
    return create_operation("builtin.module", regions=[Region([block])]), block


def _constant_value(op):
    return op.get_attr("value").value


class FoldConstantAdd(RewritePattern):
    """addi(const, const) -> const  (a genuinely converging pattern)."""

    ROOT_OP = "arith.addi"

    def match_and_rewrite(self, op, rewriter: PatternRewriter) -> bool:
        lhs = getattr(op.operands[0], "op", None)
        rhs = getattr(op.operands[1], "op", None)
        if lhs is None or rhs is None:
            return False
        if lhs.name != "arith.constant" or rhs.name != "arith.constant":
            return False
        folded = arith.ConstantOp(
            _constant_value(lhs) + _constant_value(rhs), op.results[0].type)
        rewriter.replace_op(op, folded)
        return True


class TestConvergence:
    def test_chain_folds_to_fixpoint(self):
        # ((1 + 2) + 3) + 4 — needs several iterations to fold completely
        c1 = arith.ConstantOp(1, T.i32)
        c2 = arith.ConstantOp(2, T.i32)
        c3 = arith.ConstantOp(3, T.i32)
        c4 = arith.ConstantOp(4, T.i32)
        a1 = arith.AddIOp(c1.result, c2.result)
        a2 = arith.AddIOp(a1.result, c3.result)
        a3 = arith.AddIOp(a2.result, c4.result)
        consumer = arith.MulIOp(a3.result, a3.result)
        holder, block = _holder(c1, c2, c3, c4, a1, a2, a3, consumer)

        assert apply_patterns_greedily(holder, [FoldConstantAdd()])
        assert all(op.name != "arith.addi" for op in block.ops)
        final = getattr(consumer.operands[0], "op")
        assert final.name == "arith.constant"
        assert _constant_value(final) == 10

    def test_no_match_returns_false_and_leaves_ir_alone(self):
        c = arith.ConstantOp(5, T.i32)
        neg = arith.SubIOp(c.result, c.result)
        holder, block = _holder(c, neg)
        assert not apply_patterns_greedily(holder, [FoldConstantAdd()])
        assert [op.name for op in block.ops] == ["arith.constant", "arith.subi"]


class TestMaxIterationGuard:
    def test_non_converging_pattern_terminates(self):
        class AlwaysModified(RewritePattern):
            """Reports a modification every visit without changing the IR."""

            calls = 0

            def match_and_rewrite(self, op, rewriter: PatternRewriter) -> bool:
                if op.name != "arith.constant":
                    return False
                AlwaysModified.calls += 1
                rewriter.notify_modified()
                return False   # the driver must still count rewriter.modified

        c = arith.ConstantOp(1, T.i32)
        holder, _ = _holder(c)
        # must terminate despite never reaching a fixpoint...
        assert apply_patterns_greedily(holder, [AlwaysModified()],
                                       max_iterations=7)
        # ... and must have run exactly max_iterations sweeps
        assert AlwaysModified.calls == 7

    def test_max_iterations_bounds_rewrites(self):
        class GrowChain(RewritePattern):
            """Replaces each constant with constant+1 — never converges."""

            ROOT_OP = "arith.constant"

            def match_and_rewrite(self, op, rewriter: PatternRewriter) -> bool:
                new = arith.ConstantOp(_constant_value(op) + 1,
                                       op.results[0].type)
                rewriter.replace_op(op, new)
                return True

        c = arith.ConstantOp(0, T.i32)
        use = arith.AddIOp(c.result, c.result)
        holder, block = _holder(c, use)
        apply_patterns_greedily(holder, [GrowChain()], max_iterations=5)
        constants = [op for op in block.ops if op.name == "arith.constant"]
        assert len(constants) == 1
        assert _constant_value(constants[0]) == 5


class TestErasureSafety:
    def test_was_erased_skips_ops_removed_by_earlier_rewrites(self):
        """A pattern erasing the *next* op in the walk snapshot must not
        cause that op to be revisited (or re-erased)."""
        visits = []

        class EraseFollowingConstant(RewritePattern):
            def match_and_rewrite(self, op, rewriter: PatternRewriter) -> bool:
                visits.append(op.name)
                if op.name != "arith.subi":
                    return False
                victim = getattr(op.operands[0], "op")
                rewriter.replace_op_with_values(op, [victim.operands[0]])
                # also erase the now-unused add: it is later in the snapshot
                rewriter.erase_op(victim, check_uses=False)
                return True

        c = arith.ConstantOp(3, T.i32)
        add = arith.AddIOp(c.result, c.result)
        sub = arith.SubIOp(add.result, c.result)
        # walk order: c, sub, add — sub's rewrite erases add before the
        # driver reaches it
        holder, block = _holder(c, sub, add)
        apply_patterns_greedily(holder, [EraseFollowingConstant()])
        assert [op.name for op in block.ops] == ["arith.constant"]
        # add was never visited after its erasure
        assert visits.count("arith.addi") == 0

    def test_rewriter_records_erasures(self):
        c = arith.ConstantOp(3, T.i32)
        holder, _ = _holder(c)
        rewriter = PatternRewriter(holder)
        assert not rewriter.was_erased(c)
        rewriter.erase_op(c, check_uses=False)
        assert rewriter.was_erased(c)
        assert rewriter.modified

    def test_replace_op_checks_result_arity(self):
        c = arith.ConstantOp(1, T.i32)
        add = arith.AddIOp(c.result, c.result)
        holder, _ = _holder(c, add)
        rewriter = PatternRewriter(holder)
        with pytest.raises(IRError):
            rewriter.replace_op(add, [], new_results=[])


class TestRegionInlining:
    def _region_op(self, arg_types):
        """An op with one single-block region taking ``arg_types``."""
        inner = Block(arg_types=arg_types)
        region = Region([inner])
        op = create_operation("test.wrapper", regions=[region])
        return op, inner

    def test_inline_block_before_remaps_block_args(self):
        outer_const = arith.ConstantOp(41, T.i32)
        wrapper, inner = self._region_op([T.i32])
        inner_add = arith.AddIOp(inner.args[0], inner.args[0])
        inner.add_op(inner_add)
        anchor = arith.ConstantOp(0, T.i32)
        holder, block = _holder(outer_const, wrapper, anchor)

        rewriter = PatternRewriter(holder)
        rewriter.inline_block_before(inner, anchor, [outer_const.result])
        # the add moved out, and its operand was remapped to the outer value
        assert inner_add.parent is block
        assert inner_add.operands[0] is outer_const.result
        assert inner_add.operands[1] is outer_const.result
        assert block.ops.index(inner_add) < block.ops.index(anchor)
        assert not inner.ops
        # block args no longer carry uses
        assert inner.args[0].num_uses == 0
        assert rewriter.modified

    def test_inline_block_before_arity_mismatch(self):
        wrapper, inner = self._region_op([T.i32, T.i32])
        anchor = arith.ConstantOp(0, T.i32)
        holder, _ = _holder(wrapper, anchor)
        rewriter = PatternRewriter(holder)
        with pytest.raises(IRError):
            rewriter.inline_block_before(inner, anchor, [])

    def test_inline_region_before_single_block_only(self):
        wrapper, _ = self._region_op([])
        wrapper.regions[0].add_block(Block())
        anchor = arith.ConstantOp(0, T.i32)
        holder, _ = _holder(wrapper, anchor)
        rewriter = PatternRewriter(holder)
        with pytest.raises(IRError):
            rewriter.inline_region_before(wrapper.regions[0], anchor)

    def test_inline_region_before_preserves_use_chains(self):
        outer = arith.ConstantOp(5, T.i32)
        wrapper, inner = self._region_op([T.i32])
        doubled = arith.AddIOp(inner.args[0], inner.args[0])
        squared = arith.MulIOp(doubled.result, doubled.result)
        inner.add_ops([doubled, squared])
        anchor = arith.ConstantOp(0, T.i32)
        holder, block = _holder(outer, wrapper, anchor)

        rewriter = PatternRewriter(holder)
        rewriter.inline_region_before(wrapper.regions[0], anchor,
                                      [outer.result])
        # def-use chain between the two inlined ops is intact
        assert squared.operands[0] is doubled.result
        assert doubled.result.num_uses == 2
        assert [op.name for op in block.ops] == [
            "arith.constant", "test.wrapper", "arith.addi", "arith.muli",
            "arith.constant"]
