"""Integration tests: every workload compiles under both flows and the two
flows agree numerically (the correctness gate behind all modeled results)."""

import pytest

from repro.workloads import (all_workloads, get_workload, table1_workloads,
                             table2_workloads, table3_workloads)

from ..conftest import last_value, run_flang, run_ours

WORKLOADS = {w.name: w for w in all_workloads()}


class TestRegistry:
    def test_table1_has_twenty_benchmarks(self):
        assert len(table1_workloads()) == 20

    def test_table2_is_the_published_subset(self):
        assert {w.name for w in table2_workloads()} == {
            "ac", "linpk", "nf", "test_fpu", "tfft", "jacobi", "pw-advection",
            "tra-adv"}

    def test_table3_intrinsics(self):
        assert {w.name for w in table3_workloads()} == {
            "transpose", "matmul", "dotproduct", "sum"}

    def test_paper_problem_sizes(self):
        jacobi = get_workload("jacobi")
        assert jacobi.paper_params == {"n": 1024, "iters": 100000}
        pw = get_workload("pw-advection")
        assert pw.paper_params == {"nx": 2048, "ny": 1024, "nz": 1024}
        tra = get_workload("tra-adv")
        assert tra.paper_params["iters"] == 20
        assert get_workload("matmul").paper_params == {"n": 4096}

    def test_work_ratio_scales_with_paper_size(self):
        w = get_workload("jacobi")
        assert w.work_ratio() > 1e5
        assert w.scaling().working_set_bytes == pytest.approx(2 * 8 * 1024 ** 2)

    def test_openmp_variant_sources_differ(self):
        from repro.workloads import jacobi
        assert "!$omp" in jacobi(openmp=True).source()
        assert "!$omp" not in jacobi(openmp=False).source()

    def test_gpu_grid_size_override(self):
        from repro.workloads import pw_advection
        w = pw_advection(openacc=True, grid_cells=134_000_000)
        total = w.paper_params["nx"] * w.paper_params["ny"] * w.paper_params["nz"]
        assert total == pytest.approx(134_000_000, rel=0.15)

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("not-a-benchmark")


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_flows_agree_numerically(name):
    """For every benchmark the baseline Flang flow and the standard-MLIR flow
    must produce identical results (within FP tolerance)."""
    workload = WORKLOADS[name]
    source = workload.source(scaled=True)
    flang_value = last_value(run_flang(source))
    ours_value = last_value(run_ours(source, gpu=workload.uses_openacc))
    assert ours_value == pytest.approx(flang_value, rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("name", ["jacobi", "pw-advection", "tra-adv"])
def test_stencils_vectorise_under_our_flow(name):
    workload = WORKLOADS[name]
    stats = run_ours(workload.source(scaled=True)).stats
    assert stats.total("vector_load") + stats.total("vector_store") > 0


@pytest.mark.parametrize("name", ["jacobi", "pw-advection", "tra-adv"])
def test_flang_flow_is_scalar(name):
    workload = WORKLOADS[name]
    stats = run_flang(workload.source(scaled=True)).stats
    assert stats.total("vector_float") == 0
    assert stats.total("vector_load") == 0


@pytest.mark.parametrize("name", ["transpose", "matmul", "dotproduct", "sum"])
def test_intrinsics_use_runtime_in_flang_and_linalg_in_ours(name):
    workload = WORKLOADS[name]
    source = workload.source(scaled=True)
    flang_stats = run_flang(source).stats
    ours_stats = run_ours(source).stats
    assert sum(flang_stats.runtime_calls.values()) > 0
    assert flang_stats.total("runtime_elem") > 0
    # our flow executes linalg-lowered loops instead of the runtime library
    assert ours_stats.total("runtime_elem") == 0


def test_get_workload_uses_the_prebuilt_index():
    from repro.workloads import WORKLOAD_INDEX, get_workload
    # the no-kwargs path must not rebuild every workload per lookup
    assert get_workload("jacobi") is WORKLOAD_INDEX["jacobi"]
    assert get_workload("dotproduct") is WORKLOAD_INDEX["dotproduct"]


def test_get_workload_variants_and_unknown_names():
    from repro.workloads import get_workload
    variant = get_workload("jacobi", openmp=True)
    assert variant.uses_openmp and variant.name == "jacobi"
    with pytest.raises(KeyError):
        get_workload("no-such-workload")
