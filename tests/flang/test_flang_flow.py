"""Tests for the baseline Flang flow (HLFIR -> FIR -> LLVM dialect)."""

import pytest

from repro.dialects import dialects_used
from repro.flang import FlangCompiler, FlangV17Compiler
from repro.flang.runtime import (RUNTIME_SYMBOLS, dispatch, is_runtime_symbol)
from repro.ir.printer import print_op
from repro.machine import Interpreter

import numpy as np

from ..conftest import last_value


class TestHlfirToFir:
    def test_hlfir_removed(self, simple_program_source, flang_compiler):
        result = flang_compiler.compile(simple_program_source, stop_at="fir")
        used = dialects_used(result.fir_module)
        assert "hlfir" not in used
        assert "fir" in used

    def test_intrinsics_become_runtime_calls(self, flang_compiler):
        src = """
program p
  implicit none
  real(kind=8), dimension(8) :: v
  real(kind=8) :: t
  v(1) = 2.0d0
  t = sum(v) + dot_product(v, v)
  print *, t
end program p
"""
        result = flang_compiler.compile(src, stop_at="fir")
        text = print_op(result.fir_module)
        assert "_FortranASum" in text
        assert "_FortranADotProduct" in text

    def test_element_access_uses_explicit_offsets(self, flang_compiler):
        src = """
program p
  implicit none
  real(kind=8), dimension(8, 8) :: a
  a(3, 4) = 1.0d0
  print *, a(3, 4)
end program p
"""
        result = flang_compiler.compile(src, stop_at="fir")
        text = print_op(result.fir_module)
        # 1-based normalisation + linearisation + coordinate_of
        assert '"fir.coordinate_of"' in text
        assert '"arith.subi"' in text
        assert '"arith.muli"' in text

    def test_allocatable_descriptor_reloaded_per_access(self, flang_compiler):
        src = """
program p
  implicit none
  real(kind=8), dimension(:), allocatable :: v
  integer :: i
  allocate(v(8))
  do i = 1, 8
    v(i) = real(i, 8)
  end do
  print *, v(8)
end program p
"""
        result = flang_compiler.compile(src, stop_at="fir")
        loops = [op for op in result.fir_module.walk() if op.name == "fir.do_loop"]
        assert loops
        body_names = [op.name for op in loops[0].walk()]
        # the box is re-loaded inside the loop (no hoisting in the baseline)
        assert "fir.load" in body_names and "fir.box_addr" in body_names


class TestCodegen:
    def test_llvm_only_output(self, simple_program_source, flang_compiler):
        result = flang_compiler.compile(simple_program_source)
        assert result.succeeded
        used = dialects_used(result.llvm_module)
        assert "fir" not in used and "hlfir" not in used
        assert "scf" not in used and "memref" not in used
        assert "llvm" in used

    def test_loops_flattened_to_branches(self, simple_program_source, flang_compiler):
        result = flang_compiler.compile(simple_program_source)
        text = print_op(result.llvm_module)
        assert '"llvm.br"' in text
        assert '"llvm.cond_br"' in text

    def test_scalar_only_floating_point(self, simple_program_source, flang_compiler):
        """Section IV: Flang produces entirely scalar FP operations."""
        result = flang_compiler.compile(simple_program_source)
        text = print_op(result.llvm_module)
        assert "vector" not in text

    def test_v17_flow_description_differs(self):
        v20 = FlangCompiler()
        v17 = FlangV17Compiler()
        assert v17.version.startswith("17")
        assert v20.flow_description() != v17.flow_description()


class TestRuntimeLibrary:
    def test_symbol_classification(self):
        assert is_runtime_symbol("_FortranASumReal8")
        assert is_runtime_symbol("_FortranAioOutput")
        assert not is_runtime_symbol("my_subroutine")

    def test_dispatch_matches_numpy(self):
        a = np.arange(12, dtype=float).reshape(3, 4)
        assert dispatch(RUNTIME_SYMBOLS["sum"], [a]) == pytest.approx(a.sum())
        assert dispatch(RUNTIME_SYMBOLS["maxval"], [a]) == pytest.approx(a.max())
        b = np.ones((4, 2))
        out = dispatch(RUNTIME_SYMBOLS["matmul"], [a, b])
        assert out.shape == (3, 2)
        assert np.allclose(out, a @ b)

    def test_executable_baseline_produces_output(self, simple_program_source,
                                                 flang_compiler):
        result = flang_compiler.compile(simple_program_source, stop_at="fir")
        interp = Interpreter(result.fir_module)
        interp.run_main()
        expected = sum(float(i + j) for i in range(1, 9) for j in range(1, 9))
        expected += sum(float(i + 1) * 2.0 for i in range(1, 9))
        assert last_value(interp) == pytest.approx(expected)
