#!/usr/bin/env python3
"""Regenerate (a subset of) Tables I and II: compiler runtime comparison.

Usage::

    python examples/compiler_comparison.py [benchmark ...]

Without arguments a representative subset is used (the three stencils the
paper focuses on plus two Polyhedron kernels); pass benchmark names or
``all`` for the full Table I/II sweep.
"""

import sys

from repro.harness import format_table, ordering_agreement, speedup, table1, table2


def main() -> None:
    args = sys.argv[1:]
    if args == ["all"]:
        benchmarks = None
    elif args:
        benchmarks = args
    else:
        benchmarks = ["ac", "linpk", "jacobi", "pw-advection", "tra-adv"]

    print("Regenerating Table I (reference compilers)...")
    t1 = table1(benchmarks=benchmarks)
    print(format_table(t1))
    print()

    print("Regenerating Table II (our approach vs Flang/Cray/GNU)...")
    t2 = table2(benchmarks=[b for b in (benchmarks or [])
                            if b in {"ac", "linpk", "nf", "test_fpu", "tfft",
                                     "jacobi", "pw-advection", "tra-adv"}] or None)
    print(format_table(t2))
    print()

    gains = speedup(t2, baseline="flang-v20", candidate="our-approach")
    print("Speed-up of the standard MLIR flow over Flang v20:")
    for name, gain in sorted(gains.items()):
        print(f"  {name:15s} {gain:5.2f}x")
    print(f"\nFastest-compiler agreement with the paper (Table II): "
          f"{ordering_agreement(t2):.0%}")


if __name__ == "__main__":
    main()
