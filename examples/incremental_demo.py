#!/usr/bin/env python3
"""Function-granular incremental compilation, end to end.

1. Compile a two-subroutine module cold: every function runs the full
   standard pipeline and lands in the per-function stage store.
2. Recompile the identical source: both functions splice from the store
   (zero passes run), and the output is bit-identical.
3. Edit ONE subroutine and recompile: exactly one function recompiles,
   the other splices, and the result is bit-identical to a from-scratch
   compile of the edited source.
4. Run the same pipeline with ``jobs=2``: functions are optimised in
   parallel, again bit-identically.

Usage::

    PYTHONPATH=src python examples/incremental_demo.py
"""

import time

from repro.core.fir_to_standard import convert_fir_to_standard
from repro.core.pipelines import standard_flow_pipeline
from repro.flang import FlangCompiler
from repro.ir import pipeline_settings, print_op
from repro.service.incremental import FunctionArtifactStore

HEAT = """
subroutine heat(n)
  implicit none
  integer, intent(in) :: n
  integer :: i, it
  real(kind=8), dimension(128) :: u, unew
  do it = 1, 10
    do i = 2, 127
      unew(i) = 0.25d0 * (u(i-1) + 2.0d0 * u(i) + u(i+1))
    end do
    do i = 2, 127
      u(i) = unew(i)
    end do
  end do
end subroutine heat
"""

SCALE = """
subroutine scale(n)
  implicit none
  integer, intent(in) :: n
  integer :: i
  real(kind=8), dimension(128) :: v
  do i = 1, 128
    v(i) = v(i) * {factor}
  end do
end subroutine scale
"""


def compile_with(source, store, jobs=1):
    module = convert_fir_to_standard(
        FlangCompiler().lower_to_hlfir(source))
    pm = standard_flow_pipeline()
    with pipeline_settings(jobs=jobs, function_cache=store):
        t0 = time.perf_counter()
        pm.run(module)
        elapsed = time.perf_counter() - t0
    return module, elapsed


def main() -> None:
    store = FunctionArtifactStore()
    source = HEAT + SCALE.format(factor="2.0d0")

    print("== 1. cold compile (two functions, empty store)")
    cold, t_cold = compile_with(source, store)
    print(f"   {t_cold * 1000:6.1f}ms   "
          f"store: {store.counters.as_dict()}")

    print("== 2. identical source again: both functions splice")
    warm, t_warm = compile_with(source, store)
    print(f"   {t_warm * 1000:6.1f}ms   "
          f"store: {store.counters.as_dict()}")
    print(f"   bit-identical to cold: {print_op(warm) == print_op(cold)}")

    print("== 3. edit ONE subroutine: exactly one recompile")
    edited_source = HEAT + SCALE.format(factor="3.0d0")
    incremental, t_inc = compile_with(edited_source, store)
    print(f"   {t_inc * 1000:6.1f}ms   "
          f"store: {store.counters.as_dict()}")
    from_scratch, _ = compile_with(edited_source, None)
    print(f"   bit-identical to a from-scratch compile: "
          f"{print_op(incremental) == print_op(from_scratch)}")

    print("== 4. parallel pass pipelines (jobs=2), no store")
    parallel, t_par = compile_with(source, None, jobs=2)
    print(f"   {t_par * 1000:6.1f}ms   "
          f"bit-identical to serial: "
          f"{print_op(parallel) == print_op(cold)}")

    print()
    print(f"cold {t_cold * 1000:.1f}ms -> warm {t_warm * 1000:.1f}ms "
          f"-> one-function edit {t_inc * 1000:.1f}ms")


if __name__ == "__main__":
    main()
