#!/usr/bin/env python3
"""Enumerate the registered compilation flows and print the IR at each stage.

Machine-readable rendition of the paper's flow diagrams: every flow in the
:mod:`repro.flows` registry with its options schema and pipeline, the stages
of the baseline Flang pipeline (Figure 1) and the standard-MLIR pipeline
(Figure 2), and the vectorisation pass pipeline (Figure 3), together with
the IR of a tiny subroutine at every stage.
"""

from repro.core.pipelines import BASE_PIPELINE, VECTORIZE_PIPELINE
from repro.flows import ExecutionContext, available_flows, get_flow
from repro.ir.printer import print_op
from repro.workloads import get_workload

SOURCE = """
subroutine run_solver(i, x)
  implicit none
  integer, intent(in) :: i
  real(kind=8), intent(out) :: x
  if (i == 50) then
    x = 1.0d0
  else
    x = 2.0d0
  end if
end subroutine run_solver
"""


class _Source:
    name = "run_solver"
    uses_openmp = False
    uses_openacc = False

    def source(self, *, scaled=True, **_):
        return SOURCE


def main() -> None:
    print("=" * 70)
    print("Registered compilation flows (repro.flows)")
    print("=" * 70)
    for name in available_flows():
        flow = get_flow(name)
        print(f"\n{name}")
        print(f"  {flow.description}")
        print(f"  options: {flow.schema.describe()}")
        workload = get_workload("dotproduct")
        options = flow.normalise_options({}, workload, ExecutionContext())
        pipeline = flow.pipeline(options)
        if pipeline is not None:
            print(f"  pipeline: {pipeline.describe()}")

    for name, figure in (("flang", "Figure 1 — Flang's existing flow"),
                         ("ours", "Figure 2 — the standard MLIR flow "
                                  "of this paper")):
        print()
        print("=" * 70)
        print(figure)
        print("=" * 70)
        result = get_flow(name).run(_Source())
        for stage in result.stage_names:
            module = result.stage(stage)
            if module is None:
                continue
            print(f"\n--- stage: {stage} ---")
            print(print_op(module))

    print("=" * 70)
    print("Listing 1 — base mlir-opt pipeline")
    print("=" * 70)
    print(BASE_PIPELINE)
    print()
    print("=" * 70)
    print("Figure 3 — vectorisation pipeline")
    print("=" * 70)
    print(VECTORIZE_PIPELINE)


if __name__ == "__main__":
    main()
