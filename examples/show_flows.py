#!/usr/bin/env python3
"""Figures 1-3: print the two compilation flows and the IR at each stage.

Machine-readable rendition of the paper's flow diagrams: the stages of the
baseline Flang pipeline (Figure 1), the standard-MLIR pipeline (Figure 2),
and the vectorisation pass pipeline (Figure 3), together with the IR of a
tiny subroutine at every stage.
"""

from repro.core import StandardMLIRCompiler
from repro.core.pipelines import BASE_PIPELINE, VECTORIZE_PIPELINE
from repro.flang import FlangCompiler
from repro.ir.printer import print_op

SOURCE = """
subroutine run_solver(i, x)
  implicit none
  integer, intent(in) :: i
  real(kind=8), intent(out) :: x
  if (i == 50) then
    x = 1.0d0
  else
    x = 2.0d0
  end if
end subroutine run_solver
"""


def main() -> None:
    print("=" * 70)
    print("Figure 1 — Flang's existing flow")
    print("=" * 70)
    flang = FlangCompiler()
    for step in flang.flow_description():
        print("  ->", step)
    result = flang.compile(SOURCE, stop_at="fir")
    print("\n--- HLFIR + FIR (Listing 2) ---")
    print(print_op(result.hlfir_module))

    print("=" * 70)
    print("Figure 2 — the standard MLIR flow of this paper")
    print("=" * 70)
    ours = StandardMLIRCompiler(vector_width=4)
    for step in ours.flow_description():
        print("  ->", step)
    compiled = ours.compile(SOURCE)
    print("\n--- standard dialects after the Section V transformation "
          "(Listing 3) ---")
    print(print_op(compiled.standard_module))

    print("=" * 70)
    print("Listing 1 — base mlir-opt pipeline")
    print("=" * 70)
    print(BASE_PIPELINE)
    print()
    print("=" * 70)
    print("Figure 3 — vectorisation pipeline")
    print("=" * 70)
    print(VECTORIZE_PIPELINE)


if __name__ == "__main__":
    main()
