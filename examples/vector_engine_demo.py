#!/usr/bin/env python3
"""Vector engine demo: whole-array evaluation vs iterative fallback.

Runs two kernels under the ``vector`` engine and reports what its static
matcher and runtime evaluator decided:

* a Jacobi-style stencil whose loop nests are pure element-wise dataflow —
  every nest is matched and evaluated as single whole-array numpy
  expressions, and the synthesized :class:`ExecutionStats` are checked
  bit-for-bit against the one-op reference engine;
* a read-modify-write kernel (``a(i) = a(i) + ...`` re-run by an outer
  loop) whose inner nest the matcher admits but the runtime hazard check
  must decline — the nest falls back to the exact iterative thunks, still
  bit-identical.

Usage: ``PYTHONPATH=src python examples/vector_engine_demo.py``
"""

from repro.flang import FlangCompiler
from repro.machine import Interpreter
from repro.service.serialization import stats_to_dict

STENCIL = """
program stencil
  implicit none
  integer, parameter :: n = 64
  real(kind=8), dimension(n, n) :: u, unew
  integer :: i, j, it
  do j = 1, n
    do i = 1, n
      u(i, j) = real(i, 8) * 0.01d0 + real(j, 8) * 0.02d0
    end do
  end do
  do it = 1, 5
    do j = 2, n - 1
      do i = 2, n - 1
        unew(i, j) = 0.25d0 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
      end do
    end do
    do j = 2, n - 1
      do i = 2, n - 1
        u(i, j) = unew(i, j)
      end do
    end do
  end do
  print *, u(32, 32)
end program stencil
"""

CARRIED = """
program carried
  implicit none
  real(kind=8), dimension(64) :: a
  integer :: i, k
  a = 1.0d0
  do k = 1, 8
    do i = 1, 64
      a(i) = a(i) + real(k, 8)
    end do
  end do
  print *, a(1), a(64)
end program carried
"""


def run(name: str, source: str) -> None:
    module = FlangCompiler().compile(source, stop_at="fir").fir_module
    reference = Interpreter(module, engine="reference")
    reference.run_main()
    vec = Interpreter(module, engine="vector")
    vec.run_main()
    assert vec.printed == reference.printed, "output diverged!"
    assert stats_to_dict(vec.stats) == stats_to_dict(reference.stats), \
        "stats diverged!"
    engine = vec._vector
    print(f"== {name} ==")
    print(f"  program output : {vec.printed[-1].strip()}")
    print(f"  matched nests  : {engine.matched_sites} "
          f"(declined statically: {engine.declined_sites})")
    print(f"  whole-array runs {engine.vector_runs:3d} / "
          f"iterative fallbacks {engine.fallback_runs}")
    print("  stats + output bit-identical to the reference engine")


def main() -> None:
    run("jacobi stencil — the 2-d sweeps vectorise", STENCIL)
    print()
    run("loop-carried read-modify-write — runtime fallback", CARRIED)


if __name__ == "__main__":
    main()
