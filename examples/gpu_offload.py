#!/usr/bin/env python3
"""Table V: OpenACC GPU offload of the pw-advection benchmark.

Shows the paper's OpenACC lowering in action: ``acc.kernels`` regions become
``scf.parallel`` loops, then ``gpu.launch`` kernels with host registration of
the managed arrays, and the modeled V100 runtime is compared against the
nvfortran reference.  Also demonstrates that the baseline Flang build fails
with the internal error reported in Section VI-C.
"""

from repro.core import StandardMLIRCompiler
from repro.flang import FlangCompiler
from repro.harness import format_table, table5
from repro.workloads import pw_advection


def main() -> None:
    workload = pw_advection(openacc=True)
    source = workload.source(scaled=True)

    print("Baseline Flang on OpenACC input:")
    result = FlangCompiler().compile(source)
    print("  compiled:", result.succeeded)
    print("  error   :", result.error)
    print()

    print("Standard MLIR flow with the OpenACC -> GPU lowering:")
    ours = StandardMLIRCompiler(vector_width=0, gpu=True)
    compiled = ours.compile(source)
    gpu_ops = sorted({op.name for op in compiled.optimised_module.walk()
                      if op.dialect == "gpu"})
    print("  gpu dialect operations generated:", ", ".join(gpu_ops))
    print()

    print("Regenerating Table V (modeled V100 runtimes)...")
    print(format_table(table5()))


if __name__ == "__main__":
    main()
