#!/usr/bin/env python3
"""Compilation-daemon demo: one warm daemon serving repeated batches.

Starts ``python -m repro.service serve`` on a private unix socket, drives
the same table batch through it twice, and prints the daemon's own
metrics after each batch — the first run compiles, the second is served
entirely from the daemon's warm cache, so the hit rate jumps from ~0 to
~1 without this process compiling anything.

Run with ``PYTHONPATH=src python examples/daemon_demo.py``.
"""

import os
import subprocess
import sys
import tempfile
import time

from repro.service import run_tables
from repro.service.client import (DaemonClient, DaemonUnavailable,
                                  maybe_daemon_service)

TABLES = ["table3", "figure3"]


def wait_for_daemon(socket_path: str, deadline_s: float = 20.0) -> None:
    t0 = time.perf_counter()
    while True:
        try:
            with DaemonClient(socket_path) as client:
                client.ping()
            return
        except (DaemonUnavailable, OSError):
            if time.perf_counter() - t0 > deadline_s:
                raise
            time.sleep(0.1)


def one_batch(socket_path: str, label: str) -> float:
    service = maybe_daemon_service(socket_path, max_workers=2)
    assert service is not None, "daemon did not answer discovery"
    t0 = time.perf_counter()
    run_tables(tables=TABLES, service=service)
    elapsed = time.perf_counter() - t0
    metrics = service.daemon_metrics()
    print(f"[{label}] {elapsed:6.2f}s  daemon: "
          f"{metrics['compiled']} compiled, "
          f"{metrics['cache_hits']} cache hits, "
          f"{metrics['coalesced']} coalesced, "
          f"hit rate {metrics['hit_rate']:.2f}")
    service.client.close()
    return metrics["hit_rate"]


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-daemon-") as workdir:
        socket_path = os.path.join(workdir, "daemon.sock")
        print(f"starting daemon on {socket_path}\n")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--socket", socket_path,
             "--cache-dir", os.path.join(workdir, "cache"), "--jobs", "2"],
            env={**os.environ, "PYTHONPATH": "src"})
        try:
            wait_for_daemon(socket_path)
            cold_rate = one_batch(socket_path, "first batch ")
            warm_rate = one_batch(socket_path, "second batch")
            print(f"\nhit-rate delta: {cold_rate:.2f} -> {warm_rate:.2f} "
                  "(the second batch was served from the daemon's warm "
                  "cache)")
            with DaemonClient(socket_path) as client:
                client.shutdown()
            proc.wait(timeout=20)
        finally:
            if proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=10)
    return 0


if __name__ == "__main__":
    sys.exit(main())
