#!/usr/bin/env python3
"""Compilation-service demo: warm-vs-cold cache speedup.

Drives Table III and the Figure 3 vectorisation sweep through the
compilation service twice against one persistent cache directory:

* **cold** — an empty cache: every (workload, flow, options) job is
  compiled and interpreted, fanned out over a small process pool;
* **warm** — a brand-new service instance over the same directory: every
  measurement is served from the content-addressed disk store, with zero
  recompilations.

Run with ``PYTHONPATH=src python examples/service_demo.py``.
"""

import tempfile
import time

from repro.service import ArtifactCache, CompileService, run_tables


def drive(cache_dir: str, label: str, workers: int) -> CompileService:
    service = CompileService(ArtifactCache(cache_dir=cache_dir),
                             max_workers=workers)
    t0 = time.perf_counter()
    result = run_tables(tables=["table3", "figure3"], service=service)
    elapsed = time.perf_counter() - t0
    batch = result["batch"]
    counters = service.counters()
    print(f"[{label}] {elapsed:6.2f}s  "
          f"{batch.unique} unique jobs, {batch.cache_hits} batch cache hits, "
          f"{batch.executed} compiled, "
          f"{counters['recompilations']} recompilations, "
          f"{counters['disk_hits']} disk hits")
    return service


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-service-") as cache_dir:
        print(f"cache directory: {cache_dir}\n")
        t_cold = time.perf_counter()
        drive(cache_dir, "cold", workers=4)
        t_cold = time.perf_counter() - t_cold

        t_warm = time.perf_counter()
        warm = drive(cache_dir, "warm", workers=4)
        t_warm = time.perf_counter() - t_warm

        assert warm.recompilations == 0, "warm run recompiled something!"
        print(f"\nwarm run speedup: {t_cold / max(t_warm, 1e-9):.1f}x "
              f"(cold {t_cold:.2f}s -> warm {t_warm:.2f}s)")


if __name__ == "__main__":
    main()
