#!/usr/bin/env python3
"""Section IV profiling narrative: instruction-mix profiles per compiler.

Reproduces the style of analysis the paper performs on tfft and induct:
fraction of floating-point work, fraction of it vectorised, memory-op share
and total dynamic operations, for the baseline Flang flow and the standard
MLIR flow.

Usage::

    python examples/profile_benchmark.py [benchmark]   # default: induct
"""

import sys

from repro.harness import section4_profile


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "induct"
    profiles = section4_profile(benchmark)
    print(f"Instruction-mix profile for '{benchmark}':\n")
    for flow in ("flang-v20", "our-approach"):
        mix = profiles[flow]
        print(f"  {flow}")
        print(f"    total dynamic operations : {mix['total_instructions']:12.0f}")
        print(f"    floating-point fraction  : {mix['floating_point_fraction']:6.1%}")
        print(f"    vectorised FP fraction   : {mix['vectorised_fp_fraction']:6.1%}")
        print(f"    memory-op fraction       : {mix['memory_op_fraction']:6.1%}")
        print(f"    est. memory stall share  : "
              f"{mix['estimated_memory_stall_fraction']:6.1%}")
        print()
    if profiles["paper"]:
        print("Published observations (Section IV):")
        for key, value in profiles["paper"].items():
            print(f"    {key}: {value}")


if __name__ == "__main__":
    main()
