"""Demonstrate the differential conformance subsystem end to end.

1. Generate a seeded kernel and show what the generator covers.
2. Run the oracle: every registered flow x both interpreter engines.
3. Register a deliberately broken flow (divsi -> floor division), show the
   oracle catching it, and shrink the divergence to a minimal repro.

Run with:  PYTHONPATH=src python examples/conformance_demo.py
"""

from repro.conformance import check_kernel, check_seed, generate
from repro.conformance.reduce import reduce_report
from repro.flows import registered
from repro.flows.builtin import OursFlow
from repro.ir.core import create_operation

SEED = 11


class BuggyDivFlow(OursFlow):
    name = "ours-buggy-div"
    description = "ours with divsi reverted to floor division (demo)"

    def compile(self, workload, options, execution, **kwargs):
        result = super().compile(workload, options, execution, **kwargs)
        if result.error is None:
            for op in list(result.module.walk()):
                if op.name == "arith.divsi":
                    bad = create_operation(
                        "arith.floordivsi", operands=list(op.operands),
                        result_types=[r.type for r in op.results])
                    op.parent.insert_before(op, bad)
                    op.replace_all_uses_with(list(bad.results))
                    op.erase(check_uses=False)
        return result


def main() -> None:
    kernel = generate(SEED)
    print(f"=== generated kernel, seed {SEED} "
          f"({len(kernel.source.splitlines())} lines) ===")
    print("features:", ", ".join(kernel.features))

    report = check_seed(SEED)
    print(f"\n=== oracle: {len(report.observations)} observations ===")
    for (config, engine), obs in sorted(report.observations.items()):
        status = "ok" if obs.ok else f"FAILED: {obs.error}"
        print(f"  {config:>12} @ {engine:<9} {status}")
    print("verdict:", "conformant" if report.ok else "DIVERGENT")

    print("\n=== injecting a semantics bug (divsi -> floordivsi) ===")
    with registered(BuggyDivFlow):
        divergent = None
        for seed in range(64):
            candidate = check_seed(seed)
            if not candidate.ok:
                divergent = candidate
                break
        assert divergent is not None, "no divergence found in 64 seeds?!"
        print(f"caught at seed {divergent.seed}:")
        for d in divergent.divergences:
            print("   ", d.describe())
        reduced = reduce_report(divergent)
        print(f"\nreduced from {len(divergent.source.splitlines())} to "
              f"{len(reduced.splitlines())} lines:\n")
        print(reduced)


if __name__ == "__main__":
    main()
