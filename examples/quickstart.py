#!/usr/bin/env python3
"""Quickstart: compile one Fortran kernel with both flows and compare them.

Runs the baseline Flang flow (HLFIR -> FIR -> bespoke LLVM lowering) and the
paper's standard-MLIR flow side by side on a small stencil, checks that they
agree numerically, and prints the dynamic instruction mix plus the modeled
ARCHER2 runtime of each.
"""

from repro.core import StandardMLIRCompiler
from repro.flang import FlangCompiler
from repro.machine import (FLANG_V20_PROFILE, OURS_PROFILE, Interpreter,
                           PerformanceModel, WorkloadScaling, profile_stats)

SOURCE = """
program demo
  implicit none
  integer, parameter :: n = 64
  real(kind=8), dimension(:,:), allocatable :: u, unew
  real(kind=8) :: residual
  integer :: i, j, it
  allocate(u(n, n), unew(n, n))
  do j = 1, n
    do i = 1, n
      u(i, j) = real(i, 8) * 0.01d0 + real(j, 8) * 0.02d0
    end do
  end do
  do it = 1, 5
    do j = 2, n - 1
      do i = 2, n - 1
        unew(i, j) = 0.25d0 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
      end do
    end do
    do j = 2, n - 1
      do i = 2, n - 1
        u(i, j) = unew(i, j)
      end do
    end do
  end do
  residual = sum(u)
  print *, residual
end program demo
"""


def main() -> None:
    print("== Baseline Flang flow (Figure 1) ==")
    flang = FlangCompiler()
    for step in flang.flow_description():
        print("  -", step)
    flang_result = flang.compile(SOURCE, stop_at="fir")
    flang_interp = Interpreter(flang_result.fir_module)
    flang_interp.run_main()
    print("  program output:", flang_interp.printed[-1])

    print("\n== Standard MLIR flow (Figure 2, this paper) ==")
    ours = StandardMLIRCompiler(vector_width=4)
    for step in ours.flow_description():
        print("  -", step)
    ours_result = ours.compile(SOURCE)
    print("  dialects after the Section V transformation:",
          sorted({op.dialect for op in ours_result.standard_module.walk()}))
    ours_interp = Interpreter(ours_result.optimised_module)
    ours_interp.run_main()
    print("  program output:", ours_interp.printed[-1])
    flang_value = float(flang_interp.printed[-1])
    ours_value = float(ours_interp.printed[-1])
    # vectorised reductions reassociate the sum, so compare with a tolerance
    assert abs(flang_value - ours_value) <= 1e-9 * max(1.0, abs(flang_value)), \
        "the two flows disagree!"

    print("\n== Instruction mix (Section IV style profile) ==")
    for name, interp in (("flang-v20", flang_interp), ("our-approach", ours_interp)):
        mix = profile_stats(interp.stats)
        print(f"  {name:13s} total ops {mix.total_instructions:10.0f}  "
              f"FP {mix.floating_point_fraction:5.1%}  "
              f"vectorised FP {mix.vectorised_fp_fraction:5.1%}")

    print("\n== Modeled ARCHER2 runtime (work scaled x1000) ==")
    model = PerformanceModel()
    scaling = WorkloadScaling(work_ratio=1000.0, working_set_bytes=2 * 8 * 1024 ** 2)
    flang_t = model.cpu_runtime(flang_interp.stats, scaling, FLANG_V20_PROFILE)
    ours_t = model.cpu_runtime(ours_interp.stats, scaling, OURS_PROFILE)
    print(f"  flang-v20    : {flang_t.total_s:8.3f} s ({flang_t.bound}-bound)")
    print(f"  our-approach : {ours_t.total_s:8.3f} s ({ours_t.bound}-bound)")
    print(f"  speed-up     : {flang_t.total_s / ours_t.total_s:.2f}x")


if __name__ == "__main__":
    main()
