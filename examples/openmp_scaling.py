#!/usr/bin/env python3
"""Table IV: OpenMP strong scaling of jacobi and pw-advection.

Compares the speed-up over serial execution of the two compilation flows at
increasing core counts, reproducing the qualitative result of Section VI-B:
comparable scaling for the memory-bound pw-advection kernel, and markedly
better scaling of the standard-MLIR flow for jacobi at large core counts.
"""

from repro.harness import paper_data, table4


def main() -> None:
    cores = (2, 4, 8, 16, 32, 64)
    table = table4(core_counts=cores)
    header = f"{'cores':>6s} | {'ours jacobi':>12s} {'ours pw-adv':>12s} | " \
             f"{'flang jacobi':>13s} {'flang pw-adv':>13s} | paper (ours jacobi/pw)"
    print(header)
    print("-" * len(header))
    for row in table.rows:
        paper = paper_data.TABLE4[int(row.label)]
        print(f"{row.label:>6s} | {row.measured['ours-jacobi']:12.2f} "
              f"{row.measured['ours-pw']:12.2f} | "
              f"{row.measured['flang-jacobi']:13.2f} "
              f"{row.measured['flang-pw']:13.2f} | "
              f"{paper['ours-jacobi']:.2f} / {paper['ours-pw']:.2f}")
    last = table.rows[-1].measured
    print()
    print(f"At 64 cores: jacobi scales to {last['ours-jacobi']:.1f}x with the "
          f"standard flow vs {last['flang-jacobi']:.1f}x with Flang; "
          f"pw-advection saturates near {last['ours-pw']:.1f}x (memory bound).")


if __name__ == "__main__":
    main()
