"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables (or the Figure 3
vectorisation pipeline data) through the experiment harness and asserts the
headline *shape* of the result.  Set ``REPRO_FULL_TABLES=1`` to run every row
of Table I/II instead of the default representative subset.
"""

import os

import pytest

FULL = os.environ.get("REPRO_FULL_TABLES", "0") == "1"

#: Representative subset used by default to keep the benchmark run short:
#: one Flang-favouring scalar code, one linear-algebra kernel and the three
#: stencils the paper focuses on.
TABLE1_SUBSET = ["ac", "linpk", "test_fpu", "jacobi", "pw-advection", "tra-adv"]
TABLE2_SUBSET = ["ac", "linpk", "test_fpu", "jacobi", "pw-advection", "tra-adv"]


@pytest.fixture(scope="session")
def table1_benchmarks():
    return None if FULL else TABLE1_SUBSET


@pytest.fixture(scope="session")
def table2_benchmarks():
    return None if FULL else TABLE2_SUBSET
