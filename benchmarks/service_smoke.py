#!/usr/bin/env python3
"""Service smoke benchmark: one table cold, warm, and daemon-warm.

Runs Table III + Figure 3 through the compilation service three ways over
one persistent store:

* **cold** — empty cache, every job compiles (process pool of 2);
* **warm** — a fresh in-process service over the same store: pure disk
  hits, zero recompilations;
* **daemon** — a live ``repro.service serve`` daemon on the same store,
  driven twice through the socket so the second batch measures the warm
  long-lived path; the daemon's own ``metrics`` hit rate must clear 0.9.
  A third batch runs under an injected fault plan that drops every
  request's first connection attempt, pricing the client's
  retry/reconnect path: the batch must still complete daemon-served
  (zero degradations) and its overhead plus the retry counters land in
  the report.

Wall-clock numbers go to ``BENCH_service.json`` so CI can track the
performance trajectory.  Exits non-zero if the warm run recompiled
anything, failed to beat the cold run, the daemon hit rate fell short,
or the faulted batch degraded to in-process execution.

Usage: ``PYTHONPATH=src python benchmarks/service_smoke.py [output.json]``
"""

import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone

from repro.service import ArtifactCache, CompileService, run_tables
from repro.service import faults
from repro.service.client import DaemonClient, DaemonUnavailable, \
    maybe_daemon_service

TABLES = ["table3", "figure3"]
DEFAULT_OUTPUT = "BENCH_service.json"
DAEMON_HIT_RATE_FLOOR = 0.9
# drop the first connection attempt of every request: each op retries
# exactly once and must still be served by the daemon
FAULT_PLAN = "seed=3;client.send.drop:p=1,attempt=0"


def timed_run(cache_dir: str, workers: int):
    service = CompileService(ArtifactCache(cache_dir=cache_dir),
                             max_workers=workers)
    t0 = time.perf_counter()
    result = run_tables(tables=TABLES, service=service)
    elapsed = time.perf_counter() - t0
    return elapsed, service, result


def wait_for_daemon(socket_path: str, deadline_s: float = 20.0) -> None:
    t0 = time.perf_counter()
    while True:
        try:
            with DaemonClient(socket_path) as client:
                client.ping()
            return
        except (DaemonUnavailable, OSError):
            if time.perf_counter() - t0 > deadline_s:
                raise
            time.sleep(0.1)


def timed_daemon_runs(cache_dir: str, socket_path: str, workers: int):
    """Two clean run-tables batches through a served socket, then a third
    under an injected connection-drop plan; returns the second (warm)
    wall clock, the daemon's own metrics, and the faulted batch's
    wall clock + retry counters."""
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve",
         "--socket", socket_path, "--cache-dir", cache_dir,
         "--jobs", str(workers)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        wait_for_daemon(socket_path)
        timings = []
        for _ in range(2):
            service = maybe_daemon_service(socket_path, max_workers=workers)
            assert service is not None, "daemon did not answer discovery"
            t0 = time.perf_counter()
            run_tables(tables=TABLES, service=service)
            timings.append(time.perf_counter() - t0)
            assert service.recompilations == 0, \
                "daemon client must not compile in-process"
            service.client.close()
        # degraded-mode pricing: same warm batch, every request's first
        # connection attempt dropped (client-side only, export=False so
        # the daemon process never sees the plan)
        plan = faults.FaultPlan.from_spec(FAULT_PLAN)
        with faults.install(plan, export=False):
            service = maybe_daemon_service(socket_path, max_workers=workers)
            assert service is not None, "daemon did not answer discovery"
            t0 = time.perf_counter()
            run_tables(tables=TABLES, service=service)
            faulty_s = time.perf_counter() - t0
        faulty = {
            "plan": FAULT_PLAN,
            "elapsed_s": round(faulty_s, 4),
            "retries": service.client.retries,
            "reconnects": service.client.reconnects,
            "degraded": service.degraded,
        }
        service.client.close()
        with DaemonClient(socket_path) as client:
            metrics = client.metrics()
            client.shutdown()
        proc.wait(timeout=20)
        return timings[1], metrics, faulty
    finally:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=10)


def main() -> int:
    output = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_OUTPUT
    os.environ.pop("REPRO_DAEMON_SOCKET", None)  # phases pick their own
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        cold_s, cold_service, cold_result = timed_run(cache_dir, workers=2)
        warm_s, warm_service, _ = timed_run(cache_dir, workers=2)
        daemon_s, daemon_metrics, faulty = timed_daemon_runs(
            cache_dir, os.path.join(cache_dir, "bench.sock"), workers=2)

    report = {
        "benchmark": "service_smoke",
        "tables": TABLES,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "daemon_warm_s": round(daemon_s, 4),
        "speedup": round(cold_s / max(warm_s, 1e-9), 2),
        "daemon_speedup": round(cold_s / max(daemon_s, 1e-9), 2),
        "cold_recompilations": cold_service.recompilations,
        "warm_recompilations": warm_service.recompilations,
        "daemon_hit_rate": daemon_metrics["hit_rate"],
        "daemon_coalesced": daemon_metrics["coalesced"],
        "daemon_compiled": daemon_metrics["compiled"],
        "daemon_faulted": dict(
            faulty,
            overhead_s=round(faulty["elapsed_s"] - daemon_s, 4)),
        "batch": cold_result["batch"].as_dict(),
        "warm_counters": warm_service.counters(),
    }
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))

    if warm_service.recompilations != 0:
        print("FAIL: warm run recompiled", warm_service.recompilations,
              "artifacts", file=sys.stderr)
        return 1
    if warm_s >= cold_s:
        print("FAIL: warm run was not faster than cold", file=sys.stderr)
        return 1
    if report["daemon_hit_rate"] <= DAEMON_HIT_RATE_FLOOR:
        print(f"FAIL: daemon hit rate {report['daemon_hit_rate']} "
              f"did not clear {DAEMON_HIT_RATE_FLOOR}", file=sys.stderr)
        return 1
    if faulty["degraded"]:
        print("FAIL: faulted batch degraded to in-process execution "
              "instead of retrying through the daemon", file=sys.stderr)
        return 1
    if faulty["retries"] == 0:
        print("FAIL: fault plan did not exercise the retry path",
              file=sys.stderr)
        return 1
    print(f"OK: warm {warm_s:.2f}s / daemon {daemon_s:.2f}s vs cold "
          f"{cold_s:.2f}s ({report['speedup']}x / "
          f"{report['daemon_speedup']}x), zero warm recompilations, "
          f"daemon hit rate {report['daemon_hit_rate']}, faulted batch "
          f"{faulty['elapsed_s']:.2f}s with {faulty['retries']} retries "
          f"and zero degradations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
