#!/usr/bin/env python3
"""Service smoke benchmark: one table cold and warm, wall-clock to JSON.

Runs Table III through the compilation service against an empty persistent
cache (cold) and again with a fresh service over the same store (warm),
then writes the wall-clock numbers to ``BENCH_service.json`` so CI can
track the performance trajectory.  Exits non-zero if the warm run
recompiled anything or failed to beat the cold run.

Usage: ``PYTHONPATH=src python benchmarks/service_smoke.py [output.json]``
"""

import json
import platform
import sys
import tempfile
import time
from datetime import datetime, timezone

from repro.service import ArtifactCache, CompileService, run_tables

TABLES = ["table3", "figure3"]
DEFAULT_OUTPUT = "BENCH_service.json"


def timed_run(cache_dir: str, workers: int):
    service = CompileService(ArtifactCache(cache_dir=cache_dir),
                             max_workers=workers)
    t0 = time.perf_counter()
    result = run_tables(tables=TABLES, service=service)
    elapsed = time.perf_counter() - t0
    return elapsed, service, result


def main() -> int:
    output = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_OUTPUT
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        cold_s, cold_service, cold_result = timed_run(cache_dir, workers=2)
        warm_s, warm_service, _ = timed_run(cache_dir, workers=2)

    report = {
        "benchmark": "service_smoke",
        "tables": TABLES,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / max(warm_s, 1e-9), 2),
        "cold_recompilations": cold_service.recompilations,
        "warm_recompilations": warm_service.recompilations,
        "batch": cold_result["batch"].as_dict(),
        "warm_counters": warm_service.counters(),
    }
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))

    if warm_service.recompilations != 0:
        print("FAIL: warm run recompiled", warm_service.recompilations,
              "artifacts", file=sys.stderr)
        return 1
    if warm_s >= cold_s:
        print("FAIL: warm run was not faster than cold", file=sys.stderr)
        return 1
    print(f"OK: warm {warm_s:.2f}s vs cold {cold_s:.2f}s "
          f"({report['speedup']}x), zero warm recompilations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
