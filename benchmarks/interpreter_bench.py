#!/usr/bin/env python3
"""Interpreter benchmark: ops/sec through both flows, to JSON.

Compiles representative Polyhedron and stencil workloads once per flow
(baseline Flang/FIR level and the standard-MLIR flow), then interprets each
module with

* the cached-dispatch engine (per-block compiled thunk lists, batched limit
  checks, pre-fetched stats counters — the default), and
* the reference engine (``compile_blocks=False``: per-op string-built
  ``getattr`` dispatch and per-op limit checks, the pre-cached-dispatch
  behaviour),

and writes wall time, dynamic op counts, ops/sec and the speedup per
(workload, flow) to ``BENCH_interpreter.json`` so CI can track the
performance trajectory.  Exits non-zero if the two engines disagree on
statistics or program output (they must be bit-identical), or if the
cached-dispatch engine fails to beat the reference engine overall.

Usage: ``PYTHONPATH=src python benchmarks/interpreter_bench.py [--quick]
[output.json]``
"""

import json
import platform
import sys
import time
from datetime import datetime, timezone

from repro.core import StandardMLIRCompiler
from repro.flang import FlangCompiler
from repro.machine import Interpreter
from repro.service.serialization import stats_to_dict
from repro.workloads import get_workload

#: (workload, interp-param overrides or None) — polyhedron + stencils that
#: spend their time in the interpreter inner loop, not in vectorised numpy.
WORKLOADS = ["ac", "linpk", "tfft", "jacobi", "tra-adv"]
QUICK_WORKLOADS = ["ac", "jacobi"]
DEFAULT_OUTPUT = "BENCH_interpreter.json"


def compile_both(source: str):
    fir = FlangCompiler().compile(source, stop_at="fir").fir_module
    ours = StandardMLIRCompiler(vector_width=4).compile(source).optimised_module
    return {"flang-fir": fir, "ours": ours}


def timed_run(module, compile_blocks: bool):
    interp = Interpreter(module, compile_blocks=compile_blocks)
    t0 = time.perf_counter()
    interp.run_main()
    return time.perf_counter() - t0, interp


def main() -> int:
    argv = sys.argv[1:]
    quick = "--quick" in argv
    argv = [a for a in argv if a != "--quick"]
    output = argv[0] if argv else DEFAULT_OUTPUT

    runs = []
    mismatches = 0
    for name in QUICK_WORKLOADS if quick else WORKLOADS:
        source = get_workload(name).source(scaled=True)
        for flow, module in compile_both(source).items():
            ref_s, ref = timed_run(module, compile_blocks=False)
            new_s, new = timed_run(module, compile_blocks=True)
            stats_equal = stats_to_dict(ref.stats) == stats_to_dict(new.stats)
            output_equal = ref.printed == new.printed
            if not (stats_equal and output_equal):
                mismatches += 1
            total_ops = new.stats.total_ops
            runs.append({
                "workload": name,
                "flow": flow,
                "total_ops": total_ops,
                "wall_s": round(new_s, 4),
                "ops_per_s": round(total_ops / max(new_s, 1e-9)),
                "baseline_wall_s": round(ref_s, 4),
                "baseline_ops_per_s": round(total_ops / max(ref_s, 1e-9)),
                "speedup": round(ref_s / max(new_s, 1e-9), 2),
                "stats_equal": stats_equal,
                "output_equal": output_equal,
            })
            print(f"{name:10s} {flow:9s} {total_ops:>9} ops  "
                  f"ref {ref_s:6.3f}s  cached {new_s:6.3f}s  "
                  f"{runs[-1]['speedup']:5.2f}x  "
                  f"{'OK' if stats_equal and output_equal else 'MISMATCH'}")

    best = max(r["speedup"] for r in runs)
    total_ref = sum(r["baseline_wall_s"] for r in runs)
    total_new = sum(r["wall_s"] for r in runs)
    report = {
        "benchmark": "interpreter_bench",
        "quick": quick,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "runs": runs,
        "total_wall_s": round(total_new, 4),
        "total_baseline_wall_s": round(total_ref, 4),
        "overall_speedup": round(total_ref / max(total_new, 1e-9), 2),
        "best_speedup": best,
    }
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps({k: v for k, v in report.items() if k != "runs"}, indent=2))

    if mismatches:
        print(f"FAIL: {mismatches} run(s) with engine disagreement",
              file=sys.stderr)
        return 1
    if report["overall_speedup"] <= 1.0:
        print("FAIL: cached-dispatch engine not faster than the reference",
              file=sys.stderr)
        return 1
    print(f"OK: cached dispatch {report['overall_speedup']}x overall, "
          f"best {best}x, engines bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
