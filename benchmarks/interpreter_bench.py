#!/usr/bin/env python3
"""Interpreter benchmark: ops/sec for all four engines, to JSON.

Compiles representative Polyhedron and stencil workloads once per flow
(baseline Flang/FIR level and the standard-MLIR flow), then interprets each
module with

* the ``reference`` engine (one op at a time, string-built ``getattr``
  dispatch — the pre-cached-dispatch behaviour),
* the ``compiled`` cached-dispatch engine (per-block compiled thunk lists,
  batched limit checks, pre-fetched stats counters),
* the ``jit`` trace-compiling engine (blocks and structured loop bodies
  translated into generated Python source, run as one code object, with a
  process-level translation cache and an amortization tier that keeps cold
  small blocks on cached dispatch), and
* the ``vector`` engine (matched affine/scf/fir loop nests evaluated as
  whole-array numpy expressions with analytically synthesized statistics),

and writes wall time, dynamic op counts, ops/sec and the speedups per
(workload, flow) to ``BENCH_interpreter.json`` so CI can track the
performance trajectory.  Every engine is warmed up once untimed and then
timed best-of-N runs on the same module (millisecond-scale rows keep
sampling until a minimum measuring budget accumulates) — the steady state
the compile daemon serves — which also exercises the jit engine's
cross-interpreter translation cache.  Exits
non-zero if any engine disagrees on statistics or program output (all four
must be bit-identical), or if the cached-dispatch engine fails to beat the
reference engine overall.

Each row also measures a **warm start**: the jit engine's persistent
translation store is seeded with one run, then the in-process translation
cache is dropped and the module recompiled from source — a simulated
daemon restart — and the jit engine runs against the store.  The
``warm_hit_rate`` column is the fraction of translation lookups the store
served (1.0 = zero re-translation of previously seen blocks) and
``warm_wall_s`` the steady-state wall time on the warmed cache.

``--check-floor`` additionally fails the run when

* the compiled engine's overall speedup over the reference engine
  regresses below 2.0x,
* the jit engine falls behind cached dispatch on any row
  (``jit_vs_compiled`` < 1.0, with a small measurement-noise allowance —
  rows the amortization tier keeps on cached dispatch sit at ~1.0x by
  design),
* the vector engine's speedup over cached dispatch drops below 5.0x on
  the stencil rows (``jacobi`` / ``tra-adv`` under the flang-fir flow —
  the loop nests the whole-array evaluator exists for), or
* a warm restart re-translates previously seen blocks
  (``warm_hit_rate`` ≤ 0.9 on any row) or its steady state falls outside
  noise of the in-process translation-cached steady state **overall**
  (``warm_vs_jit_overall`` < 0.8 — per-row ratios are reported but not
  gated: single sub-millisecond rows carry ±20% scheduler jitter).

Usage: ``PYTHONPATH=src python benchmarks/interpreter_bench.py [--quick]
[--check-floor] [output.json]``
"""

import gc
import json
import platform
import shutil
import sys
import tempfile
import time
from datetime import datetime, timezone

from repro.core import StandardMLIRCompiler
from repro.flang import FlangCompiler
from repro.machine import Interpreter
from repro.machine import jit as machine_jit
from repro.service.cache import ArtifactCache
from repro.service.jit_store import JitTranslationStore
from repro.service.serialization import stats_to_dict
from repro.workloads import get_workload

#: (workload, interp-param overrides or None) — polyhedron + stencils that
#: spend their time in the interpreter inner loop, not in vectorised numpy.
WORKLOADS = ["ac", "linpk", "tfft", "jacobi", "tra-adv"]
QUICK_WORKLOADS = ["ac", "jacobi"]
DEFAULT_OUTPUT = "BENCH_interpreter.json"
#: best-of-N timing per engine: steady-state dispatch, noise-resistant.
#: Millisecond-scale rows repeat until ``MIN_MEASURE_S`` of samples have
#: accumulated (capped at ``MAX_REPEATS``) — three samples of a 3ms run
#: cannot separate a real regression from scheduler jitter.
REPEATS = 3
MIN_MEASURE_S = 0.15
MAX_REPEATS = 30
#: CI gate: the cached-dispatch engine must stay at least this much faster
#: than the reference engine overall (``--check-floor``).
COMPILED_SPEEDUP_FLOOR = 2.0
#: CI gate: the jit engine must never lose to cached dispatch on a row.
JIT_ROW_FLOOR = 1.0
#: Multiplicative measurement-noise allowance on the row floor.  On tiny
#: workloads the amortization tier deliberately keeps most blocks on
#: cached dispatch, so the two engines run near-identical code and the
#: true ratio sits at ~1.0x — where a strict floor coin-flips on ±5%
#: scheduler jitter even after the back-to-back re-measure.  Real
#: regressions (translation overhead not amortizing) show up far below
#: this band.
JIT_ROW_NOISE = 0.95
#: CI gate: whole-array evaluation must stay at least this much faster
#: than cached dispatch on the stencil rows it was built for.
VECTOR_STENCIL_FLOOR = 5.0
VECTOR_STENCIL_ROWS = (("jacobi", "flang-fir"), ("tra-adv", "flang-fir"))
#: CI gate: on a simulated warm restart (in-process translation cache
#: dropped, persistent store kept, module rebuilt from source) the jit
#: engine must serve more than this fraction of translation lookups from
#: the store — i.e. re-translate (essentially) nothing it has seen before.
WARM_HIT_RATE_FLOOR = 0.9
#: CI gate: the warm-restart steady state must stay within noise of the
#: in-process translation-cached steady state (the two run identical code
#: objects; only where the translation came from differs).  0.8 absorbs
#: scheduler jitter; a row that still misses it is re-measured once with
#: both sides sampled back-to-back (the original jit sample can be a
#: minute older — a noisy-neighbour burst in between reads as a phantom
#: regression otherwise).
WARM_VS_JIT_TOLERANCE = 0.8


def compile_both(source: str):
    fir = FlangCompiler().compile(source, stop_at="fir").fir_module
    ours = StandardMLIRCompiler(vector_width=4).compile(source).optimised_module
    return {"flang-fir": fir, "ours": ours}


def compile_flow(source: str, flow: str):
    """One flow's module, built fresh (fresh Block objects, fresh uids)."""
    if flow == "flang-fir":
        return FlangCompiler().compile(source, stop_at="fir").fir_module
    return StandardMLIRCompiler(vector_width=4).compile(source).optimised_module


def _steady_jit_best(module) -> float:
    """Best-of-N steady-state jit wall seconds (one untimed warmup run)."""
    return timed_run(module, "jit")[0]


def warm_start_run(source: str, flow: str, baseline_module, jit_s: float,
                   ref_stats, ref_printed):
    """Measure the jit engine across a simulated process restart.

    Seeds an isolated persistent translation store by running the jit
    engine once, then simulates a fresh process: the in-process translation
    cache is dropped, the module is *recompiled from source* (fresh block
    objects — only the structural fingerprint survives), and the jit engine
    runs again against the store.  Returns the translation-hit rate of that
    warm first run, its wall time (which includes loading every stored
    translation), the warm steady-state wall time, and whether output and
    stats stayed bit-identical to the reference engine.

    ``baseline_module``/``jit_s`` are the row's in-process jit measurement.
    When the warm steady state lands outside :data:`WARM_VS_JIT_TOLERANCE`
    of it, both sides are re-measured back-to-back before believing the
    regression: the two loops run identical code objects, so a real gap
    can only come from the measurements being taken in different noise
    environments.
    """
    store_dir = tempfile.mkdtemp(prefix="repro-jit-warm-")
    previous_store = machine_jit.get_translation_store()
    try:
        machine_jit.set_translation_store(
            JitTranslationStore(ArtifactCache(cache_dir=store_dir)))
        machine_jit.clear_translation_cache()
        Interpreter(compile_flow(source, flow), engine="jit").run_main()

        # "restart": translations survive only in the store
        machine_jit.clear_translation_cache()
        module = compile_flow(source, flow)
        before = machine_jit.snapshot_translation_counters()
        interp = Interpreter(module, engine="jit")
        t0 = time.perf_counter()
        interp.run_main()
        first_s = time.perf_counter() - t0
        delta = machine_jit.translation_counters_delta(before)

        identical = (stats_to_dict(interp.stats) == ref_stats
                     and interp.printed == ref_printed)

        steady_s = _steady_jit_best(module)
        if steady_s > jit_s / max(WARM_VS_JIT_TOLERANCE, 1e-9):
            # suspected measurement-environment drift: sample both steady
            # states adjacently and keep each side's best
            jit_s = min(jit_s, _steady_jit_best(baseline_module))
            steady_s = min(steady_s, _steady_jit_best(module))
        return {"hit_rate": delta["hit_rate"], "lookups": delta["lookups"],
                "misses": delta["misses"], "first_s": first_s,
                "steady_s": steady_s, "jit_s": jit_s,
                "identical": identical}
    finally:
        machine_jit.set_translation_store(previous_store)
        machine_jit.clear_translation_cache()
        shutil.rmtree(store_dir, ignore_errors=True)


def timed_run(module, engine: str):
    """Best-of-N wall seconds + the last interpreter instance.

    One untimed warmup run populates the process-level caches (jit
    translations, handler resolution) so every timed sample measures the
    steady state the daemon serves; short rows then keep sampling until
    ``MIN_MEASURE_S`` of wall time has accumulated.

    The collector is drained and disabled around the sampling loop: a
    collection cycle landing inside one engine's loop but not the other's
    reads as a phantom engine-vs-engine regression on short rows.
    """
    Interpreter(module, engine=engine).run_main()
    best = float("inf")
    total = 0.0
    reps = 0
    interp = None
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        while reps < REPEATS or (total < MIN_MEASURE_S and reps < MAX_REPEATS):
            interp = Interpreter(module, engine=engine)
            t0 = time.perf_counter()
            interp.run_main()
            elapsed = time.perf_counter() - t0
            best = min(best, elapsed)
            total += elapsed
            reps += 1
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, interp


def main() -> int:
    argv = sys.argv[1:]
    quick = "--quick" in argv
    check_floor = "--check-floor" in argv
    argv = [a for a in argv if a not in ("--quick", "--check-floor")]
    output = argv[0] if argv else DEFAULT_OUTPUT

    runs = []
    mismatches = 0
    for name in QUICK_WORKLOADS if quick else WORKLOADS:
        source = get_workload(name).source(scaled=True)
        for flow, module in compile_both(source).items():
            ref_s, ref = timed_run(module, "reference")
            new_s, new = timed_run(module, "compiled")
            jit_s, jit = timed_run(module, "jit")
            if jit_s * JIT_ROW_FLOOR > new_s:
                # an apparent sub-floor row on two samples taken seconds
                # apart is usually drift on a shared box — re-measure both
                # engines back-to-back before reporting it
                new_s = min(new_s, timed_run(module, "compiled")[0])
                jit_s = min(jit_s, timed_run(module, "jit")[0])
            vec_s, vec = timed_run(module, "vector")
            warm = warm_start_run(source, flow, module, jit_s,
                                  stats_to_dict(ref.stats), ref.printed)
            ref_stats = stats_to_dict(ref.stats)
            stats_equal = stats_to_dict(new.stats) == ref_stats \
                and stats_to_dict(jit.stats) == ref_stats \
                and stats_to_dict(vec.stats) == ref_stats
            output_equal = (ref.printed == new.printed == jit.printed
                            == vec.printed)
            if not (stats_equal and output_equal and warm["identical"]):
                mismatches += 1
            total_ops = new.stats.total_ops
            runs.append({
                "workload": name,
                "flow": flow,
                "total_ops": total_ops,
                "wall_s": round(new_s, 4),
                "ops_per_s": round(total_ops / max(new_s, 1e-9)),
                "baseline_wall_s": round(ref_s, 4),
                "baseline_ops_per_s": round(total_ops / max(ref_s, 1e-9)),
                "speedup": round(ref_s / max(new_s, 1e-9), 2),
                "jit_wall_s": round(jit_s, 4),
                "jit_ops_per_s": round(total_ops / max(jit_s, 1e-9)),
                "jit_speedup": round(ref_s / max(jit_s, 1e-9), 2),
                "jit_vs_compiled": round(new_s / max(jit_s, 1e-9), 2),
                "vector_wall_s": round(vec_s, 4),
                "vector_ops_per_s": round(total_ops / max(vec_s, 1e-9)),
                "vector_speedup": round(ref_s / max(vec_s, 1e-9), 2),
                "vector_vs_compiled": round(new_s / max(vec_s, 1e-9), 2),
                # simulated warm restart: persistent translation store kept,
                # in-process cache dropped, module rebuilt from source
                "warm_hit_rate": warm["hit_rate"],
                "warm_lookups": warm["lookups"],
                "warm_first_wall_s": round(warm["first_s"], 4),
                "warm_wall_s": round(warm["steady_s"], 4),
                "warm_vs_compiled":
                    round(new_s / max(warm["steady_s"], 1e-9), 2),
                "warm_jit_wall_s": round(warm["jit_s"], 4),
                "warm_vs_jit":
                    round(warm["jit_s"] / max(warm["steady_s"], 1e-9), 2),
                "stats_equal": stats_equal,
                "output_equal": output_equal,
            })
            ok = stats_equal and output_equal and warm["identical"]
            print(f"{name:10s} {flow:9s} {total_ops:>9} ops  "
                  f"ref {ref_s:6.3f}s  cached {new_s:6.3f}s  "
                  f"jit {jit_s:6.3f}s  vec {vec_s:6.3f}s  "
                  f"cached {runs[-1]['speedup']:5.2f}x  "
                  f"jit/cached {runs[-1]['jit_vs_compiled']:5.2f}x  "
                  f"vec/cached {runs[-1]['vector_vs_compiled']:5.2f}x  "
                  f"warm {warm['hit_rate']:4.2f} hit  "
                  f"{'OK' if ok else 'MISMATCH'}")

    best = max(r["speedup"] for r in runs)
    total_ref = sum(r["baseline_wall_s"] for r in runs)
    total_new = sum(r["wall_s"] for r in runs)
    total_jit = sum(r["jit_wall_s"] for r in runs)
    total_vec = sum(r["vector_wall_s"] for r in runs)
    report = {
        "benchmark": "interpreter_bench",
        "quick": quick,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "runs": runs,
        "total_wall_s": round(total_new, 4),
        "total_baseline_wall_s": round(total_ref, 4),
        "total_jit_wall_s": round(total_jit, 4),
        "total_vector_wall_s": round(total_vec, 4),
        "overall_speedup": round(total_ref / max(total_new, 1e-9), 2),
        "best_speedup": best,
        "jit_overall_speedup": round(total_ref / max(total_jit, 1e-9), 2),
        "jit_vs_compiled_overall": round(total_new / max(total_jit, 1e-9), 2),
        "best_jit_vs_compiled": max(r["jit_vs_compiled"] for r in runs),
        "vector_overall_speedup": round(total_ref / max(total_vec, 1e-9), 2),
        "vector_vs_compiled_overall":
            round(total_new / max(total_vec, 1e-9), 2),
        "best_vector_vs_compiled":
            max(r["vector_vs_compiled"] for r in runs),
        "warm_hit_rate_min": min(r["warm_hit_rate"] for r in runs),
        "warm_total_wall_s": round(sum(r["warm_wall_s"] for r in runs), 4),
        # aggregate over every row: single sub-millisecond rows carry
        # ±20% scheduler jitter that the sum averages out
        "warm_vs_jit_overall":
            round(sum(r["warm_jit_wall_s"] for r in runs)
                  / max(sum(r["warm_wall_s"] for r in runs), 1e-9), 2),
    }
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps({k: v for k, v in report.items() if k != "runs"}, indent=2))

    if mismatches:
        print(f"FAIL: {mismatches} run(s) with engine disagreement",
              file=sys.stderr)
        return 1
    if report["overall_speedup"] <= 1.0:
        print("FAIL: cached-dispatch engine not faster than the reference",
              file=sys.stderr)
        return 1
    if check_floor:
        failed = False
        if report["overall_speedup"] < COMPILED_SPEEDUP_FLOOR:
            print(f"FAIL: compiled-engine speedup "
                  f"{report['overall_speedup']}x regressed below the "
                  f"{COMPILED_SPEEDUP_FLOOR}x floor", file=sys.stderr)
            failed = True
        for run in runs:
            if run["jit_vs_compiled"] < JIT_ROW_FLOOR * JIT_ROW_NOISE:
                print(f"FAIL: jit slower than cached dispatch on "
                      f"{run['workload']}/{run['flow']} "
                      f"({run['jit_vs_compiled']}x < {JIT_ROW_FLOOR}x "
                      f"with {JIT_ROW_NOISE} noise allowance)",
                      file=sys.stderr)
                failed = True
            if (run["workload"], run["flow"]) in VECTOR_STENCIL_ROWS \
                    and run["vector_vs_compiled"] < VECTOR_STENCIL_FLOOR:
                print(f"FAIL: vector engine below the "
                      f"{VECTOR_STENCIL_FLOOR}x stencil floor on "
                      f"{run['workload']}/{run['flow']} "
                      f"({run['vector_vs_compiled']}x)", file=sys.stderr)
                failed = True
            if run["warm_lookups"] \
                    and run["warm_hit_rate"] <= WARM_HIT_RATE_FLOOR:
                print(f"FAIL: warm-restart translation hit rate "
                      f"{run['warm_hit_rate']} not above "
                      f"{WARM_HIT_RATE_FLOOR} on "
                      f"{run['workload']}/{run['flow']} — previously seen "
                      f"blocks are being re-translated", file=sys.stderr)
                failed = True
        if report["warm_vs_jit_overall"] < WARM_VS_JIT_TOLERANCE:
            print(f"FAIL: warm-restart jit steady state fell behind the "
                  f"in-process translation-cached steady state overall "
                  f"({report['warm_vs_jit_overall']}x < "
                  f"{WARM_VS_JIT_TOLERANCE}x)", file=sys.stderr)
            failed = True
        if failed:
            return 1
    print(f"OK: cached dispatch {report['overall_speedup']}x overall, "
          f"jit {report['jit_overall_speedup']}x overall "
          f"({report['jit_vs_compiled_overall']}x over cached dispatch), "
          f"vector {report['vector_overall_speedup']}x overall "
          f"({report['vector_vs_compiled_overall']}x over cached dispatch, "
          f"best {report['best_vector_vs_compiled']}x), "
          f"engines bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
