"""Table I: Flang v20 / Flang v17 / Cray / GNU across the benchmark suite."""

from repro.harness import format_table, table1


def test_table1_runtime_comparison(benchmark, table1_benchmarks):
    table = benchmark.pedantic(lambda: table1(benchmarks=table1_benchmarks),
                               iterations=1, rounds=1)
    print()
    print(format_table(table))
    # Shape checks from the paper's Table I discussion:
    for row in table.rows:
        if row.label in ("jacobi", "pw-advection", "tra-adv"):
            # "for the stencil benchmarks the Cray compiler delivers
            #  significantly better performance ... Flang producing the
            #  lowest performing executables"
            assert row.measured["cray"] < row.measured["flang-v20"]
            assert row.measured["cray"] < row.measured["gnu"]
    assert len(table.rows) >= 5
