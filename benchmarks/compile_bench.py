#!/usr/bin/env python3
"""Compile-side benchmark: per-flow pass time + parallel/incremental, to JSON.

The interpreter side has had a tracked trajectory (``BENCH_interpreter.json``)
since the cached-dispatch engine landed; conformance sweeps made *compile*
time a co-equal bottleneck — hundreds of kernels go through every flow's
pass pipeline per sweep — yet it had no trajectory at all.  This benchmark
runs every registered flow over representative registry workloads with
statistics collection on, and records

* the end-to-end flow wall time (frontend + passes + printing bookkeeping),
* the total pass-pipeline time from the flow's
  :class:`~repro.ir.pass_manager.PassTimingReport`,
* the per-pass wall time / IR-size delta breakdown,
* **parallel-vs-serial**: the standard pass pipeline over one synthetic
  multi-function module, serial vs ``pipeline_settings(jobs=4)``, with the
  outputs asserted bit-identical, and
* **cold-vs-incremental**: the same module compiled from scratch vs rebuilt
  after a one-function edit against a warm
  :class:`~repro.service.incremental.FunctionArtifactStore`, again asserted
  bit-identical,

into ``BENCH_compile.json`` so CI can track compile-side performance the
same way it tracks ops/sec.  ``--check-floor`` additionally enforces the
ISSUE floors: parallel >= 1.3x serial (skipped on single-CPU machines,
where the process pool cannot physically speed anything up) and incremental
rebuild >= 5x cold.  Exits non-zero when a flow errors on a workload it is
expected to compile, when a bit-identity assert fails, or when a checked
floor is missed.

Usage: ``PYTHONPATH=src python benchmarks/compile_bench.py [--quick]
[--check-floor] [output.json]``
"""

import json
import os
import platform
import sys
import time
from datetime import datetime, timezone

from repro.core.fir_to_standard import convert_fir_to_standard
from repro.core.pipelines import standard_flow_pipeline
from repro.flang import FlangCompiler
from repro.flows import available_flows, get_flow
from repro.ir import StringAttr, pipeline_settings, print_op
from repro.service.incremental import FunctionArtifactStore
from repro.workloads import get_workload

WORKLOADS = ["ac", "linpk", "tfft", "jacobi", "tra-adv", "dotproduct"]
QUICK_WORKLOADS = ["ac", "jacobi"]
#: Source pool for the synthetic multi-function module (functions are
#: harvested in order until FLEET_SIZE distinct ones are collected).
FLEET_WORKLOADS = ["jacobi", "tra-adv", "ac", "linpk", "tfft", "dotproduct",
                   "sum", "pw-advection", "channel", "air", "nf", "mdbx",
                   "fatigue", "matmul", "capacita", "test_fpu", "doduc",
                   "gas_dyn", "protein", "rnflow", "mp_prop_design",
                   "aermod"]
#: The held-out workload whose function plays the "edited" one (small, so
#: the measured rebuild is dominated by the splice machinery, not by one
#: unusually expensive function body).
EDIT_WORKLOAD = "transpose"
FLEET_SIZE = 22
PARALLEL_JOBS = 4
REPEATS = 3
PARALLEL_FLOOR = 1.3
INCREMENTAL_FLOOR = 5.0
DEFAULT_OUTPUT = "BENCH_compile.json"


def bench_flow(flow_name: str, workload_name: str):
    flow = get_flow(flow_name)
    workload = get_workload(workload_name)
    t0 = time.perf_counter()
    result = flow.run(workload, collect_statistics=True)
    wall_s = time.perf_counter() - t0
    if result.error is not None:
        return {"flow": flow_name, "workload": workload_name, "ok": False,
                "error": result.error, "wall_s": round(wall_s, 4)}
    timing = result.timing
    entry = {
        "flow": flow_name,
        "workload": workload_name,
        "ok": True,
        "wall_s": round(wall_s, 4),
        "pass_total_s": round(timing.total_s, 4) if timing is not None else None,
        "passes": [t.as_dict() for t in timing.timings]
        if timing is not None else [],
    }
    return entry


# ---------------------------------------------------------------------------
# synthetic multi-function module
# ---------------------------------------------------------------------------


def _standard_module(source_text: str):
    return convert_fir_to_standard(
        FlangCompiler().lower_to_hlfir(source_text))


def _module_funcs(module):
    return [op for op in module.regions[0].blocks[0].ops
            if op.name == "func.func"]


def _harvest_functions(workload_names, limit):
    """Distinct real function bodies from registry workloads, cloned out of
    their modules."""
    funcs = []
    for name in workload_names:
        if len(funcs) >= limit:
            break
        module = _standard_module(get_workload(name).source(scaled=True))
        for func in _module_funcs(module):
            funcs.append(func.clone())
            if len(funcs) >= limit:
                break
    return funcs


def _build_fleet_module(funcs):
    """One module holding clones of ``funcs``, uniquely renamed.

    The frontend compiles one program unit set at a time; fleet-scale
    modules are built by IR surgery instead — which is also what keeps this
    benchmark purely about the pass pipeline.
    """
    shell = _standard_module(
        "subroutine shell(n)\n  integer, intent(in) :: n\n"
        "end subroutine shell")
    block = shell.regions[0].blocks[0]
    for op in _module_funcs(shell):
        op.erase(check_uses=False)
    for index, func in enumerate(funcs):
        clone = func.clone()
        clone.attributes["sym_name"] = StringAttr(f'"_QPfleet{index}"')
        block.add_op(clone)
    return shell


def _time_pipeline(module_builder, *, jobs=1, store=None, repeats=REPEATS):
    """Best-of-N wall time of the standard pipeline; returns (s, final_text).

    A fresh module is built per repeat (the pipeline mutates in place), and
    only ``pm.run`` is timed — frontend and surgery are outside the clock.
    """
    best = None
    text = None
    for _ in range(repeats):
        module = module_builder()
        pm = standard_flow_pipeline()
        with pipeline_settings(jobs=jobs, function_cache=store):
            t0 = time.perf_counter()
            pm.run(module)
            elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
            text = print_op(module)
    return best, text


def bench_parallel():
    """Serial vs jobs=N over the fleet module; outputs must be identical."""
    funcs = _harvest_functions(FLEET_WORKLOADS, FLEET_SIZE)
    builder = lambda: _build_fleet_module(funcs)
    serial_s, serial_text = _time_pipeline(builder, jobs=1)
    parallel_s, parallel_text = _time_pipeline(builder, jobs=PARALLEL_JOBS)
    return {
        "functions": len(funcs),
        "jobs": PARALLEL_JOBS,
        "cpus": os.cpu_count(),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        "identical": parallel_text == serial_text,
        "floor": PARALLEL_FLOOR,
        # a 1-CPU machine cannot demonstrate parallel speedup; the floor is
        # asserted where cores exist (CI runners have >= 2)
        "floor_checkable": (os.cpu_count() or 1) >= 2,
    }


def bench_incremental():
    """Cold compile vs one-function-edit rebuild against a warm store."""
    funcs = _harvest_functions(FLEET_WORKLOADS, FLEET_SIZE)
    edited_funcs = list(funcs)
    edited_funcs[0] = _harvest_functions([EDIT_WORKLOAD], 1)[0]

    cold_s, _ = _time_pipeline(lambda: _build_fleet_module(funcs),
                               store=None)

    # each repeat re-warms a fresh store so every timed rebuild is exactly
    # the one-function-edit scenario: 7 splices + 1 recompile (a shared
    # store would let later repeats splice the edited function too)
    rebuild_s = None
    rebuild_text = None
    store = None
    for _ in range(REPEATS):
        store = FunctionArtifactStore()
        _time_pipeline(lambda: _build_fleet_module(funcs), store=store,
                       repeats=1)
        elapsed, text = _time_pipeline(
            lambda: _build_fleet_module(edited_funcs), store=store,
            repeats=1)
        if rebuild_s is None or elapsed < rebuild_s:
            rebuild_s, rebuild_text = elapsed, text

    cold_edited_s, cold_edited_text = _time_pipeline(
        lambda: _build_fleet_module(edited_funcs), store=None)
    return {
        "functions": len(funcs),
        "edited": 1,
        "cold_s": round(cold_s, 4),
        "cold_edited_s": round(cold_edited_s, 4),
        "incremental_rebuild_s": round(rebuild_s, 4),
        "speedup": round(cold_edited_s / rebuild_s, 2) if rebuild_s else None,
        "identical": rebuild_text == cold_edited_text,
        "floor": INCREMENTAL_FLOOR,
        "floor_checkable": True,
        "store": store.counters.as_dict(),
    }


def main() -> int:
    argv = sys.argv[1:]
    quick = "--quick" in argv
    check_floor = "--check-floor" in argv
    argv = [a for a in argv if a not in ("--quick", "--check-floor")]
    output = argv[0] if argv else DEFAULT_OUTPUT

    runs = []
    failures = 0
    for flow_name in available_flows():
        for workload_name in QUICK_WORKLOADS if quick else WORKLOADS:
            entry = bench_flow(flow_name, workload_name)
            runs.append(entry)
            if not entry["ok"]:
                failures += 1
                print(f"{flow_name:6s} {workload_name:10s} "
                      f"FAILED: {entry['error']}", file=sys.stderr)
                continue
            slowest = max(entry["passes"], key=lambda p: p["wall_s"],
                          default=None)
            slowest_text = (f"slowest {slowest['pass']} "
                            f"{slowest['wall_s'] * 1000:6.1f}ms"
                            if slowest else "no pass timings")
            print(f"{flow_name:6s} {workload_name:10s} "
                  f"flow {entry['wall_s'] * 1000:7.1f}ms  "
                  f"passes {(entry['pass_total_s'] or 0) * 1000:7.1f}ms  "
                  f"{slowest_text}")

    parallel = bench_parallel()
    print(f"parallel    {parallel['functions']} funcs  "
          f"serial {parallel['serial_s'] * 1000:7.1f}ms  "
          f"jobs={parallel['jobs']} {parallel['parallel_s'] * 1000:7.1f}ms  "
          f"speedup {parallel['speedup']}x  "
          f"identical={parallel['identical']}"
          + ("" if parallel["floor_checkable"]
             else "  (floor skipped: 1 cpu)"))
    incremental = bench_incremental()
    print(f"incremental {incremental['functions']} funcs (1 edited)  "
          f"cold {incremental['cold_edited_s'] * 1000:7.1f}ms  "
          f"rebuild {incremental['incremental_rebuild_s'] * 1000:7.1f}ms  "
          f"speedup {incremental['speedup']}x  "
          f"identical={incremental['identical']}")

    ok_runs = [r for r in runs if r["ok"]]
    per_pass_totals = {}
    for run in ok_runs:
        for timing in run["passes"]:
            per_pass_totals[timing["pass"]] = \
                per_pass_totals.get(timing["pass"], 0.0) + timing["wall_s"]
    report = {
        "benchmark": "compile_bench",
        "quick": quick,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "runs": runs,
        "total_flow_wall_s": round(sum(r["wall_s"] for r in ok_runs), 4),
        "total_pass_wall_s": round(
            sum(r["pass_total_s"] or 0.0 for r in ok_runs), 4),
        "per_pass_total_s": {name: round(total, 4) for name, total
                             in sorted(per_pass_totals.items(),
                                       key=lambda kv: -kv[1])},
        "parallel": parallel,
        "incremental": incremental,
    }
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps({k: v for k, v in report.items() if k != "runs"},
                     indent=2))

    # correctness is never optional: the parallel/incremental results must
    # be bit-identical to serial cold compiles on every run
    for label, section in (("parallel", parallel),
                           ("incremental", incremental)):
        if not section["identical"]:
            print(f"FAIL: {label} output is not bit-identical to the "
                  f"serial/cold compile", file=sys.stderr)
            failures += 1
    if check_floor:
        if parallel["floor_checkable"] and \
                parallel["speedup"] < parallel["floor"]:
            print(f"FAIL: parallel speedup {parallel['speedup']}x is below "
                  f"the {parallel['floor']}x floor", file=sys.stderr)
            failures += 1
        if incremental["speedup"] < incremental["floor"]:
            print(f"FAIL: incremental rebuild speedup "
                  f"{incremental['speedup']}x is below the "
                  f"{incremental['floor']}x floor", file=sys.stderr)
            failures += 1

    if failures:
        print(f"FAIL: {failures} check(s) failed", file=sys.stderr)
        return 1
    print(f"OK: {len(ok_runs)} flow runs, "
          f"total pass time {report['total_pass_wall_s']}s, "
          f"parallel {parallel['speedup']}x, "
          f"incremental {incremental['speedup']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
