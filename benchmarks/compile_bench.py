#!/usr/bin/env python3
"""Compile-side benchmark: per-flow pass-pipeline wall time, to JSON.

The interpreter side has had a tracked trajectory (``BENCH_interpreter.json``)
since the cached-dispatch engine landed; conformance sweeps made *compile*
time a co-equal bottleneck — hundreds of kernels go through every flow's
pass pipeline per sweep — yet it had no trajectory at all.  This benchmark
runs every registered flow over representative registry workloads with
statistics collection on, and records

* the end-to-end flow wall time (frontend + passes + printing bookkeeping),
* the total pass-pipeline time from the flow's
  :class:`~repro.ir.pass_manager.PassTimingReport`, and
* the per-pass wall time / IR-size delta breakdown,

into ``BENCH_compile.json`` so CI can track compile-side performance the
same way it tracks ops/sec.  Exits non-zero when a flow errors on a
workload it is expected to compile.

Usage: ``PYTHONPATH=src python benchmarks/compile_bench.py [--quick]
[output.json]``
"""

import json
import platform
import sys
import time
from datetime import datetime, timezone

from repro.flows import available_flows, get_flow
from repro.workloads import get_workload

WORKLOADS = ["ac", "linpk", "tfft", "jacobi", "tra-adv", "dotproduct"]
QUICK_WORKLOADS = ["ac", "jacobi"]
DEFAULT_OUTPUT = "BENCH_compile.json"


def bench_flow(flow_name: str, workload_name: str):
    flow = get_flow(flow_name)
    workload = get_workload(workload_name)
    t0 = time.perf_counter()
    result = flow.run(workload, collect_statistics=True)
    wall_s = time.perf_counter() - t0
    if result.error is not None:
        return {"flow": flow_name, "workload": workload_name, "ok": False,
                "error": result.error, "wall_s": round(wall_s, 4)}
    timing = result.timing
    entry = {
        "flow": flow_name,
        "workload": workload_name,
        "ok": True,
        "wall_s": round(wall_s, 4),
        "pass_total_s": round(timing.total_s, 4) if timing is not None else None,
        "passes": [t.as_dict() for t in timing.timings]
        if timing is not None else [],
    }
    return entry


def main() -> int:
    argv = sys.argv[1:]
    quick = "--quick" in argv
    argv = [a for a in argv if a != "--quick"]
    output = argv[0] if argv else DEFAULT_OUTPUT

    runs = []
    failures = 0
    for flow_name in available_flows():
        for workload_name in QUICK_WORKLOADS if quick else WORKLOADS:
            entry = bench_flow(flow_name, workload_name)
            runs.append(entry)
            if not entry["ok"]:
                failures += 1
                print(f"{flow_name:6s} {workload_name:10s} "
                      f"FAILED: {entry['error']}", file=sys.stderr)
                continue
            slowest = max(entry["passes"], key=lambda p: p["wall_s"],
                          default=None)
            slowest_text = (f"slowest {slowest['pass']} "
                            f"{slowest['wall_s'] * 1000:6.1f}ms"
                            if slowest else "no pass timings")
            print(f"{flow_name:6s} {workload_name:10s} "
                  f"flow {entry['wall_s'] * 1000:7.1f}ms  "
                  f"passes {(entry['pass_total_s'] or 0) * 1000:7.1f}ms  "
                  f"{slowest_text}")

    ok_runs = [r for r in runs if r["ok"]]
    per_pass_totals = {}
    for run in ok_runs:
        for timing in run["passes"]:
            per_pass_totals[timing["pass"]] = \
                per_pass_totals.get(timing["pass"], 0.0) + timing["wall_s"]
    report = {
        "benchmark": "compile_bench",
        "quick": quick,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "runs": runs,
        "total_flow_wall_s": round(sum(r["wall_s"] for r in ok_runs), 4),
        "total_pass_wall_s": round(
            sum(r["pass_total_s"] or 0.0 for r in ok_runs), 4),
        "per_pass_total_s": {name: round(total, 4) for name, total
                             in sorted(per_pass_totals.items(),
                                       key=lambda kv: -kv[1])},
    }
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps({k: v for k, v in report.items() if k != "runs"},
                     indent=2))

    if failures:
        print(f"FAIL: {failures} flow run(s) errored", file=sys.stderr)
        return 1
    print(f"OK: {len(ok_runs)} flow runs, "
          f"total pass time {report['total_pass_wall_s']}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
