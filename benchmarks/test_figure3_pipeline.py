"""Figure 3 / Section VI-A: effect of the affine vectorisation and tiling
pipeline on the linalg-backed kernels."""

from repro.harness import figure3_vectorization, section4_profile


def test_figure3_vectorisation_speedup(benchmark):
    table = benchmark.pedantic(lambda: figure3_vectorization("dotproduct"),
                               iterations=1, rounds=1)
    row = table.rows[0]
    print()
    print({k: round(v, 3) for k, v in row.measured.items()})
    # vectorisation (and unrolling) gave ~2x on dot product in the paper
    assert row.measured["vectorised"] <= row.measured["scalar"]


def test_section4_instruction_mix_profile(benchmark):
    profiles = benchmark.pedantic(lambda: section4_profile("induct"),
                                  iterations=1, rounds=1)
    flang = profiles["flang-v20"]
    ours = profiles["our-approach"]
    # Section IV: Flang issues far more instructions than needed (704e9 vs
    # 383e9 for induct) and none of its FP work is vectorised
    assert flang["vectorised_fp_fraction"] == 0.0
    assert flang["total_instructions"] > ours["total_instructions"]
