"""Table II: our approach vs Flang v20, Cray and GNU."""

from repro.harness import format_table, speedup, table2


def test_table2_our_approach_vs_flang(benchmark, table2_benchmarks):
    table = benchmark.pedantic(lambda: table2(benchmarks=table2_benchmarks),
                               iterations=1, rounds=1)
    print()
    print(format_table(table))
    gains = speedup(table, baseline="flang-v20", candidate="our-approach")
    # "our approach generally compares favourably against Flang"
    favourable = [b for b, g in gains.items() if g >= 1.0]
    assert len(favourable) >= max(1, len(gains) // 2)
    # "up to three times speed up compared with Flang's existing approach"
    assert max(gains.values()) > 1.3
    # the Cray compiler still leads on the stencil benchmarks
    for row in table.rows:
        if row.label in ("jacobi", "tra-adv", "pw-advection"):
            assert row.measured["cray"] <= row.measured["flang-v20"]
