"""Table V: OpenACC pw-advection on the V100 GPU, ours vs nvfortran."""

from repro.harness import format_table, table5


def test_table5_gpu_offload(benchmark):
    table = benchmark.pedantic(
        lambda: table5(grid_sizes=(134_000_000, 268_000_000, 536_000_000,
                                   1_100_000_000)),
        iterations=1, rounds=1)
    print()
    print(format_table(table))
    ours = [row.measured["our-approach"] for row in table.rows]
    nvf = [row.measured["nvfortran"] for row in table.rows]
    # runtime grows with the number of grid cells for both compilers
    assert ours == sorted(ours)
    assert nvf == sorted(nvf)
    # "the Nvidia compiler outperforms our approach ... arguably fairly close"
    for o, n in zip(ours, nvf):
        assert o / n < 2.5
