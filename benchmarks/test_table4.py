"""Table IV: OpenMP speed-up over serial execution (jacobi, pw-advection)."""

from repro.harness import format_table, table4


def test_table4_openmp_scaling(benchmark):
    table = benchmark.pedantic(lambda: table4(core_counts=(2, 8, 16, 64)),
                               iterations=1, rounds=1)
    print()
    print(format_table(table))
    by_cores = {int(row.label): row.measured for row in table.rows}
    # speed-ups grow with core count for both approaches
    assert by_cores[64]["ours-jacobi"] > by_cores[8]["ours-jacobi"] > \
        by_cores[2]["ours-jacobi"]
    assert by_cores[64]["flang-jacobi"] > by_cores[2]["flang-jacobi"]
    # pw-advection saturates around 10x (memory bound) for both approaches
    assert by_cores[64]["ours-pw"] < 35
    assert by_cores[64]["flang-pw"] < 35
    # at large core counts the standard MLIR flow scales jacobi further than
    # Flang (the paper's 72.6x vs 18.4x observation, in shape)
    assert by_cores[64]["ours-jacobi"] > by_cores[64]["flang-jacobi"]
