"""Table III: Fortran intrinsics via the linalg dialect vs the runtime library."""

import math

from repro.harness import format_table, table3


def test_table3_intrinsics(benchmark):
    table = benchmark.pedantic(table3, iterations=1, rounds=1)
    print()
    print(format_table(table))
    for row in table.rows:
        ours = row.measured["ours-serial"]
        flang = row.measured["flang-v20"]
        # "leveraging the linalg dialect always delivers better performance
        #  compared to the runtime library approach of Flang" (serial)
        assert ours <= flang * 1.05, f"{row.label}: {ours} vs {flang}"
    # threading helps the two non-reduction intrinsics (transpose, matmul)
    for label in ("transpose", "matmul"):
        row = table.row(label)
        assert row.measured["ours-threaded"] < row.measured["ours-serial"]
    # the paper's scf.parallel conversion does not support reductions yet
    assert math.isnan(table.row("dotproduct").measured["ours-threaded"])
    assert math.isnan(table.row("sum").measured["ours-threaded"])
